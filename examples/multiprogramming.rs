//! Stream buffers on a time-sliced processor.
//!
//! The paper motivates streams for large parallel machines whose nodes
//! multiplex work. This example interleaves a stream-friendly benchmark
//! (`mgrid`) with an irregular one (`adm`) at several quantum sizes and
//! shows that the context-switch penalty is per-switch, not
//! per-reference: stream buffers hold ~10 tags of state and re-lock onto
//! their streams within a few misses of every switch.
//!
//! Run with:
//! ```text
//! cargo run --release --example multiprogramming
//! ```

use streamsim::report::TextTable;
use streamsim::{record_miss_trace, run_streams, RecordOptions, StreamConfig};
use streamsim_workloads::benchmark;
use streamsim_workloads::combinators::Interleaved;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = StreamConfig::paper_filtered(10)?;
    let record = RecordOptions::default();

    // Solo baselines.
    let mut solo = Vec::new();
    for name in ["mgrid", "adm"] {
        let w = benchmark(name).expect("known benchmark");
        let trace = record_miss_trace(w.as_ref(), &record)?;
        let stats = run_streams(&trace, config);
        println!(
            "{name:>6} alone: {:>6} misses, hit rate {:.1}%",
            stats.lookups,
            stats.hit_rate() * 100.0
        );
        solo.push(stats);
    }
    let weighted =
        (solo[0].hits + solo[1].hits) as f64 / (solo[0].lookups + solo[1].lookups) as f64;
    println!("miss-weighted solo hit rate: {:.1}%\n", weighted * 100.0);

    let mut table = TextTable::new(vec!["quantum (refs)", "hit %", "penalty vs solo"]);
    for quantum in [500usize, 5_000, 50_000, 500_000] {
        let mix = Interleaved::new(
            "mgrid+adm",
            vec![
                benchmark("mgrid").expect("known"),
                benchmark("adm").expect("known"),
            ],
            quantum,
        );
        let trace = record_miss_trace(&mix, &record)?;
        let stats = run_streams(&trace, config);
        table.row(vec![
            quantum.to_string(),
            format!("{:.1}", stats.hit_rate() * 100.0),
            format!("{:.1}", (weighted - stats.hit_rate()) * 100.0),
        ]);
    }
    println!("{table}");
    println!("Short quanta cost a few points (cold streams + repolluted L1 after every");
    println!("switch); realistic quanta make the penalty negligible — stream buffers");
    println!("multiprogram well, supporting the paper's parallel-machine setting.");
    Ok(())
}
