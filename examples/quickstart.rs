//! Quickstart: simulate one workload through the paper's memory system.
//!
//! Builds the paper's hierarchy — 64K I + 64K D primary caches backed by
//! ten stream buffers with the unit-stride filter — runs the `mgrid`
//! benchmark through it, and prints the hit rates the paper's evaluation
//! revolves around.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use streamsim::{MemorySystemBuilder, StreamConfig};
use streamsim_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The workload: the multigrid kernel at the paper's 32^3 input.
    let workload = benchmark("mgrid").expect("mgrid is a known benchmark");
    println!("workload: {} — {}", workload.name(), workload.description());
    println!(
        "modelled data set: {:.1} MB",
        workload.data_set_bytes() as f64 / (1 << 20) as f64
    );

    // The memory system of Figure 1: split L1 + unified stream buffers.
    let mut system = MemorySystemBuilder::paper_l1()
        .streams(StreamConfig::paper_filtered(10)?)
        .build()?;

    system.run(workload.as_ref());
    let report = system.finish();

    println!();
    println!("primary cache:");
    println!("  references      {:>12}", report.l1.refs());
    println!("  misses          {:>12}", report.l1.misses());
    println!(
        "  data miss rate  {:>11.2}%",
        report.l1.data_miss_rate() * 100.0
    );

    let streams = report.streams.expect("streams configured");
    println!();
    println!("stream buffers (10 streams, depth 2, 16-entry unit filter):");
    println!("  lookups         {:>12}", streams.lookups);
    println!("  hits            {:>12}", streams.hits);
    println!("  hit rate        {:>11.1}%", streams.hit_rate() * 100.0);
    println!(
        "  extra bandwidth {:>11.1}%",
        streams.extra_bandwidth() * 100.0
    );
    println!("  mean run length {:>12.1}", streams.lengths.mean_length());

    println!();
    println!("paper reference (Fig. 3 / Fig. 5): mgrid streams at roughly 75-80% hit rate,");
    println!("with the filter cutting extra bandwidth to under half its unfiltered level.");
    Ok(())
}
