//! The unit-stride filter trade-off (the paper's §6 / Figure 5 story).
//!
//! Streams that allocate on every miss waste memory bandwidth flushing
//! speculative prefetches. The paper's filter allocates only after two
//! misses to consecutive cache blocks. This example runs three
//! contrasting benchmarks — bandwidth-hungry `adm`, short-burst `appbt`
//! (the case the filter *hurts*) and long-stream `trfd` (the case it
//! rescues) — with and without the filter, at several filter sizes.
//!
//! Run with:
//! ```text
//! cargo run --release --example bandwidth_filter
//! ```

use streamsim::report::TextTable;
use streamsim::{record_miss_trace, run_streams, RecordOptions, StreamConfig};
use streamsim_streams::Allocation;
use streamsim_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The §6 filter trade-off: hit rate vs extra memory bandwidth\n");

    let mut table = TextTable::new(vec![
        "bench",
        "config",
        "hit %",
        "EB %",
        "allocations",
        "useless prefetches",
    ]);

    for name in ["adm", "appbt", "trfd"] {
        let workload = benchmark(name).expect("known benchmark");
        let trace = record_miss_trace(workload.as_ref(), &RecordOptions::default())?;

        let configs: Vec<(String, StreamConfig)> =
            std::iter::once(("no filter".to_owned(), StreamConfig::paper_basic(10)?))
                .chain([4usize, 16, 64].into_iter().map(|entries| {
                    (
                        format!("filter[{entries}]"),
                        StreamConfig::new(10, 2, Allocation::UnitFilter { entries })
                            .expect("valid config"),
                    )
                }))
                .collect();

        for (label, config) in configs {
            let stats = run_streams(&trace, config);
            table.row(vec![
                name.to_owned(),
                label,
                format!("{:.1}", stats.hit_rate() * 100.0),
                format!("{:.1}", stats.extra_bandwidth() * 100.0),
                stats.allocations.to_string(),
                stats.useless_prefetches().to_string(),
            ]);
        }
    }

    println!("{table}");
    println!("What to look for (paper §6.1):");
    println!(" * adm: the filter slashes EB — isolated gather misses no longer allocate.");
    println!(" * appbt: hit rate drops noticeably — its streams are short bursts and the");
    println!("   filter spends two misses verifying each one (the paper's argument for a");
    println!("   deactivatable filter).");
    println!(" * trfd: EB collapses at almost no hit-rate cost — the paper's best case.");
    Ok(())
}
