//! Non-unit-stride detection on the FFT workload (§7, Figures 8 & 9).
//!
//! `fftpde` walks its 3-D array at strides of n and n² complex elements —
//! patterns ordinary stream buffers cannot prefetch. This example shows
//! the czone partition scheme detecting those strides, sweeps the czone
//! size to expose the detection window, and compares against the
//! "minimum delta" alternative the paper rejected on hardware cost.
//!
//! Run with:
//! ```text
//! cargo run --release --example strided_fft
//! ```

use streamsim::report::TextTable;
use streamsim::{record_miss_trace, run_streams, RecordOptions, StreamConfig};
use streamsim_streams::Allocation;
use streamsim_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = benchmark("fftpde").expect("known benchmark");
    println!(
        "workload: {} — {}\n",
        workload.name(),
        workload.description()
    );

    let trace = record_miss_trace(workload.as_ref(), &RecordOptions::default())?;
    println!(
        "primary-cache misses: {} (data miss rate {:.2}%)\n",
        trace.fetches(),
        trace.l1().data_miss_rate() * 100.0
    );

    // Baseline: unit-stride-only streams.
    let unit = run_streams(&trace, StreamConfig::paper_filtered(10)?);
    println!(
        "unit-stride only:          hit rate {:>5.1}%   (paper: ~26-29%)",
        unit.hit_rate() * 100.0
    );

    // The minimum-delta alternative.
    let min_delta = run_streams(
        &trace,
        StreamConfig::new(
            10,
            2,
            Allocation::MinDelta {
                entries: 16,
                max_stride_words: 1 << 20,
            },
        )?,
    );
    println!(
        "minimum-delta scheme:      hit rate {:>5.1}%   (paper: \"similar performance\",",
        min_delta.hit_rate() * 100.0
    );
    println!("                                            rejected on hardware cost)\n");

    // The czone scheme across czone sizes — Figure 9.
    println!("czone partition scheme (Figure 9 sweep):");
    let mut table = TextTable::new(vec!["czone bits", "hit %", "strided allocations"]);
    for bits in [10u32, 12, 14, 16, 18, 20, 22, 24, 26] {
        let stats = run_streams(&trace, StreamConfig::paper_strided(10, bits)?);
        table.row(vec![
            bits.to_string(),
            format!("{:.1}", stats.hit_rate() * 100.0),
            stats.strided_allocations.to_string(),
        ]);
    }
    println!("{table}");
    println!("The paper's finding: detection needs the czone to span a little more than");
    println!("twice the stride (here the plane stride is 2^14 words), and very large");
    println!("czones merge unrelated streams into one partition, defeating the FSM —");
    println!("fftpde's usable window is roughly 16-23 bits.");
    Ok(())
}
