//! The trace pipeline: generate once, store compressed, replay anywhere.
//!
//! The paper's workflow was Shade → sampled trace files → simulator. This
//! example reproduces that pipeline with the library API: generate a
//! benchmark's reference stream, time-sample it as the paper did, store
//! it in the delta-compressed trace format, and replay the stored trace
//! through two different stream configurations — without regenerating.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_pipeline
//! ```

use streamsim::{
    benchmark, collect_trace, record_miss_trace, run_streams, Access, RecordOptions, StreamConfig,
    TimeSampler,
};
use streamsim_trace::io::{read_trace_compressed, write_trace_compressed};
use streamsim_workloads::combinators::RecordedTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and time-sample, as the paper did (10k on / 90k off).
    let workload = benchmark("applu").expect("known benchmark");
    let full: Vec<Access> = collect_trace(workload.as_ref());
    let sampled: Vec<Access> = TimeSampler::paper_default(full.iter().copied()).collect();
    println!(
        "generated {} references, paper sampling kept {} ({:.1}%)",
        full.len(),
        sampled.len(),
        100.0 * sampled.len() as f64 / full.len() as f64
    );

    // 2. Store in the compressed trace format.
    let path = std::env::temp_dir().join("applu-sampled.sstr");
    {
        let file = std::fs::File::create(&path)?;
        write_trace_compressed(std::io::BufWriter::new(file), &sampled)?;
    }
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "stored {} ({:.2} MB, {:.1} bits/ref vs 64 raw)",
        path.display(),
        bytes as f64 / (1 << 20) as f64,
        8.0 * bytes as f64 / sampled.len() as f64
    );

    // 3. Reload and replay through two configurations.
    let reloaded = {
        let file = std::fs::File::open(&path)?;
        read_trace_compressed(std::io::BufReader::new(file))?
    };
    assert_eq!(reloaded, sampled, "lossless round trip");
    let replay = RecordedTrace::new("applu-sampled", reloaded);
    let miss_trace = record_miss_trace(&replay, &RecordOptions::default())?;
    println!("\nreplaying {} primary-cache misses:", miss_trace.fetches());
    for (label, config) in [
        ("10 streams, unfiltered", StreamConfig::paper_basic(10)?),
        (
            "10 streams + unit filter",
            StreamConfig::paper_filtered(10)?,
        ),
    ] {
        let stats = run_streams(&miss_trace, config);
        println!(
            "  {label:<26} hit {:>5.1}%   EB {:>5.1}%",
            stats.hit_rate() * 100.0,
            stats.extra_bandwidth() * 100.0
        );
    }

    std::fs::remove_file(&path).ok();
    println!("\n(time sampling preserves the hit-rate picture at a tenth of the cost —");
    println!("compare against an unsampled run with RecordOptions::default())");
    Ok(())
}
