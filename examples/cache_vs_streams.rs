//! Streams versus a secondary cache as the data set grows (§8, Table 4).
//!
//! The paper's headline economic argument: a handful of stream buffers
//! can match the local hit rate of a multi-megabyte secondary cache on
//! regular scientific codes, and as the data set grows the equivalent
//! cache grows with it while the stream hardware stays fixed. This
//! example runs `applu` at two input sizes, measures the stream hit rate,
//! and finds the smallest L2 that keeps up.
//!
//! Run with:
//! ```text
//! cargo run --release --example cache_vs_streams
//! ```

use streamsim::report::{size, TextTable};
use streamsim::{record_miss_trace, run_l2, run_streams, CacheConfig, RecordOptions, StreamConfig};
use streamsim_workloads::kernels::Applu;
use streamsim_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Streams vs secondary cache as the data set scales (Table 4)\n");

    let inputs: [(&str, Applu); 2] = [
        ("small (18^3)", Applu::small()),
        ("large (24^3)", Applu::large()),
    ];

    let mut table = TextTable::new(vec![
        "input",
        "data set",
        "stream hit %",
        "equivalent L2",
        "L2 hit %",
    ]);

    for (label, workload) in inputs {
        let trace = record_miss_trace(&workload, &RecordOptions::default())?;
        let stream_hit = run_streams(&trace, StreamConfig::paper_strided(10, 16)?).hit_rate();

        // Sweep L2 capacities; at each, take the best associativity the
        // paper considered (1-4-way), block size pinned to the L1's so
        // capacity is the operative variable (see the table4 driver docs).
        let mut equivalent = None;
        let mut l2_hit = 0.0;
        for capacity in [
            64 << 10,
            128 << 10,
            256 << 10,
            512 << 10,
            1 << 20,
            2 << 20,
            4 << 20,
        ] {
            let mut best: f64 = 0.0;
            for assoc in [1, 2, 4] {
                let cfg = CacheConfig::secondary(capacity, assoc, trace.l1_block())?;
                best = best.max(run_l2(&trace, cfg, None)?.hit_rate());
            }
            l2_hit = best;
            if best >= stream_hit {
                equivalent = Some(capacity);
                break;
            }
        }

        table.row(vec![
            label.to_owned(),
            format!(
                "{:.1} MB",
                workload.data_set_bytes() as f64 / (1 << 20) as f64
            ),
            format!("{:.1}", stream_hit * 100.0),
            equivalent.map_or("> 4 MB".into(), size),
            format!("{:.1}", l2_hit * 100.0),
        ]);
    }

    println!("{table}");
    println!("Paper (Table 4): applu streams at 62% -> 73% while the equivalent cache");
    println!("doubles from 1 MB to 2 MB — a handful of stream buffers keeps pace with");
    println!("megabytes of SRAM, and scales better with the data set.");
    Ok(())
}
