//! The SoA `SetAssocCache` must be outcome-for-outcome identical to the
//! pre-restructure array-of-structs model kept in
//! `streamsim_cache::reference`. These property tests drive both caches
//! with the same randomized traces over randomized geometries and demand
//! byte-identical results: every detailed outcome (hit flag, evicted
//! block, dirtiness), every probe, every invalidate, the final counter
//! struct, and the resident-line count.
//!
//! Any divergence here means recorded miss traces would change, which
//! the PR contract forbids.

use streamsim_prng::quickcheck::{check_with, Gen};
use streamsim_prng::Rng;

use streamsim_cache::reference::ReferenceCache;
use streamsim_cache::{CacheConfig, Replacement, SetAssocCache, SetSampling, WritePolicy};
use streamsim_trace::{AccessKind, Addr, BlockSize};

/// Draw a random but valid cache geometry + policy pair.
fn gen_config(g: &mut Gen) -> CacheConfig {
    let assoc = g.pick(&[1u32, 2, 3, 4, 8]);
    let sets = g.pick(&[1u64, 2, 4, 8, 16, 64]);
    let block = g.pick(&[16u64, 32, 64]);
    let replacement = match g.gen_range(0u32..4) {
        0 => Replacement::Lru,
        1 => Replacement::Fifo,
        2 => Replacement::Random {
            seed: g.gen_range(0u64..1 << 32),
        },
        _ => {
            if assoc.is_power_of_two() {
                Replacement::TreePlru
            } else {
                Replacement::Random { seed: 0x5eed }
            }
        }
    };
    let write = if g.gen_bool(0.5) {
        WritePolicy::WriteBackAllocate
    } else {
        WritePolicy::WriteThroughNoAllocate
    };
    CacheConfig::new(
        sets * assoc as u64 * block,
        assoc,
        BlockSize::new(block).unwrap(),
    )
    .unwrap()
    .with_replacement(replacement)
    .with_write_policy(write)
}

/// One randomized operation against both caches.
#[derive(Clone, Copy, Debug)]
enum Op {
    Access(u64, bool),
    Probe(u64),
    Invalidate(u64),
}

fn gen_ops(g: &mut Gen, blocks: u64) -> Vec<Op> {
    g.vec(1usize..400, |g| {
        let block = g.gen_range(0..blocks);
        match g.gen_range(0u32..10) {
            0 => Op::Probe(block),
            1 => Op::Invalidate(block),
            _ => Op::Access(block, g.gen_bool(0.3)),
        }
    })
}

fn run_pair(soa: &mut SetAssocCache, aos: &mut ReferenceCache, ops: &[Op]) {
    let block_bytes = soa.config().block().bytes();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Access(block, store) => {
                // Stay off block boundaries to exercise offset masking.
                let addr = Addr::new(block * block_bytes + (i as u64 % block_bytes));
                let kind = if store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                assert_eq!(
                    soa.access_detailed(addr, kind),
                    aos.access_detailed(addr, kind),
                    "outcome diverged at op {i} ({op:?})"
                );
            }
            Op::Probe(block) => {
                let addr = Addr::new(block * block_bytes);
                assert_eq!(soa.probe(addr), aos.probe(addr), "probe diverged at op {i}");
            }
            Op::Invalidate(block) => {
                let addr = Addr::new(block * block_bytes);
                assert_eq!(
                    soa.invalidate(addr),
                    aos.invalidate(addr),
                    "invalidate diverged at op {i}"
                );
            }
        }
    }
    assert_eq!(soa.stats(), aos.stats(), "final statistics diverged");
    assert_eq!(
        soa.resident_blocks(),
        aos.resident_blocks(),
        "resident-line count diverged"
    );
}

/// Full-cache equivalence: every policy, geometry, and mixed trace.
#[test]
fn soa_matches_reference_cache() {
    check_with("soa_matches_reference_cache", 192, |g| {
        let cfg = gen_config(g);
        // Tags beyond the set count so evictions and full-index
        // reconstruction both get exercised.
        let blocks = cfg.num_sets() * 8;
        let ops = gen_ops(g, blocks);
        let mut soa = SetAssocCache::new(cfg).unwrap();
        let mut aos = ReferenceCache::new(cfg).unwrap();
        run_pair(&mut soa, &mut aos, &ops);
    });
}

/// Set-sampled equivalence: rows ≠ set indices, so the evicted-block
/// reconstruction must use the full set index, not the row.
#[test]
fn soa_matches_reference_cache_under_set_sampling() {
    check_with("soa_matches_reference_cache_under_set_sampling", 128, |g| {
        let cfg = gen_config(g);
        let max_f = cfg.num_sets().trailing_zeros().min(2);
        if max_f == 0 {
            g.discard();
        }
        let f = g.gen_range(1..=max_f);
        let sampling = SetSampling::new(f, g.gen_range(0..1u64 << f));
        let blocks = cfg.num_sets() * 8;
        let ops = gen_ops(g, blocks);
        let mut soa = SetAssocCache::with_sampling(cfg, sampling).unwrap();
        let mut aos = ReferenceCache::with_sampling(cfg, sampling).unwrap();
        run_pair(&mut soa, &mut aos, &ops);
    });
}
