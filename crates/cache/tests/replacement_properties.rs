//! Property-based tests for the cache replacement policies, on the
//! in-tree `streamsim-quickcheck` harness.

use streamsim_prng::quickcheck::{check, check_with};
use streamsim_prng::Rng;

use streamsim_cache::{CacheConfig, Replacement, SetAssocCache};
use streamsim_trace::{AccessKind, Addr, BlockSize};

const BLOCK: u64 = 32;

/// Build a small cache with the given policy: 4 sets × `assoc` ways.
fn cache(assoc: u32, policy: Replacement) -> SetAssocCache {
    let cfg = CacheConfig::new(
        4 * assoc as u64 * BLOCK,
        assoc,
        BlockSize::new(BLOCK).unwrap(),
    )
    .unwrap()
    .with_replacement(policy);
    SetAssocCache::new(cfg).unwrap()
}

/// Address of block `tag` in set `set` (4 sets).
fn addr(set: u64, tag: u64) -> Addr {
    Addr::new(((tag << 2) | set) * BLOCK)
}

/// LRU invariant: after any access sequence confined to one set, the
/// `assoc` most recently used distinct blocks are exactly the resident
/// ones.
#[test]
fn lru_keeps_the_most_recent_blocks() {
    check_with("lru_keeps_the_most_recent_blocks", 96, |g| {
        let tags = g.vec(1usize..60, |g| g.gen_range(0u64..12));
        let assoc = g.gen_range(1u32..5);
        let mut c = cache(assoc, Replacement::Lru);
        for &t in &tags {
            c.access(addr(2, t), AccessKind::Load);
        }
        // Most-recent distinct tags, newest first.
        let mut recent: Vec<u64> = Vec::new();
        for &t in tags.iter().rev() {
            if !recent.contains(&t) {
                recent.push(t);
            }
            if recent.len() == assoc as usize {
                break;
            }
        }
        for &t in &recent {
            assert!(c.probe(addr(2, t)), "tag {t} should be resident");
        }
        // And any distinct tag beyond the assoc most recent is absent.
        let mut all: Vec<u64> = Vec::new();
        for &t in tags.iter().rev() {
            if !all.contains(&t) {
                all.push(t);
            }
        }
        for &t in all.iter().skip(assoc as usize) {
            assert!(!c.probe(addr(2, t)), "tag {t} should be evicted");
        }
    });
}

/// FIFO invariant: residency depends only on fill order, never on
/// touches — the resident set equals the last `assoc` distinct blocks
/// in *first-miss* order among those still unreplaced. We check the
/// weaker but exact property that a re-access never extends a block's
/// lifetime: interleaving extra touches of one block does not change
/// which blocks survive.
#[test]
fn fifo_touches_do_not_extend_lifetime() {
    check_with("fifo_touches_do_not_extend_lifetime", 96, |g| {
        let tags = g.vec(1usize..40, |g| g.gen_range(0u64..10));
        let hot = g.gen_range(0u64..10);
        let run = |with_touches: bool| {
            let mut c = cache(2, Replacement::Fifo);
            for &t in &tags {
                c.access(addr(1, t), AccessKind::Load);
                if with_touches {
                    // Touch `hot` only when already resident, so no new
                    // fill is introduced.
                    if c.probe(addr(1, hot)) {
                        c.access(addr(1, hot), AccessKind::Load);
                    }
                }
            }
            (0u64..10).map(|t| c.probe(addr(1, t))).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    });
}

/// All policies agree on a working set that fits: no evictions ever
/// happen, so every policy gives the same (perfect) behaviour after the
/// cold misses.
#[test]
fn policies_agree_below_capacity() {
    check_with("policies_agree_below_capacity", 96, |g| {
        // 4 distinct tags into a 4-way set: never evicts.
        let tags = g.vec(1usize..50, |g| g.gen_range(0u64..4));
        let policies = [
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::Random { seed: 1 },
            Replacement::TreePlru,
        ];
        let mut results = Vec::new();
        for p in policies {
            let mut c = cache(4, p);
            let mut hits = 0u64;
            for &t in &tags {
                if c.access(addr(0, t), AccessKind::Load).is_hit() {
                    hits += 1;
                }
            }
            results.push((hits, c.stats().misses()));
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    });
}

/// Misses never exceed accesses and writebacks never exceed fills, for
/// any policy and any store-heavy access pattern.
#[test]
fn counters_stay_consistent() {
    check("counters_stay_consistent", |g| {
        let ops = g.vec(1usize..200, |g| (g.gen_range(0u64..64), g.gen_bool(0.5)));
        let policy = g.pick(&[
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::Random { seed: 7 },
            Replacement::TreePlru,
        ]);
        let mut c = cache(2, policy);
        for &(block, store) in &ops {
            let kind = if store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            c.access(Addr::new(block * BLOCK), kind);
        }
        let stats = c.stats();
        assert!(stats.misses() <= stats.accesses());
        assert!(stats.writebacks <= stats.misses());
        assert_eq!(stats.accesses(), ops.len() as u64);
    });
}
