//! Cache geometry and policy configuration.

use std::fmt;

use streamsim_trace::BlockSize;

/// Line replacement policy within a set.
///
/// The paper's primary caches use *random* replacement ("the caches use a
/// random replacement policy"); its secondary caches are conventional, for
/// which we default to LRU. FIFO is provided for ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    #[default]
    Lru,
    /// First-in-first-out (replace the oldest fill).
    Fifo,
    /// Uniform random among the lines of the set, from a seeded PRNG so
    /// simulations stay reproducible.
    Random {
        /// PRNG seed; equal seeds give bit-identical simulations.
        seed: u64,
    },
    /// Tree-based pseudo-LRU — the policy most real set-associative
    /// hardware implements (one bit per tree node instead of full LRU
    /// ordering). Requires a power-of-two associativity.
    TreePlru,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Replacement::Lru => f.write_str("LRU"),
            Replacement::Fifo => f.write_str("FIFO"),
            Replacement::Random { seed } => write!(f, "random(seed={seed})"),
            Replacement::TreePlru => f.write_str("tree-PLRU"),
        }
    }
}

/// Write handling policy.
///
/// The paper's data cache is write-back with write-allocate; write-through
/// without allocation is provided for ablation studies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-back, write-allocate: stores allocate on miss and dirty the
    /// line; dirty victims produce write-backs.
    #[default]
    WriteBackAllocate,
    /// Write-through, no-allocate: stores update memory directly; a store
    /// miss does not fill the cache and no line is ever dirty.
    WriteThroughNoAllocate,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::WriteBackAllocate => f.write_str("write-back/write-allocate"),
            WritePolicy::WriteThroughNoAllocate => f.write_str("write-through/no-allocate"),
        }
    }
}

/// Error produced when a [`CacheConfig`] is geometrically impossible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Capacity is zero or not divisible into whole sets of whole blocks.
    BadCapacity {
        /// The offending capacity in bytes.
        size_bytes: u64,
        /// Bytes per set (associativity × block size).
        set_bytes: u64,
    },
    /// Associativity of zero.
    ZeroAssociativity,
    /// The number of sets must be a power of two for index extraction.
    SetsNotPowerOfTwo {
        /// The computed (non-power-of-two) set count.
        sets: u64,
    },
    /// Tree-PLRU replacement needs a power-of-two associativity.
    PlruNeedsPowerOfTwoAssoc {
        /// The offending associativity.
        assoc: u32,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::BadCapacity {
                size_bytes,
                set_bytes,
            } => write!(
                f,
                "capacity {size_bytes} bytes is not a positive multiple of the set size {set_bytes} bytes"
            ),
            CacheConfigError::ZeroAssociativity => f.write_str("associativity must be at least 1"),
            CacheConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "number of sets ({sets}) must be a power of two")
            }
            CacheConfigError::PlruNeedsPowerOfTwoAssoc { assoc } => {
                write!(f, "tree-PLRU requires a power-of-two associativity, got {assoc}")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Complete configuration of one set-associative cache.
///
/// Construct with [`CacheConfig::new`] then customise with the `with_*`
/// builder methods, or start from a preset such as
/// [`CacheConfig::paper_l1`].
///
/// # Example
///
/// ```
/// use streamsim_cache::{CacheConfig, Replacement};
/// use streamsim_trace::BlockSize;
///
/// let l2 = CacheConfig::new(1 << 20, 2, BlockSize::new(64)?)?
///     .with_replacement(Replacement::Lru);
/// assert_eq!(l2.num_sets(), (1 << 20) / (2 * 64));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: u32,
    block: BlockSize,
    replacement: Replacement,
    write: WritePolicy,
}

impl CacheConfig {
    /// Creates a configuration with the given capacity, associativity and
    /// block size, LRU replacement and write-back/write-allocate policy.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the capacity is not a positive
    /// multiple of `assoc × block`, if `assoc` is zero, or if the implied
    /// number of sets is not a power of two.
    pub fn new(size_bytes: u64, assoc: u32, block: BlockSize) -> Result<Self, CacheConfigError> {
        if assoc == 0 {
            return Err(CacheConfigError::ZeroAssociativity);
        }
        let set_bytes = assoc as u64 * block.bytes();
        if size_bytes == 0 || !size_bytes.is_multiple_of(set_bytes) {
            return Err(CacheConfigError::BadCapacity {
                size_bytes,
                set_bytes,
            });
        }
        let sets = size_bytes / set_bytes;
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo { sets });
        }
        Ok(CacheConfig {
            size_bytes,
            assoc,
            block,
            replacement: Replacement::Lru,
            write: WritePolicy::WriteBackAllocate,
        })
    }

    /// The paper's primary-cache configuration: 64 KB, 4-way, 32-byte
    /// blocks, random replacement, write-back/write-allocate.
    ///
    /// (The paper states 64 KB 4-way with random replacement; it does not
    /// state the primary block size, for which we adopt 32 bytes — see
    /// DESIGN.md.)
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is fallible only because it
    /// delegates to [`CacheConfig::new`].
    pub fn paper_l1() -> Result<Self, CacheConfigError> {
        Ok(Self::new(
            64 * 1024,
            4,
            BlockSize::new(32).expect("32 is a power of two"),
        )?
        .with_replacement(Replacement::Random { seed: 0x5eed }))
    }

    /// A secondary-cache configuration as swept in the paper's Table 4:
    /// capacity in bytes, associativity 1–4 and a 64- or 128-byte block,
    /// with LRU replacement.
    ///
    /// # Errors
    ///
    /// See [`CacheConfig::new`].
    pub fn secondary(
        size_bytes: u64,
        assoc: u32,
        block: BlockSize,
    ) -> Result<Self, CacheConfigError> {
        Self::new(size_bytes, assoc, block)
    }

    /// Replaces the replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Replaces the write policy.
    #[must_use]
    pub fn with_write_policy(mut self, write: WritePolicy) -> Self {
        self.write = write;
        self
    }

    /// Capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Associativity (lines per set).
    pub fn assoc(self) -> u32 {
        self.assoc
    }

    /// Cache block size.
    pub fn block(self) -> BlockSize {
        self.block
    }

    /// Replacement policy.
    pub fn replacement(self) -> Replacement {
        self.replacement
    }

    /// Write policy.
    pub fn write_policy(self) -> WritePolicy {
        self.write
    }

    /// Number of sets (always a power of two).
    pub fn num_sets(self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.block.bytes())
    }

    /// `log2` of the number of sets.
    pub fn set_index_bits(self) -> u32 {
        self.num_sets().trailing_zeros()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = self.size_bytes;
        if size >= 1 << 20 && size.is_multiple_of(1 << 20) {
            write!(f, "{} MB", size >> 20)?;
        } else if size >= 1 << 10 && size.is_multiple_of(1 << 10) {
            write!(f, "{} KB", size >> 10)?;
        } else {
            write!(f, "{size} B")?;
        }
        write!(
            f,
            " {}-way, {} blocks, {}, {}",
            self.assoc, self.block, self.replacement, self.write
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_geometry() {
        let c = CacheConfig::new(64 * 1024, 4, BlockSize::new(32).unwrap()).unwrap();
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.set_index_bits(), 9);
        assert_eq!(c.assoc(), 4);
        assert_eq!(c.size_bytes(), 65536);
    }

    #[test]
    fn rejects_zero_assoc() {
        assert_eq!(
            CacheConfig::new(1024, 0, BlockSize::default()),
            Err(CacheConfigError::ZeroAssociativity)
        );
    }

    #[test]
    fn rejects_indivisible_capacity() {
        let err = CacheConfig::new(1000, 4, BlockSize::new(32).unwrap()).unwrap_err();
        assert!(matches!(err, CacheConfigError::BadCapacity { .. }));
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(CacheConfig::new(0, 1, BlockSize::default()).is_err());
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        // 3 sets of 1 × 32 bytes.
        let err = CacheConfig::new(96, 1, BlockSize::new(32).unwrap()).unwrap_err();
        assert_eq!(err, CacheConfigError::SetsNotPowerOfTwo { sets: 3 });
    }

    #[test]
    fn fully_associative_single_set() {
        let c = CacheConfig::new(1024, 32, BlockSize::new(32).unwrap()).unwrap();
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.set_index_bits(), 0);
    }

    #[test]
    fn paper_l1_preset() {
        let c = CacheConfig::paper_l1().unwrap();
        assert_eq!(c.size_bytes(), 64 * 1024);
        assert_eq!(c.assoc(), 4);
        assert!(matches!(c.replacement(), Replacement::Random { .. }));
        assert_eq!(c.write_policy(), WritePolicy::WriteBackAllocate);
    }

    #[test]
    fn builders_replace_policies() {
        let c = CacheConfig::new(1024, 1, BlockSize::default())
            .unwrap()
            .with_replacement(Replacement::Fifo)
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        assert_eq!(c.replacement(), Replacement::Fifo);
        assert_eq!(c.write_policy(), WritePolicy::WriteThroughNoAllocate);
    }

    #[test]
    fn display_humanises_sizes() {
        let c = CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap();
        assert!(c.to_string().starts_with("1 MB"));
        let c = CacheConfig::new(64 << 10, 4, BlockSize::new(32).unwrap()).unwrap();
        assert!(c.to_string().starts_with("64 KB"));
        let c = CacheConfig::new(512, 1, BlockSize::new(32).unwrap()).unwrap();
        assert!(c.to_string().starts_with("512 B"));
    }
}
