//! Jouppi's original front end: a direct-mapped L1 with a victim cache.
//!
//! The paper simulates a 4-way primary so that "the associativity
//! minimized the effect of cache conflicts … (In a direct-mapped cache,
//! Jouppi's victim buffers may also be needed.)" [`VictimL1`] is that
//! sidestepped configuration, built so the ablation suite can measure it:
//! a direct-mapped (or any) cache whose evictions — clean *and* dirty —
//! spill into a small fully-associative [`VictimCache`], and whose misses
//! first try to recover the block from there before going to memory (and
//! the stream buffers).

use streamsim_trace::{AccessKind, Addr, BlockSize};

use crate::{CacheConfig, CacheConfigError, CacheStats, SetAssocCache, VictimCache, VictimOutcome};

/// Where a reference was serviced by a [`VictimL1`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimL1Outcome {
    /// Hit in the primary cache.
    Hit,
    /// Missed the primary but recovered from the victim cache (a fast
    /// swap, not a memory access).
    VictimHit,
    /// True miss: the block must come from the next level.
    Miss,
}

/// A cache coupled with a victim buffer that captures every eviction.
///
/// # Example
///
/// ```
/// use streamsim_cache::{CacheConfig, VictimL1, VictimL1Outcome};
/// use streamsim_trace::{AccessKind, Addr, BlockSize};
///
/// // Direct-mapped 4 KB cache + 4-entry victim buffer.
/// let cfg = CacheConfig::new(4096, 1, BlockSize::new(32)?)?;
/// let mut l1 = VictimL1::new(cfg, 4)?;
/// // Two conflicting blocks ping-pong; the victim cache recovers them.
/// let (a, b) = (Addr::new(0), Addr::new(4096));
/// l1.access(a, AccessKind::Load);
/// l1.access(b, AccessKind::Load); // evicts a into the victim buffer
/// assert_eq!(l1.access(a, AccessKind::Load), VictimL1Outcome::VictimHit);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct VictimL1 {
    cache: SetAssocCache,
    victims: VictimCache,
    block: BlockSize,
    victim_hits: u64,
    true_misses: u64,
}

impl VictimL1 {
    /// Creates the coupled pair with a victim buffer of
    /// `victim_entries` blocks.
    ///
    /// # Errors
    ///
    /// Propagates cache configuration errors.
    pub fn new(config: CacheConfig, victim_entries: usize) -> Result<Self, CacheConfigError> {
        Ok(VictimL1 {
            cache: SetAssocCache::new(config)?,
            victims: VictimCache::new(victim_entries),
            block: config.block(),
            victim_hits: 0,
            true_misses: 0,
        })
    }

    /// Processes one reference.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> VictimL1Outcome {
        match self.cache.access_detailed(addr, kind) {
            None | Some(crate::DetailedOutcome { hit: true, .. }) => VictimL1Outcome::Hit,
            Some(crate::DetailedOutcome {
                hit: false,
                evicted,
            }) => {
                // Every displaced line — clean or dirty — goes to the
                // victim buffer (this is what distinguishes a victim
                // cache from a plain write buffer).
                if let Some(e) = evicted {
                    self.victims.insert_victim(e.block, e.dirty);
                }
                if self.victims.lookup(addr.block(self.block)) == VictimOutcome::Hit {
                    self.victim_hits += 1;
                    VictimL1Outcome::VictimHit
                } else {
                    self.true_misses += 1;
                    VictimL1Outcome::Miss
                }
            }
        }
    }

    /// The primary cache's statistics (its misses include the ones the
    /// victim buffer recovered).
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Primary misses recovered by the victim buffer.
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    /// Misses that escaped both structures.
    pub fn true_misses(&self) -> u64 {
        self.true_misses
    }

    /// Fraction of primary misses the victim buffer recovered.
    pub fn recovery_rate(&self) -> f64 {
        let total = self.victim_hits + self.true_misses;
        if total == 0 {
            0.0
        } else {
            self.victim_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(kb: u64, victims: usize) -> VictimL1 {
        let cfg = CacheConfig::new(kb * 1024, 1, BlockSize::new(32).unwrap()).unwrap();
        VictimL1::new(cfg, victims).unwrap()
    }

    #[test]
    fn ping_pong_is_fully_recovered() {
        let mut l1 = dm(4, 4);
        let (a, b) = (Addr::new(0), Addr::new(4096));
        l1.access(a, AccessKind::Load);
        l1.access(b, AccessKind::Load);
        for _ in 0..20 {
            assert_eq!(l1.access(a, AccessKind::Load), VictimL1Outcome::VictimHit);
            assert_eq!(l1.access(b, AccessKind::Load), VictimL1Outcome::VictimHit);
        }
        assert_eq!(l1.true_misses(), 2, "only the cold misses escape");
        assert!(l1.recovery_rate() > 0.9);
    }

    #[test]
    fn five_way_conflict_defeats_a_small_victim_buffer() {
        // 5 blocks conflicting in one set cycle through a 2-entry victim
        // buffer faster than they return: recovery stays low.
        let mut l1 = dm(4, 2);
        for round in 0..10u64 {
            for i in 0..5u64 {
                l1.access(Addr::new(i * 4096), AccessKind::Load);
            }
            let _ = round;
        }
        assert!(
            l1.recovery_rate() < 0.2,
            "recovery {} should be low",
            l1.recovery_rate()
        );
    }

    #[test]
    fn sequential_misses_are_not_recovered() {
        // Streaming has no conflicts to recover — the victim buffer is
        // orthogonal to what stream buffers fix.
        let mut l1 = dm(4, 8);
        for i in 0..1000u64 {
            l1.access(Addr::new(i * 32), AccessKind::Load);
        }
        assert_eq!(l1.victim_hits(), 0);
    }

    #[test]
    fn capacity_witness_outcomes_partition() {
        let mut l1 = dm(4, 4);
        let mut counts = [0u64; 3];
        for i in 0..500u64 {
            match l1.access(Addr::new((i * 131) % 16384), AccessKind::Load) {
                VictimL1Outcome::Hit => counts[0] += 1,
                VictimL1Outcome::VictimHit => counts[1] += 1,
                VictimL1Outcome::Miss => counts[2] += 1,
            }
        }
        assert_eq!(counts.iter().sum::<u64>(), 500);
        assert_eq!(counts[1], l1.victim_hits());
        assert_eq!(counts[2], l1.true_misses());
    }
}
