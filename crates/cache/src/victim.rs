//! Jouppi's victim cache.
//!
//! The paper notes that with a direct-mapped primary cache "Jouppi's victim
//! buffers may also be needed" alongside stream buffers. A victim cache is
//! a small fully-associative buffer holding blocks recently evicted from
//! the primary cache; a primary miss that hits in the victim cache swaps
//! the block back at much lower cost than a memory fetch. We provide it for
//! the direct-mapped ablation study.

use std::collections::VecDeque;

use streamsim_trace::BlockAddr;

/// Outcome of offering a miss to the victim cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimOutcome {
    /// The missed block was found among recent victims (fast recovery).
    Hit,
    /// Not found; the miss proceeds to the next memory level.
    Miss,
}

/// A small fully-associative LRU buffer of recently evicted blocks.
///
/// # Example
///
/// ```
/// use streamsim_cache::{VictimCache, VictimOutcome};
/// use streamsim_trace::BlockAddr;
///
/// let mut v = VictimCache::new(4);
/// v.insert_victim(BlockAddr::from_index(7), false);
/// assert_eq!(v.lookup(BlockAddr::from_index(7)), VictimOutcome::Hit);
/// // A hit removes the entry (it moved back into the primary cache).
/// assert_eq!(v.lookup(BlockAddr::from_index(7)), VictimOutcome::Miss);
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    /// Front = oldest, back = newest.
    entries: VecDeque<(BlockAddr, bool)>,
    capacity: usize,
    hits: u64,
    lookups: u64,
    dirty_evictions: u64,
}

impl VictimCache {
    /// Creates a victim cache holding up to `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim cache needs at least one entry");
        VictimCache {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            lookups: 0,
            dirty_evictions: 0,
        }
    }

    /// Records a block evicted from the primary cache (with its dirty bit).
    /// The oldest entry falls out when full; if it was dirty it counts as a
    /// memory write-back.
    pub fn insert_victim(&mut self, block: BlockAddr, dirty: bool) {
        // A block can be re-evicted while an old copy is still here;
        // keep only the newest copy (and the union of dirtiness).
        if let Some(pos) = self.entries.iter().position(|&(b, _)| b == block) {
            let (_, old_dirty) = self.entries.remove(pos).expect("position is valid");
            self.entries.push_back((block, dirty || old_dirty));
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some((_, was_dirty)) = self.entries.pop_front() {
                if was_dirty {
                    self.dirty_evictions += 1;
                }
            }
        }
        self.entries.push_back((block, dirty));
    }

    /// Looks up a primary-cache miss; on hit the entry is removed (the
    /// block is swapped back into the primary cache).
    pub fn lookup(&mut self, block: BlockAddr) -> VictimOutcome {
        self.lookups += 1;
        if let Some(pos) = self.entries.iter().position(|&(b, _)| b == block) {
            self.entries.remove(pos);
            self.hits += 1;
            VictimOutcome::Hit
        } else {
            VictimOutcome::Miss
        }
    }

    /// Number of blocks currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate over lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Dirty blocks aged out to memory.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn fifo_aging() {
        let mut v = VictimCache::new(2);
        v.insert_victim(b(1), false);
        v.insert_victim(b(2), false);
        v.insert_victim(b(3), false); // ages out 1
        assert_eq!(v.lookup(b(1)), VictimOutcome::Miss);
        assert_eq!(v.lookup(b(2)), VictimOutcome::Hit);
        assert_eq!(v.lookup(b(3)), VictimOutcome::Hit);
    }

    #[test]
    fn hit_removes_entry() {
        let mut v = VictimCache::new(2);
        v.insert_victim(b(9), true);
        assert_eq!(v.lookup(b(9)), VictimOutcome::Hit);
        assert!(v.is_empty());
    }

    #[test]
    fn reinsert_merges_dirty_bit() {
        let mut v = VictimCache::new(1);
        v.insert_victim(b(5), true);
        v.insert_victim(b(5), false); // keeps dirty = true, no aging
        v.insert_victim(b(6), false); // ages out 5, which was dirty
        assert_eq!(v.dirty_evictions(), 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn dirty_eviction_counted_only_for_dirty() {
        let mut v = VictimCache::new(1);
        v.insert_victim(b(1), false);
        v.insert_victim(b(2), true);
        assert_eq!(v.dirty_evictions(), 0);
        v.insert_victim(b(3), false);
        assert_eq!(v.dirty_evictions(), 1);
    }

    #[test]
    fn hit_rate() {
        let mut v = VictimCache::new(4);
        v.insert_victim(b(1), false);
        v.lookup(b(1));
        v.lookup(b(2));
        assert_eq!(v.hits(), 1);
        assert_eq!(v.lookups(), 2);
        assert!((v.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = VictimCache::new(0);
    }
}
