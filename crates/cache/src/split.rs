//! The split primary cache (separate instruction and data caches).

use streamsim_trace::{Access, AccessKind, Addr};

use crate::{AccessOutcome, CacheConfig, CacheConfigError, CacheStats, SetAssocCache};

/// A split L1: separate instruction and data caches, as in the paper's
/// simulated processor (64 KB I + 64 KB D, 4-way).
///
/// Instruction fetches go to the I-cache; loads and stores go to the
/// D-cache. Misses from either side form the unified miss stream presented
/// to the stream buffers.
///
/// # Example
///
/// ```
/// use streamsim_cache::SplitL1;
/// use streamsim_trace::{Access, Addr};
///
/// let mut l1 = SplitL1::paper()?;
/// let outcome = l1.access(Access::ifetch(Addr::new(0x400000)));
/// assert!(outcome.is_miss());
/// assert_eq!(l1.icache().stats().misses(), 1);
/// assert_eq!(l1.dcache().stats().accesses(), 0);
/// # Ok::<(), streamsim_cache::CacheConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SplitL1 {
    icache: SetAssocCache,
    dcache: SetAssocCache,
}

impl SplitL1 {
    /// Creates a split L1 from separate I and D configurations.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from either side.
    pub fn new(icfg: CacheConfig, dcfg: CacheConfig) -> Result<Self, CacheConfigError> {
        Ok(SplitL1 {
            icache: SetAssocCache::new(icfg)?,
            dcache: SetAssocCache::new(dcfg)?,
        })
    }

    /// The paper's configuration: 64 KB I + 64 KB D, both 4-way with
    /// random replacement and write-back/write-allocate data handling.
    ///
    /// # Errors
    ///
    /// Never fails in practice; fallible for uniformity.
    pub fn paper() -> Result<Self, CacheConfigError> {
        let cfg = CacheConfig::paper_l1()?;
        Self::new(cfg, cfg)
    }

    /// Routes one reference to the appropriate side.
    #[inline(always)]
    pub fn access(&mut self, access: Access) -> AccessOutcome {
        streamsim_obs::count(streamsim_obs::Counter::L1Probes, 1);
        match access.kind {
            AccessKind::IFetch => self.icache.access(access.addr, access.kind),
            AccessKind::Load | AccessKind::Store => self.dcache.access(access.addr, access.kind),
        }
    }

    /// The instruction cache.
    pub fn icache(&self) -> &SetAssocCache {
        &self.icache
    }

    /// The data cache.
    pub fn dcache(&self) -> &SetAssocCache {
        &self.dcache
    }

    /// Invalidates a block in the data cache (e.g. external intervention).
    pub fn invalidate_data(&mut self, addr: Addr) -> Option<bool> {
        self.dcache.invalidate(addr)
    }

    /// Combined statistics of both sides.
    pub fn combined_stats(&self) -> CacheStats {
        let mut stats = *self.icache.stats();
        stats += *self.dcache.stats();
        stats
    }

    /// Total misses across both sides (the length of the unified miss
    /// stream the stream buffers observe).
    pub fn total_misses(&self) -> u64 {
        self.icache.stats().misses() + self.dcache.stats().misses()
    }

    /// Zeroes statistics on both sides, retaining contents.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        self.dcache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_trace::BlockSize;

    fn tiny() -> SplitL1 {
        let cfg = CacheConfig::new(256, 2, BlockSize::new(32).unwrap()).unwrap();
        SplitL1::new(cfg, cfg).unwrap()
    }

    #[test]
    fn routes_by_kind() {
        let mut l1 = tiny();
        l1.access(Access::ifetch(Addr::new(0)));
        l1.access(Access::load(Addr::new(0)));
        l1.access(Access::store(Addr::new(0)));
        assert_eq!(l1.icache().stats().accesses(), 1);
        assert_eq!(l1.dcache().stats().accesses(), 2);
    }

    #[test]
    fn same_address_is_independent_per_side() {
        let mut l1 = tiny();
        assert!(l1.access(Access::ifetch(Addr::new(64))).is_miss());
        // The D-cache has not seen the block: still a miss there.
        assert!(l1.access(Access::load(Addr::new(64))).is_miss());
        assert!(l1.access(Access::ifetch(Addr::new(64))).is_hit());
    }

    #[test]
    fn combined_stats_sum_sides() {
        let mut l1 = tiny();
        l1.access(Access::ifetch(Addr::new(0)));
        l1.access(Access::load(Addr::new(1024)));
        l1.access(Access::load(Addr::new(1024)));
        let stats = l1.combined_stats();
        assert_eq!(stats.accesses(), 3);
        assert_eq!(stats.hits(), 1);
        assert_eq!(l1.total_misses(), 2);
    }

    #[test]
    fn invalidate_data_touches_only_dcache() {
        let mut l1 = tiny();
        l1.access(Access::ifetch(Addr::new(0)));
        l1.access(Access::store(Addr::new(0)));
        assert_eq!(l1.invalidate_data(Addr::new(0)), Some(true));
        assert!(l1.icache().probe(Addr::new(0)), "icache copy untouched");
    }

    #[test]
    fn paper_preset_sizes() {
        let l1 = SplitL1::paper().unwrap();
        assert_eq!(l1.icache().config().size_bytes(), 64 * 1024);
        assert_eq!(l1.dcache().config().size_bytes(), 64 * 1024);
        assert_eq!(l1.dcache().config().assoc(), 4);
    }

    #[test]
    fn reset_stats_clears_both() {
        let mut l1 = tiny();
        l1.access(Access::ifetch(Addr::new(0)));
        l1.access(Access::load(Addr::new(0)));
        l1.reset_stats();
        assert_eq!(l1.combined_stats().accesses(), 0);
    }
}
