//! The generic set-associative cache simulator.

use streamsim_prng::{Rng, Xoshiro256StarStar};

use streamsim_trace::{AccessKind, Addr, BlockAddr};

use crate::{CacheConfig, CacheStats, Replacement, SetSampling, WritePolicy};

/// Result of presenting one reference to a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was present.
    Hit,
    /// The block was absent; it has been filled (subject to the write
    /// policy) and `writeback`, when present, is a dirty victim block that
    /// must be written to the next level.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<BlockAddr>,
    },
    /// Set sampling is active and this reference maps to an unsampled set;
    /// it was not simulated and no statistics were recorded.
    Bypassed,
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// `true` for [`AccessOutcome::Miss`].
    pub const fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss { .. })
    }
}

/// A line displaced by a fill, with its dirtiness — reported by
/// [`SetAssocCache::access_detailed`] so victim caches can capture clean
/// evictions too (plain [`SetAssocCache::access`] only reports dirty
/// write-backs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether it was dirty (needs writing back).
    pub dirty: bool,
}

/// Detailed result of [`SetAssocCache::access_detailed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetailedOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// The line displaced by the fill (misses only; `None` when an
    /// invalid way absorbed the fill, the set was bypassed, or the write
    /// policy did not allocate).
    pub evicted: Option<EvictedLine>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU: last-touch time. FIFO: fill time. Unused for random.
    stamp: u64,
}

/// A set-associative cache simulating tags and dirty bits (no data).
///
/// Supports LRU / FIFO / seeded-random replacement, write-back/write-
/// allocate or write-through/no-allocate write handling, and optional
/// [`SetSampling`] for cheap estimation of very large caches.
///
/// # Example
///
/// ```
/// use streamsim_cache::{CacheConfig, SetAssocCache};
/// use streamsim_trace::{AccessKind, Addr, BlockSize};
///
/// let cfg = CacheConfig::new(1024, 2, BlockSize::new(32)?)?;
/// let mut cache = SetAssocCache::new(cfg)?;
/// cache.access(Addr::new(0), AccessKind::Load);
/// assert!(cache.probe(Addr::new(16)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sampling: Option<SetSampling>,
    lines: Vec<Line>,
    rows: u64,
    set_mask: u64,
    set_bits: u32,
    clock: u64,
    rng: Option<Xoshiro256StarStar>,
    /// One word of tree bits per simulated set (tree-PLRU only).
    plru: Vec<u64>,
    stats: CacheStats,
}

/// Tree-PLRU helpers: the tree is stored one bit per internal node in a
/// u64 (heap order, root at bit 1); bit 0 sends the victim search left,
/// bit 1 right, and touches point the bits *away* from the touched way.
fn plru_touch(bits: &mut u64, assoc: u32, way: u32) {
    let mut node = 1u32;
    let mut span = assoc;
    while span > 1 {
        span /= 2;
        let right = way & span != 0;
        if right {
            *bits &= !(1 << node); // point left, away from the touched way
        } else {
            *bits |= 1 << node; // point right
        }
        node = node * 2 + right as u32;
    }
}

fn plru_victim(bits: u64, assoc: u32) -> u32 {
    let mut node = 1u32;
    let mut span = assoc;
    let mut way = 0u32;
    while span > 1 {
        span /= 2;
        let bit = (bits >> node) & 1;
        if bit == 1 {
            way += span;
        }
        node = node * 2 + bit as u32;
    }
    way
}

impl SetAssocCache {
    /// Creates a cache simulating every set of `config`.
    ///
    /// # Errors
    ///
    /// Infallible for any valid `config`; kept fallible for uniformity with
    /// [`SetAssocCache::with_sampling`].
    pub fn new(config: CacheConfig) -> Result<Self, crate::CacheConfigError> {
        Self::build(config, None)
    }

    /// Creates a cache that simulates only the sets selected by `sampling`.
    ///
    /// Tags are computed exactly as in the full cache, so the hit rate over
    /// the sampled sets is an unbiased estimator of the full-cache hit
    /// rate.
    ///
    /// # Errors
    ///
    /// Returns an error if the sampling is finer than the number of sets.
    pub fn with_sampling(
        config: CacheConfig,
        sampling: SetSampling,
    ) -> Result<Self, crate::CacheConfigError> {
        Self::build(config, Some(sampling))
    }

    fn build(
        config: CacheConfig,
        sampling: Option<SetSampling>,
    ) -> Result<Self, crate::CacheConfigError> {
        let sets = config.num_sets();
        let rows = match sampling {
            Some(s) => {
                let rows = sets >> s.log2_fraction();
                if rows == 0 {
                    return Err(crate::CacheConfigError::SetsNotPowerOfTwo { sets });
                }
                rows
            }
            None => sets,
        };
        let rng = match config.replacement() {
            Replacement::Random { seed } => Some(Xoshiro256StarStar::seed_from_u64(seed)),
            _ => None,
        };
        let plru = if config.replacement() == Replacement::TreePlru {
            if !config.assoc().is_power_of_two() || config.assoc() > 64 {
                return Err(crate::CacheConfigError::PlruNeedsPowerOfTwoAssoc {
                    assoc: config.assoc(),
                });
            }
            vec![0u64; rows as usize]
        } else {
            Vec::new()
        };
        Ok(SetAssocCache {
            config,
            sampling,
            lines: vec![Line::default(); (rows * config.assoc() as u64) as usize],
            rows,
            set_mask: sets - 1,
            set_bits: config.set_index_bits(),
            clock: 0,
            rng,
            plru,
            stats: CacheStats::new(),
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The active set sampling, if any.
    pub fn sampling(&self) -> Option<SetSampling> {
        self.sampling
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are retained), e.g. after a
    /// warm-up period.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    fn locate(&self, addr: Addr) -> Option<(u64, u64)> {
        let block = addr.block(self.config.block()).index();
        let set = block & self.set_mask;
        let tag = block >> self.set_bits;
        let row = match self.sampling {
            Some(s) => {
                if !s.selects(set) {
                    return None;
                }
                s.row(set)
            }
            None => set,
        };
        debug_assert!(row < self.rows);
        Some((row, tag))
    }

    fn set_range(&self, row: u64) -> std::ops::Range<usize> {
        let assoc = self.config.assoc() as usize;
        let start = row as usize * assoc;
        start..start + assoc
    }

    /// Presents one reference; fills on miss per the write policy.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        match self.detailed(addr, kind) {
            None => AccessOutcome::Bypassed,
            Some(DetailedOutcome { hit: true, .. }) => AccessOutcome::Hit,
            Some(DetailedOutcome {
                hit: false,
                evicted,
            }) => AccessOutcome::Miss {
                writeback: evicted.filter(|e| e.dirty).map(|e| e.block),
            },
        }
    }

    /// Like [`SetAssocCache::access`] but reports the evicted line even
    /// when clean, which a victim cache needs. Returns [`None`] for
    /// bypassed (unsampled) sets.
    pub fn access_detailed(&mut self, addr: Addr, kind: AccessKind) -> Option<DetailedOutcome> {
        self.detailed(addr, kind)
    }

    fn detailed(&mut self, addr: Addr, kind: AccessKind) -> Option<DetailedOutcome> {
        let (row, tag) = self.locate(addr)?;
        let write_back = self.config.write_policy() == WritePolicy::WriteBackAllocate;
        let replacement = self.config.replacement();
        let range = self.set_range(row);
        self.clock += 1;
        let clock = self.clock;

        // Hit?
        for (way, line) in self.lines[range.clone()].iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                if replacement == Replacement::Lru {
                    line.stamp = clock;
                }
                if replacement == Replacement::TreePlru {
                    plru_touch(
                        &mut self.plru[row as usize],
                        self.config.assoc(),
                        way as u32,
                    );
                }
                if kind.is_store() && write_back {
                    line.dirty = true;
                }
                self.stats.record(kind, true);
                return Some(DetailedOutcome {
                    hit: true,
                    evicted: None,
                });
            }
        }

        self.stats.record(kind, false);

        // Write-through / no-allocate: store misses do not fill.
        if kind.is_store() && !write_back {
            return Some(DetailedOutcome {
                hit: false,
                evicted: None,
            });
        }

        // Choose a victim: first invalid line, otherwise per policy.
        let victim_index = {
            let set = &self.lines[range.clone()];
            match set.iter().position(|l| !l.valid) {
                Some(i) => i,
                None => match replacement {
                    Replacement::Lru | Replacement::Fifo => set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.stamp)
                        .map(|(i, _)| i)
                        .expect("associativity >= 1"),
                    Replacement::Random { .. } => self
                        .rng
                        .as_mut()
                        .expect("random replacement has an rng")
                        .gen_range(0..range.len()),
                    Replacement::TreePlru => {
                        plru_victim(self.plru[row as usize], self.config.assoc()) as usize
                    }
                },
            }
        };

        let set_index = (addr.block(self.config.block()).index()) & self.set_mask;
        let line = &mut self.lines[range.start + victim_index];
        let evicted = if line.valid {
            if line.dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                block: BlockAddr::from_index((line.tag << self.set_bits) | set_index),
                dirty: line.dirty,
            })
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty: kind.is_store() && write_back,
            stamp: clock,
        };
        if replacement == Replacement::TreePlru {
            plru_touch(
                &mut self.plru[row as usize],
                self.config.assoc(),
                victim_index as u32,
            );
        }
        Some(DetailedOutcome {
            hit: false,
            evicted,
        })
    }

    /// Whether the block containing `addr` is present (no state change,
    /// no statistics). Returns `false` for unsampled sets.
    pub fn probe(&self, addr: Addr) -> bool {
        let Some((row, tag)) = self.locate(addr) else {
            return false;
        };
        self.lines[self.set_range(row)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the block containing `addr` if present; returns whether
    /// a line was invalidated and whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (row, tag) = self.locate(addr)?;
        let range = self.set_range(row);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.valid = false;
                let dirty = line.dirty;
                line.dirty = false;
                self.stats.invalidations += 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently held (sampled sets only).
    pub fn resident_blocks(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_trace::BlockSize;

    fn small(assoc: u32, replacement: Replacement) -> SetAssocCache {
        // 4 sets x assoc x 32B blocks.
        let cfg = CacheConfig::new(4 * assoc as u64 * 32, assoc, BlockSize::new(32).unwrap())
            .unwrap()
            .with_replacement(replacement);
        SetAssocCache::new(cfg).unwrap()
    }

    fn block_addr(set: u64, tag: u64) -> Addr {
        // 4 sets, 32-byte blocks.
        Addr::new(((tag << 2) | set) * 32)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, Replacement::Lru);
        assert!(c.access(Addr::new(0x100), AccessKind::Load).is_miss());
        assert!(c.access(Addr::new(0x11f), AccessKind::Load).is_hit());
        assert_eq!(c.stats().accesses(), 2);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(2, Replacement::Lru);
        let a = block_addr(0, 1);
        let b = block_addr(0, 2);
        let d = block_addr(0, 3);
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        c.access(a, AccessKind::Load); // a now MRU
        c.access(d, AccessKind::Load); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = small(2, Replacement::Fifo);
        let a = block_addr(0, 1);
        let b = block_addr(0, 2);
        let d = block_addr(0, 3);
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        c.access(a, AccessKind::Load); // touch must NOT save a under FIFO
        c.access(d, AccessKind::Load); // evicts a (oldest fill)
        assert!(!c.probe(a));
        assert!(c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn random_replacement_is_reproducible() {
        let run = || {
            let mut c = small(2, Replacement::Random { seed: 7 });
            let mut hits = 0;
            for i in 0..1000u64 {
                if c.access(Addr::new((i * 97) % 4096 * 32), AccessKind::Load)
                    .is_hit()
                {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plru_behaves_like_lru_for_two_way() {
        // With associativity 2 the PLRU tree is a single bit: exactly LRU.
        let mk = |policy| {
            let cfg = CacheConfig::new(4 * 2 * 32, 2, BlockSize::new(32).unwrap())
                .unwrap()
                .with_replacement(policy);
            SetAssocCache::new(cfg).unwrap()
        };
        let mut lru = mk(Replacement::Lru);
        let mut plru = mk(Replacement::TreePlru);
        // A deterministic mixed pattern within one set.
        let addrs: Vec<Addr> = [1u64, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1]
            .iter()
            .map(|&t| block_addr(0, t))
            .collect();
        for &a in &addrs {
            assert_eq!(
                lru.access(a, AccessKind::Load).is_hit(),
                plru.access(a, AccessKind::Load).is_hit(),
                "diverged at {a}"
            );
        }
    }

    #[test]
    fn plru_four_way_protects_recently_touched_ways() {
        let cfg = CacheConfig::new(4 * 4 * 32, 4, BlockSize::new(32).unwrap())
            .unwrap()
            .with_replacement(Replacement::TreePlru);
        let mut c = SetAssocCache::new(cfg).unwrap();
        // Fill a set with tags 1-4, touch 1 and 2, then force an eviction:
        // the victim must not be 1 or 2.
        for t in 1..=4 {
            c.access(block_addr(0, t), AccessKind::Load);
        }
        c.access(block_addr(0, 1), AccessKind::Load);
        c.access(block_addr(0, 2), AccessKind::Load);
        c.access(block_addr(0, 9), AccessKind::Load); // evicts 3 or 4
        assert!(c.probe(block_addr(0, 1)));
        assert!(c.probe(block_addr(0, 2)));
    }

    #[test]
    fn plru_rejects_non_power_of_two_assoc() {
        let cfg = CacheConfig::new(3 * 32 * 4, 3, BlockSize::new(32).unwrap());
        // 3-way with 4 sets: geometry valid, PLRU invalid.
        let cfg = cfg.unwrap().with_replacement(Replacement::TreePlru);
        assert!(matches!(
            SetAssocCache::new(cfg),
            Err(crate::CacheConfigError::PlruNeedsPowerOfTwoAssoc { assoc: 3 })
        ));
    }

    #[test]
    fn writeback_produced_only_for_dirty_victims() {
        let mut c = small(1, Replacement::Lru);
        let a = block_addr(1, 1);
        let b = block_addr(1, 2);
        let d = block_addr(1, 3);
        c.access(a, AccessKind::Store); // dirty
        let out = c.access(b, AccessKind::Load); // evicts dirty a
        assert_eq!(
            out,
            AccessOutcome::Miss {
                writeback: Some(a.block(BlockSize::new(32).unwrap()))
            }
        );
        let out = c.access(d, AccessKind::Load); // evicts clean b
        assert_eq!(out, AccessOutcome::Miss { writeback: None });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = small(1, Replacement::Lru);
        let a = block_addr(0, 1);
        c.access(a, AccessKind::Load);
        c.access(a, AccessKind::Store); // hit, dirties the line
        let b = block_addr(0, 2);
        let out = c.access(b, AccessKind::Load);
        assert!(matches!(out, AccessOutcome::Miss { writeback: Some(_) }));
    }

    #[test]
    fn write_through_never_writes_back_and_does_not_allocate() {
        let cfg = CacheConfig::new(128, 1, BlockSize::new(32).unwrap())
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = SetAssocCache::new(cfg).unwrap();
        let a = Addr::new(0);
        assert_eq!(
            c.access(a, AccessKind::Store),
            AccessOutcome::Miss { writeback: None }
        );
        assert!(!c.probe(a), "store miss must not allocate");
        // Load fills; subsequent store hit stays clean.
        c.access(a, AccessKind::Load);
        c.access(a, AccessKind::Store);
        for t in 1..10u64 {
            c.access(Addr::new(t * 128), AccessKind::Load);
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small(2, Replacement::Lru);
        let a = block_addr(0, 1);
        assert_eq!(c.invalidate(a), None);
        c.access(a, AccessKind::Store);
        assert_eq!(c.invalidate(a), Some(true));
        assert!(!c.probe(a));
        c.access(a, AccessKind::Load);
        assert_eq!(c.invalidate(a), Some(false));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn sampled_cache_bypasses_unselected_sets() {
        let cfg = CacheConfig::new(4 * 32, 1, BlockSize::new(32).unwrap()).unwrap();
        // 4 sets, sample 1/2 keeping odd set indices.
        let mut c = SetAssocCache::with_sampling(cfg, SetSampling::new(1, 1)).unwrap();
        assert_eq!(
            c.access(block_addr(0, 1), AccessKind::Load),
            AccessOutcome::Bypassed
        );
        assert!(c.access(block_addr(1, 1), AccessKind::Load).is_miss());
        assert!(c.access(block_addr(3, 1), AccessKind::Load).is_miss());
        assert!(c.access(block_addr(1, 1), AccessKind::Load).is_hit());
        assert_eq!(c.stats().accesses(), 3, "bypassed refs are not counted");
    }

    #[test]
    fn sampling_finer_than_sets_is_rejected() {
        let cfg = CacheConfig::new(4 * 32, 1, BlockSize::new(32).unwrap()).unwrap();
        assert!(SetAssocCache::with_sampling(cfg, SetSampling::new(3, 0)).is_err());
    }

    #[test]
    fn sampled_hit_rate_matches_full_on_uniform_trace() {
        // A strided trace touching all sets equally: the sampled estimate
        // must equal the full-cache rate exactly by symmetry.
        let cfg = CacheConfig::new(64 * 32, 2, BlockSize::new(32).unwrap()).unwrap();
        let mut full = SetAssocCache::new(cfg).unwrap();
        let mut sampled = SetAssocCache::with_sampling(cfg, SetSampling::new(2, 0)).unwrap();
        for round in 0..4u64 {
            for i in 0..256u64 {
                let a = Addr::new(i * 32 + round); // revisit same blocks
                full.access(a, AccessKind::Load);
                sampled.access(a, AccessKind::Load);
            }
        }
        assert!((full.stats().hit_rate() - sampled.stats().hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn resident_blocks_counts_valid_lines() {
        let mut c = small(2, Replacement::Lru);
        assert_eq!(c.resident_blocks(), 0);
        c.access(block_addr(0, 1), AccessKind::Load);
        c.access(block_addr(2, 1), AccessKind::Load);
        assert_eq!(c.resident_blocks(), 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(2, Replacement::Lru);
        let a = block_addr(0, 1);
        c.access(a, AccessKind::Load);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(a, AccessKind::Load).is_hit());
    }
}
