//! The generic set-associative cache simulator.

// lint:hot-module — the per-access lookup below is the simulation's inner loop

use streamsim_prng::{Rng, Xoshiro256StarStar};

use streamsim_trace::{AccessKind, Addr, BlockAddr};

use crate::{CacheConfig, CacheStats, Replacement, SetSampling, WritePolicy};

/// Result of presenting one reference to a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was present.
    Hit,
    /// The block was absent; it has been filled (subject to the write
    /// policy) and `writeback`, when present, is a dirty victim block that
    /// must be written to the next level.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<BlockAddr>,
    },
    /// Set sampling is active and this reference maps to an unsampled set;
    /// it was not simulated and no statistics were recorded.
    Bypassed,
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// `true` for [`AccessOutcome::Miss`].
    pub const fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss { .. })
    }
}

/// A line displaced by a fill, with its dirtiness — reported by
/// [`SetAssocCache::access_detailed`] so victim caches can capture clean
/// evictions too (plain [`SetAssocCache::access`] only reports dirty
/// write-backs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether it was dirty (needs writing back).
    pub dirty: bool,
}

/// Detailed result of [`SetAssocCache::access_detailed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetailedOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// The line displaced by the fill (misses only; `None` when an
    /// invalid way absorbed the fill, the set was bypassed, or the write
    /// policy did not allocate).
    pub evicted: Option<EvictedLine>,
}

/// Sentinel stored in the tag array for invalid lines. A real tag is
/// `block >> set_bits` where `block = addr >> block_log2`, so it always
/// has at least one zero high bit for any practical geometry (block ≥ 2
/// bytes or ≥ 2 sets) and can never equal `u64::MAX`; a `debug_assert`
/// in `locate` guards the pathological remainder. Encoding validity in
/// the tag itself keeps the probe to a single dependent load: no
/// separate valid-bit lookup.
const INVALID_TAG: u64 = u64::MAX;

/// A packed bitmap, one bit per cache line — used for the dirty bits,
/// which only the store/fill/evict paths touch.
#[derive(Clone, Debug, Default)]
struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    fn new(bits: usize) -> Self {
        BitVec {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline(always)]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    #[inline(always)]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Branchless `bit |= v` — the hot paths call this with a
    /// data-dependent `v` (is the access a store?), and an unconditional
    /// read-modify-write beats a mispredict-prone branch.
    #[inline(always)]
    fn or_assign(&mut self, i: usize, v: bool) {
        self.words[i >> 6] |= (v as u64) << (i & 63);
    }

    /// Branchless `bit = v`.
    #[inline(always)]
    fn assign(&mut self, i: usize, v: bool) {
        let w = &mut self.words[i >> 6];
        *w = (*w & !(1 << (i & 63))) | ((v as u64) << (i & 63));
    }
}

/// A set-associative cache simulating tags and dirty bits (no data).
///
/// Supports LRU / FIFO / seeded-random replacement, write-back/write-
/// allocate or write-through/no-allocate write handling, and optional
/// [`SetSampling`] for cheap estimation of very large caches.
///
/// # Layout
///
/// Storage is structure-of-arrays, sized for the recording hot loop: a
/// dense way-contiguous tag array probed with a precomputed shift/mask,
/// packed valid/dirty bitmaps, and replacement stamps allocated (and
/// touched) only for the policies that read them (LRU/FIFO). A per-set
/// MRU way is probed first — it is a pure hint (replacement state is
/// untouched), but it turns the ~95 % of references that hit the most
/// recently used way into a single compare. Outcomes, statistics and
/// PRNG consumption are bit-identical to the pre-SoA implementation
/// ([`crate::reference::ReferenceCache`]), pinned by property tests.
///
/// # Example
///
/// ```
/// use streamsim_cache::{CacheConfig, SetAssocCache};
/// use streamsim_trace::{AccessKind, Addr, BlockSize};
///
/// let cfg = CacheConfig::new(1024, 2, BlockSize::new(32)?)?;
/// let mut cache = SetAssocCache::new(cfg)?;
/// cache.access(Addr::new(0), AccessKind::Load);
/// assert!(cache.probe(Addr::new(16)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sampling: Option<SetSampling>,
    /// Dense tag array, way-contiguous: line `row * assoc + way`.
    /// [`INVALID_TAG`] marks an invalid line, so validity costs no
    /// second load on the probe.
    tags: Vec<u64>,
    dirty: BitVec,
    /// LRU: last-touch time. FIFO: fill time. Empty for random and
    /// tree-PLRU, which never read stamps.
    stamps: Vec<u64>,
    /// Most recently *hit or filled* way per row — a probe hint only.
    mru: Vec<u32>,
    rows: u64,
    set_mask: u64,
    set_bits: u32,
    /// Branchless set-sampling test: a reference is simulated iff
    /// `set & sample_mask == sample_match` (mask and match are 0 without
    /// sampling, accepting everything), and its row is
    /// `set >> row_shift`. Folding the `Option` away keeps `locate` to
    /// straight-line shifts and masks.
    sample_mask: u64,
    sample_match: u64,
    row_shift: u32,
    /// `log2(block bytes)`: the probe's only address arithmetic.
    block_log2: u32,
    assoc: u32,
    replacement: Replacement,
    write_back: bool,
    /// Policy flags precomputed from `replacement`, so the hit path
    /// branches on a byte instead of matching the enum.
    track_clock: bool,
    lru_hit_stamp: bool,
    plru_on: bool,
    clock: u64,
    rng: Option<Xoshiro256StarStar>,
    /// One word of tree bits per simulated set (tree-PLRU only).
    plru: Vec<u64>,
    stats: CacheStats,
}

/// Tree-PLRU helpers: the tree is stored one bit per internal node in a
/// u64 (heap order, root at bit 1); bit 0 sends the victim search left,
/// bit 1 right, and touches point the bits *away* from the touched way.
fn plru_touch(bits: &mut u64, assoc: u32, way: u32) {
    let mut node = 1u32;
    let mut span = assoc;
    while span > 1 {
        span /= 2;
        let right = way & span != 0;
        if right {
            *bits &= !(1 << node); // point left, away from the touched way
        } else {
            *bits |= 1 << node; // point right
        }
        node = node * 2 + right as u32;
    }
}

/// Branchless way scan over a fixed-width tag slice: returns the hit way
/// and the first invalid way (each `usize::MAX` when absent). The const
/// width lets the compiler unroll the whole scan into straight-line
/// compares and conditional moves — no data-dependent branch, no loop.
#[inline(always)]
fn scan_ways<const N: usize>(tags: &[u64; N], tag: u64) -> (usize, usize) {
    let mut hit_way = usize::MAX;
    let mut first_invalid = usize::MAX;
    for (way, &t) in tags.iter().enumerate() {
        hit_way = if t == tag { way } else { hit_way };
        let invalid_first = t == INVALID_TAG && first_invalid == usize::MAX;
        first_invalid = if invalid_first { way } else { first_invalid };
    }
    (hit_way, first_invalid)
}

/// [`scan_ways`] for associativities without a const specialization.
#[inline(always)]
fn scan_ways_dyn(tags: &[u64], tag: u64) -> (usize, usize) {
    let mut hit_way = usize::MAX;
    let mut first_invalid = usize::MAX;
    for (way, &t) in tags.iter().enumerate() {
        hit_way = if t == tag { way } else { hit_way };
        let invalid_first = t == INVALID_TAG && first_invalid == usize::MAX;
        first_invalid = if invalid_first { way } else { first_invalid };
    }
    (hit_way, first_invalid)
}

fn plru_victim(bits: u64, assoc: u32) -> u32 {
    let mut node = 1u32;
    let mut span = assoc;
    let mut way = 0u32;
    while span > 1 {
        span /= 2;
        let bit = (bits >> node) & 1;
        if bit == 1 {
            way += span;
        }
        node = node * 2 + bit as u32;
    }
    way
}

impl SetAssocCache {
    /// Creates a cache simulating every set of `config`.
    ///
    /// # Errors
    ///
    /// Infallible for any valid `config`; kept fallible for uniformity with
    /// [`SetAssocCache::with_sampling`].
    pub fn new(config: CacheConfig) -> Result<Self, crate::CacheConfigError> {
        Self::build(config, None)
    }

    /// Creates a cache that simulates only the sets selected by `sampling`.
    ///
    /// Tags are computed exactly as in the full cache, so the hit rate over
    /// the sampled sets is an unbiased estimator of the full-cache hit
    /// rate.
    ///
    /// # Errors
    ///
    /// Returns an error if the sampling is finer than the number of sets.
    pub fn with_sampling(
        config: CacheConfig,
        sampling: SetSampling,
    ) -> Result<Self, crate::CacheConfigError> {
        Self::build(config, Some(sampling))
    }

    fn build(
        config: CacheConfig,
        sampling: Option<SetSampling>,
    ) -> Result<Self, crate::CacheConfigError> {
        let sets = config.num_sets();
        let rows = match sampling {
            Some(s) => {
                let rows = sets >> s.log2_fraction();
                if rows == 0 {
                    return Err(crate::CacheConfigError::SetsNotPowerOfTwo { sets });
                }
                rows
            }
            None => sets,
        };
        let rng = match config.replacement() {
            Replacement::Random { seed } => Some(Xoshiro256StarStar::seed_from_u64(seed)),
            _ => None,
        };
        let plru = if config.replacement() == Replacement::TreePlru {
            if !config.assoc().is_power_of_two() || config.assoc() > 64 {
                return Err(crate::CacheConfigError::PlruNeedsPowerOfTwoAssoc {
                    assoc: config.assoc(),
                });
            }
            vec![0u64; rows as usize]
        } else {
            Vec::new()
        };
        let lines = (rows * config.assoc() as u64) as usize;
        let track_clock = matches!(config.replacement(), Replacement::Lru | Replacement::Fifo);
        let stamps = if track_clock {
            vec![0u64; lines]
        } else {
            Vec::new()
        };
        Ok(SetAssocCache {
            config,
            sampling,
            tags: vec![INVALID_TAG; lines],
            dirty: BitVec::new(lines),
            stamps,
            mru: vec![0; rows as usize],
            rows,
            set_mask: sets - 1,
            set_bits: config.set_index_bits(),
            sample_mask: sampling.map_or(0, |s| (1u64 << s.log2_fraction()) - 1),
            sample_match: sampling.map_or(0, |s| s.matcher()),
            row_shift: sampling.map_or(0, |s| s.log2_fraction()),
            block_log2: config.block().log2(),
            assoc: config.assoc(),
            replacement: config.replacement(),
            write_back: config.write_policy() == WritePolicy::WriteBackAllocate,
            track_clock,
            lru_hit_stamp: config.replacement() == Replacement::Lru,
            plru_on: config.replacement() == Replacement::TreePlru,
            clock: 0,
            rng,
            plru,
            stats: CacheStats::new(),
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The active set sampling, if any.
    pub fn sampling(&self) -> Option<SetSampling> {
        self.sampling
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are retained), e.g. after a
    /// warm-up period.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// `(row, tag, full set index)` for `addr` — shift/mask/compare
    /// only. The full set index (not the sampled row) reconstructs
    /// eviction addresses.
    #[inline(always)]
    fn locate(&self, addr: Addr) -> Option<(u64, u64, u64)> {
        let block = addr.raw() >> self.block_log2;
        let set = block & self.set_mask;
        if set & self.sample_mask != self.sample_match {
            return None; // unsampled set (never taken without sampling)
        }
        let tag = block >> self.set_bits;
        let row = set >> self.row_shift;
        debug_assert!(row < self.rows);
        debug_assert!(tag != INVALID_TAG, "tag collides with the invalid sentinel");
        Some((row, tag, set))
    }

    /// Presents one reference; fills on miss per the write policy.
    #[inline(always)]
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        match self.detailed(addr, kind) {
            None => AccessOutcome::Bypassed,
            Some(DetailedOutcome { hit: true, .. }) => AccessOutcome::Hit,
            Some(DetailedOutcome {
                hit: false,
                evicted,
            }) => AccessOutcome::Miss {
                writeback: evicted.filter(|e| e.dirty).map(|e| e.block),
            },
        }
    }

    /// Like [`SetAssocCache::access`] but reports the evicted line even
    /// when clean, which a victim cache needs. Returns [`None`] for
    /// bypassed (unsampled) sets.
    pub fn access_detailed(&mut self, addr: Addr, kind: AccessKind) -> Option<DetailedOutcome> {
        self.detailed(addr, kind)
    }

    /// Hit bookkeeping shared by the MRU fast path and the full way
    /// scan. `idx` is the line index (`row * assoc + way`).
    #[inline(always)]
    fn register_hit(&mut self, row: u64, way: u32, idx: usize, kind: AccessKind) {
        if self.lru_hit_stamp {
            self.stamps[idx] = self.clock;
        } else if self.plru_on {
            plru_touch(&mut self.plru[row as usize], self.assoc, way);
        }
        self.dirty
            .or_assign(idx, kind.is_store() && self.write_back);
        self.mru[row as usize] = way;
        self.stats.record_hit(kind);
    }

    #[inline(always)]
    fn detailed(&mut self, addr: Addr, kind: AccessKind) -> Option<DetailedOutcome> {
        let (row, tag, set) = self.locate(addr)?;
        let base = row as usize * self.assoc as usize;
        // The clock only feeds LRU/FIFO stamps; skip the counter when no
        // stamp will ever read it.
        if self.track_clock {
            self.clock += 1;
        }

        // Fast path: most references hit the most recently used way, and
        // the sentinel encoding makes the probe one load + compare. The
        // hint never changes replacement state, so probing it first is
        // outcome-identical to the scan (a tag lives in at most one
        // valid way per set).
        let hint = self.mru[row as usize];
        let idx = base + hint as usize;
        if self.tags[idx] == tag {
            self.register_hit(row, hint, idx, kind);
            return Some(DetailedOutcome {
                hit: true,
                evicted: None,
            });
        }
        Some(self.scan_or_fill(row, tag, set, kind))
    }

    /// The slow half of [`SetAssocCache::detailed`]: full way scan, then
    /// the miss/fill path.
    #[inline]
    fn scan_or_fill(&mut self, row: u64, tag: u64, set: u64, kind: AccessKind) -> DetailedOutcome {
        let assoc = self.assoc as usize;
        let base = row as usize * assoc;

        // One branchless pass over the dense tag slice: a hit lives in at
        // most one valid way, and the first invalid way is the fill's
        // preferred victim. Conditional moves keep the scan free of
        // data-dependent branches — which way matches is unpredictable,
        // and an early-exit compare per way costs a mispredict each. The
        // 4-way case (every L1 in the paper) gets a fixed-length scan the
        // compiler fully unrolls; other associativities take the dynamic
        // loop.
        let (hit_way, first_invalid) = if assoc == 4 {
            // lint:allow(no-unwrap-hot, slice is base..base+4 by construction so the array conversion cannot fail)
            scan_ways::<4>(self.tags[base..base + 4].try_into().expect("len 4"), tag)
        } else {
            scan_ways_dyn(&self.tags[base..base + assoc], tag)
        };
        if hit_way != usize::MAX {
            self.register_hit(row, hit_way as u32, base + hit_way, kind);
            return DetailedOutcome {
                hit: true,
                evicted: None,
            };
        }

        self.stats.record_miss(kind);

        // Write-through / no-allocate: store misses do not fill.
        if kind.is_store() && !self.write_back {
            return DetailedOutcome {
                hit: false,
                evicted: None,
            };
        }

        // Choose a victim: first invalid way, otherwise per policy.
        let victim = if first_invalid != usize::MAX {
            first_invalid
        } else {
            match self.replacement {
                // min_by_key returns the FIRST minimum — ties break to
                // the lowest way, as before.
                Replacement::Lru | Replacement::Fifo => self.stamps[base..base + assoc]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, s)| s)
                    .map(|(w, _)| w)
                    // lint:allow(no-unwrap-hot, CacheConfig rejects associativity 0 so the set is never empty)
                    .expect("associativity >= 1"),
                // Exactly one PRNG draw per full-set eviction, over the
                // same range as the pre-SoA implementation.
                Replacement::Random { .. } => self
                    .rng
                    .as_mut()
                    // lint:allow(no-unwrap-hot, the constructor seeds an rng whenever the policy is Random)
                    .expect("random replacement has an rng")
                    .gen_range(0..assoc),
                Replacement::TreePlru => plru_victim(self.plru[row as usize], self.assoc) as usize,
            }
        };

        let vidx = base + victim;
        let evicted = if self.tags[vidx] != INVALID_TAG {
            let dirty = self.dirty.get(vidx);
            if dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                block: BlockAddr::from_index((self.tags[vidx] << self.set_bits) | set),
                dirty,
            })
        } else {
            None
        };
        self.tags[vidx] = tag;
        self.dirty.assign(vidx, kind.is_store() && self.write_back);
        if self.track_clock {
            self.stamps[vidx] = self.clock;
        } else if self.plru_on {
            plru_touch(&mut self.plru[row as usize], self.assoc, victim as u32);
        }
        self.mru[row as usize] = victim as u32;
        DetailedOutcome {
            hit: false,
            evicted,
        }
    }

    /// Whether the block containing `addr` is present (no state change,
    /// no statistics). Returns `false` for unsampled sets.
    pub fn probe(&self, addr: Addr) -> bool {
        let Some((row, tag, _)) = self.locate(addr) else {
            return false;
        };
        let base = row as usize * self.assoc as usize;
        (0..self.assoc as usize).any(|w| self.tags[base + w] == tag)
    }

    /// Invalidates the block containing `addr` if present; returns whether
    /// a line was invalidated and whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (row, tag, _) = self.locate(addr)?;
        let base = row as usize * self.assoc as usize;
        for way in 0..self.assoc as usize {
            let idx = base + way;
            if self.tags[idx] == tag {
                self.tags[idx] = INVALID_TAG;
                let dirty = self.dirty.get(idx);
                self.dirty.clear(idx);
                self.stats.invalidations += 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently held (sampled sets only).
    pub fn resident_blocks(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_trace::BlockSize;

    fn small(assoc: u32, replacement: Replacement) -> SetAssocCache {
        // 4 sets x assoc x 32B blocks.
        let cfg = CacheConfig::new(4 * assoc as u64 * 32, assoc, BlockSize::new(32).unwrap())
            .unwrap()
            .with_replacement(replacement);
        SetAssocCache::new(cfg).unwrap()
    }

    fn block_addr(set: u64, tag: u64) -> Addr {
        // 4 sets, 32-byte blocks.
        Addr::new(((tag << 2) | set) * 32)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, Replacement::Lru);
        assert!(c.access(Addr::new(0x100), AccessKind::Load).is_miss());
        assert!(c.access(Addr::new(0x11f), AccessKind::Load).is_hit());
        assert_eq!(c.stats().accesses(), 2);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(2, Replacement::Lru);
        let a = block_addr(0, 1);
        let b = block_addr(0, 2);
        let d = block_addr(0, 3);
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        c.access(a, AccessKind::Load); // a now MRU
        c.access(d, AccessKind::Load); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = small(2, Replacement::Fifo);
        let a = block_addr(0, 1);
        let b = block_addr(0, 2);
        let d = block_addr(0, 3);
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        c.access(a, AccessKind::Load); // touch must NOT save a under FIFO
        c.access(d, AccessKind::Load); // evicts a (oldest fill)
        assert!(!c.probe(a));
        assert!(c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn random_replacement_is_reproducible() {
        let run = || {
            let mut c = small(2, Replacement::Random { seed: 7 });
            let mut hits = 0;
            for i in 0..1000u64 {
                if c.access(Addr::new((i * 97) % 4096 * 32), AccessKind::Load)
                    .is_hit()
                {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plru_behaves_like_lru_for_two_way() {
        // With associativity 2 the PLRU tree is a single bit: exactly LRU.
        let mk = |policy| {
            let cfg = CacheConfig::new(4 * 2 * 32, 2, BlockSize::new(32).unwrap())
                .unwrap()
                .with_replacement(policy);
            SetAssocCache::new(cfg).unwrap()
        };
        let mut lru = mk(Replacement::Lru);
        let mut plru = mk(Replacement::TreePlru);
        // A deterministic mixed pattern within one set.
        let addrs: Vec<Addr> = [1u64, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1]
            .iter()
            .map(|&t| block_addr(0, t))
            .collect();
        for &a in &addrs {
            assert_eq!(
                lru.access(a, AccessKind::Load).is_hit(),
                plru.access(a, AccessKind::Load).is_hit(),
                "diverged at {a}"
            );
        }
    }

    #[test]
    fn plru_four_way_protects_recently_touched_ways() {
        let cfg = CacheConfig::new(4 * 4 * 32, 4, BlockSize::new(32).unwrap())
            .unwrap()
            .with_replacement(Replacement::TreePlru);
        let mut c = SetAssocCache::new(cfg).unwrap();
        // Fill a set with tags 1-4, touch 1 and 2, then force an eviction:
        // the victim must not be 1 or 2.
        for t in 1..=4 {
            c.access(block_addr(0, t), AccessKind::Load);
        }
        c.access(block_addr(0, 1), AccessKind::Load);
        c.access(block_addr(0, 2), AccessKind::Load);
        c.access(block_addr(0, 9), AccessKind::Load); // evicts 3 or 4
        assert!(c.probe(block_addr(0, 1)));
        assert!(c.probe(block_addr(0, 2)));
    }

    #[test]
    fn plru_rejects_non_power_of_two_assoc() {
        let cfg = CacheConfig::new(3 * 32 * 4, 3, BlockSize::new(32).unwrap());
        // 3-way with 4 sets: geometry valid, PLRU invalid.
        let cfg = cfg.unwrap().with_replacement(Replacement::TreePlru);
        assert!(matches!(
            SetAssocCache::new(cfg),
            Err(crate::CacheConfigError::PlruNeedsPowerOfTwoAssoc { assoc: 3 })
        ));
    }

    #[test]
    fn writeback_produced_only_for_dirty_victims() {
        let mut c = small(1, Replacement::Lru);
        let a = block_addr(1, 1);
        let b = block_addr(1, 2);
        let d = block_addr(1, 3);
        c.access(a, AccessKind::Store); // dirty
        let out = c.access(b, AccessKind::Load); // evicts dirty a
        assert_eq!(
            out,
            AccessOutcome::Miss {
                writeback: Some(a.block(BlockSize::new(32).unwrap()))
            }
        );
        let out = c.access(d, AccessKind::Load); // evicts clean b
        assert_eq!(out, AccessOutcome::Miss { writeback: None });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = small(1, Replacement::Lru);
        let a = block_addr(0, 1);
        c.access(a, AccessKind::Load);
        c.access(a, AccessKind::Store); // hit, dirties the line
        let b = block_addr(0, 2);
        let out = c.access(b, AccessKind::Load);
        assert!(matches!(out, AccessOutcome::Miss { writeback: Some(_) }));
    }

    #[test]
    fn write_through_never_writes_back_and_does_not_allocate() {
        let cfg = CacheConfig::new(128, 1, BlockSize::new(32).unwrap())
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = SetAssocCache::new(cfg).unwrap();
        let a = Addr::new(0);
        assert_eq!(
            c.access(a, AccessKind::Store),
            AccessOutcome::Miss { writeback: None }
        );
        assert!(!c.probe(a), "store miss must not allocate");
        // Load fills; subsequent store hit stays clean.
        c.access(a, AccessKind::Load);
        c.access(a, AccessKind::Store);
        for t in 1..10u64 {
            c.access(Addr::new(t * 128), AccessKind::Load);
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small(2, Replacement::Lru);
        let a = block_addr(0, 1);
        assert_eq!(c.invalidate(a), None);
        c.access(a, AccessKind::Store);
        assert_eq!(c.invalidate(a), Some(true));
        assert!(!c.probe(a));
        c.access(a, AccessKind::Load);
        assert_eq!(c.invalidate(a), Some(false));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn sampled_cache_bypasses_unselected_sets() {
        let cfg = CacheConfig::new(4 * 32, 1, BlockSize::new(32).unwrap()).unwrap();
        // 4 sets, sample 1/2 keeping odd set indices.
        let mut c = SetAssocCache::with_sampling(cfg, SetSampling::new(1, 1)).unwrap();
        assert_eq!(
            c.access(block_addr(0, 1), AccessKind::Load),
            AccessOutcome::Bypassed
        );
        assert!(c.access(block_addr(1, 1), AccessKind::Load).is_miss());
        assert!(c.access(block_addr(3, 1), AccessKind::Load).is_miss());
        assert!(c.access(block_addr(1, 1), AccessKind::Load).is_hit());
        assert_eq!(c.stats().accesses(), 3, "bypassed refs are not counted");
    }

    #[test]
    fn sampling_finer_than_sets_is_rejected() {
        let cfg = CacheConfig::new(4 * 32, 1, BlockSize::new(32).unwrap()).unwrap();
        assert!(SetAssocCache::with_sampling(cfg, SetSampling::new(3, 0)).is_err());
    }

    #[test]
    fn sampled_hit_rate_matches_full_on_uniform_trace() {
        // A strided trace touching all sets equally: the sampled estimate
        // must equal the full-cache rate exactly by symmetry.
        let cfg = CacheConfig::new(64 * 32, 2, BlockSize::new(32).unwrap()).unwrap();
        let mut full = SetAssocCache::new(cfg).unwrap();
        let mut sampled = SetAssocCache::with_sampling(cfg, SetSampling::new(2, 0)).unwrap();
        for round in 0..4u64 {
            for i in 0..256u64 {
                let a = Addr::new(i * 32 + round); // revisit same blocks
                full.access(a, AccessKind::Load);
                sampled.access(a, AccessKind::Load);
            }
        }
        assert!((full.stats().hit_rate() - sampled.stats().hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn resident_blocks_counts_valid_lines() {
        let mut c = small(2, Replacement::Lru);
        assert_eq!(c.resident_blocks(), 0);
        c.access(block_addr(0, 1), AccessKind::Load);
        c.access(block_addr(2, 1), AccessKind::Load);
        assert_eq!(c.resident_blocks(), 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(2, Replacement::Lru);
        let a = block_addr(0, 1);
        c.access(a, AccessKind::Load);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(a, AccessKind::Load).is_hit());
    }
}
