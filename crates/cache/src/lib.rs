//! Set-associative cache simulators for the streamsim workspace.
//!
//! This crate provides every cache the paper's memory systems need:
//!
//! * [`SetAssocCache`] — a generic set-associative cache with configurable
//!   size, associativity, block size, replacement policy ([`Replacement`])
//!   and write policy ([`WritePolicy`]). The paper's primary caches are
//!   64 KB 4-way write-back/write-allocate with random replacement; its
//!   secondary-cache comparison sweeps 64 KB–4 MB, 1–4-way, 64/128-byte
//!   blocks.
//! * [`SplitL1`] — the 64K I + 64K D split primary cache configuration.
//! * [`VictimCache`] — Jouppi's small fully-associative victim buffer
//!   (mentioned by the paper for direct-mapped primaries; used here in
//!   ablations).
//! * [`SetSampling`] — set sampling (Kessler, Hill & Wood) used by the
//!   paper to estimate secondary-cache hit rates cheaply (Table 4).
//!
//! Caches simulate *state*, not data: a line is a tag plus valid/dirty
//! bits, which is all hit-rate studies need.
//!
//! # Example
//!
//! ```
//! use streamsim_cache::{AccessOutcome, CacheConfig, SetAssocCache};
//! use streamsim_trace::{AccessKind, Addr};
//!
//! let mut cache = SetAssocCache::new(CacheConfig::paper_l1()?)?;
//! assert!(matches!(
//!     cache.access(Addr::new(0x1000), AccessKind::Load),
//!     AccessOutcome::Miss { .. }
//! ));
//! assert!(matches!(
//!     cache.access(Addr::new(0x1004), AccessKind::Load),
//!     AccessOutcome::Hit
//! ));
//! # Ok::<(), streamsim_cache::CacheConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod hierarchy;
pub mod reference;
mod sampling;
mod split;
mod stats;
mod victim;
mod victim_l1;

pub use cache::{AccessOutcome, DetailedOutcome, EvictedLine, SetAssocCache};
pub use config::{CacheConfig, CacheConfigError, Replacement, WritePolicy};
pub use hierarchy::{HierarchyOutcome, TwoLevel};
pub use sampling::SetSampling;
pub use split::SplitL1;
pub use stats::CacheStats;
pub use victim::{VictimCache, VictimOutcome};
pub use victim_l1::{VictimL1, VictimL1Outcome};
