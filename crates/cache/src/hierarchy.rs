//! A coupled two-level cache hierarchy (the conventional system).
//!
//! The paper's baseline is "a processor with an on-chip cache augmented
//! by an off-chip (secondary SRAM) cache of a megabyte or more". The
//! [`SetAssocCache`] observer used by the hit-rate experiments sees the
//! L1 miss stream but does not model the coupled traffic; [`TwoLevel`]
//! does: L1 misses fetch through the L2, write-backs propagate, and the
//! traffic that escapes to main memory is counted — which is what the
//! memory-bandwidth comparison between a stream-buffer system and a
//! secondary-cache system needs.

use streamsim_trace::{Access, AccessKind, BlockSize};

use crate::{AccessOutcome, CacheConfig, CacheConfigError, CacheStats, SetAssocCache, SplitL1};

/// Where a reference was serviced in a [`TwoLevel`] hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchyOutcome {
    /// Serviced by the primary cache.
    L1Hit,
    /// Missed the L1, hit the secondary cache.
    L2Hit,
    /// Missed both levels; fetched from main memory.
    Memory,
}

/// A split L1 backed by a unified L2 backed by main memory.
///
/// # Example
///
/// ```
/// use streamsim_cache::{CacheConfig, HierarchyOutcome, TwoLevel};
/// use streamsim_trace::{Access, Addr, BlockSize};
///
/// let l1 = CacheConfig::paper_l1()?;
/// let l2 = CacheConfig::new(1 << 20, 2, BlockSize::new(32)?)?;
/// let mut system = TwoLevel::new(l1, l1, l2)?;
/// assert_eq!(system.access(Access::load(Addr::new(0))), HierarchyOutcome::Memory);
/// assert_eq!(system.access(Access::load(Addr::new(8))), HierarchyOutcome::L1Hit);
/// assert_eq!(system.memory_read_blocks(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct TwoLevel {
    l1: SplitL1,
    l2: SetAssocCache,
    l1_block: BlockSize,
    memory_reads: u64,
    memory_writes: u64,
}

impl TwoLevel {
    /// Creates a hierarchy from the two L1 configurations and the L2.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any level.
    pub fn new(
        icache: CacheConfig,
        dcache: CacheConfig,
        l2: CacheConfig,
    ) -> Result<Self, CacheConfigError> {
        Ok(TwoLevel {
            l1: SplitL1::new(icache, dcache)?,
            l2: SetAssocCache::new(l2)?,
            l1_block: dcache.block(),
            memory_reads: 0,
            memory_writes: 0,
        })
    }

    fn l2_access(&mut self, addr: streamsim_trace::Addr, kind: AccessKind) -> bool {
        match self.l2.access(addr, kind) {
            AccessOutcome::Hit => true,
            AccessOutcome::Miss { writeback } => {
                self.memory_reads += 1;
                if writeback.is_some() {
                    self.memory_writes += 1;
                }
                false
            }
            AccessOutcome::Bypassed => false,
        }
    }

    /// Processes one reference through both levels.
    pub fn access(&mut self, access: Access) -> HierarchyOutcome {
        match self.l1.access(access) {
            AccessOutcome::Hit | AccessOutcome::Bypassed => HierarchyOutcome::L1Hit,
            AccessOutcome::Miss { writeback } => {
                // Dirty L1 victims are written into the L2 (write-back,
                // write-allocate at both levels).
                if let Some(victim) = writeback {
                    self.l2_access(victim.base_addr(self.l1_block), AccessKind::Store);
                }
                if self.l2_access(access.addr, access.kind) {
                    HierarchyOutcome::L2Hit
                } else {
                    HierarchyOutcome::Memory
                }
            }
        }
    }

    /// The primary cache.
    pub fn l1(&self) -> &SplitL1 {
        &self.l1
    }

    /// The secondary cache's statistics (its hit rate over L1 misses and
    /// write-backs is the paper's *local* hit rate).
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Blocks fetched from main memory (L2 misses).
    pub fn memory_read_blocks(&self) -> u64 {
        self.memory_reads
    }

    /// Dirty blocks written back to main memory from the L2.
    pub fn memory_write_blocks(&self) -> u64 {
        self.memory_writes
    }

    /// Total main-memory traffic in bytes (reads + writes of L2 blocks).
    pub fn memory_traffic_bytes(&self) -> u64 {
        (self.memory_reads + self.memory_writes) * self.l2.config().block().bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_trace::Addr;

    fn system(l2_bytes: u64) -> TwoLevel {
        let l1 = CacheConfig::new(1024, 2, BlockSize::new(32).unwrap()).unwrap();
        let l2 = CacheConfig::new(l2_bytes, 2, BlockSize::new(32).unwrap()).unwrap();
        TwoLevel::new(l1, l1, l2).unwrap()
    }

    #[test]
    fn l2_captures_l1_capacity_misses() {
        // Footprint 4 KB: four times the 1 KB L1, well inside the 16 KB L2.
        let mut sys = system(16 * 1024);
        for pass in 0..3 {
            for i in 0..128u64 {
                let outcome = sys.access(Access::load(Addr::new(i * 32)));
                if pass > 0 {
                    assert_ne!(outcome, HierarchyOutcome::Memory, "pass {pass}, i {i}");
                }
            }
        }
        assert_eq!(
            sys.memory_read_blocks(),
            128,
            "only cold misses reach memory"
        );
    }

    #[test]
    fn memory_traffic_counts_reads_and_dirty_writebacks() {
        let mut sys = system(1024); // L2 same size as L1: thrashes
                                    // Write a 4 KB region twice: dirty blocks must eventually escape.
        for _ in 0..2 {
            for i in 0..128u64 {
                sys.access(Access::store(Addr::new(i * 32)));
            }
        }
        assert!(sys.memory_write_blocks() > 0);
        assert_eq!(
            sys.memory_traffic_bytes(),
            (sys.memory_read_blocks() + sys.memory_write_blocks()) * 32
        );
    }

    #[test]
    fn outcomes_partition_the_reference_stream() {
        let mut sys = system(4 * 1024);
        let mut counts = [0u64; 3];
        for i in 0..1000u64 {
            let a = Addr::new((i * 97) % 8192);
            match sys.access(Access::load(a)) {
                HierarchyOutcome::L1Hit => counts[0] += 1,
                HierarchyOutcome::L2Hit => counts[1] += 1,
                HierarchyOutcome::Memory => counts[2] += 1,
            }
        }
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert_eq!(
            sys.l1().combined_stats().hits(),
            counts[0],
            "L1 outcome accounting matches cache stats"
        );
    }

    #[test]
    fn bigger_l2_reduces_memory_traffic() {
        let run = |l2_bytes| {
            let mut sys = system(l2_bytes);
            for _ in 0..3 {
                for i in 0..256u64 {
                    sys.access(Access::load(Addr::new(i * 32)));
                }
            }
            sys.memory_traffic_bytes()
        };
        assert!(run(16 * 1024) < run(1024));
    }
}
