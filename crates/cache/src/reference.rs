//! The pre-SoA reference cache model.
//!
//! [`ReferenceCache`] is the array-of-structs implementation
//! [`SetAssocCache`](crate::SetAssocCache) used before its storage was
//! restructured into structure-of-arrays. It is kept verbatim for two
//! jobs:
//!
//! * **equivalence oracle** — the SoA cache must match it outcome for
//!   outcome (stats, hits, eviction sequence) under every policy and
//!   geometry, which the `soa_equivalence` property tests check against
//!   randomized traces;
//! * **benchmark baseline** — the `recording` bench measures the SoA +
//!   chunked hot loop against this model driving the closure-based
//!   generation path, so the tracked speedup is against the real pre-PR
//!   implementation, not a strawman.
//!
//! It is deliberately *not* optimised; do not use it in drivers.

use streamsim_prng::{Rng, Xoshiro256StarStar};

use streamsim_trace::{AccessKind, Addr, BlockAddr};

use crate::{
    AccessOutcome, CacheConfig, CacheStats, DetailedOutcome, EvictedLine, Replacement, SetSampling,
    WritePolicy,
};

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU: last-touch time. FIFO: fill time. Unused for random.
    stamp: u64,
}

/// Tree-PLRU helpers, identical to the original implementation.
fn plru_touch(bits: &mut u64, assoc: u32, way: u32) {
    let mut node = 1u32;
    let mut span = assoc;
    while span > 1 {
        span /= 2;
        let right = way & span != 0;
        if right {
            *bits &= !(1 << node);
        } else {
            *bits |= 1 << node;
        }
        node = node * 2 + right as u32;
    }
}

fn plru_victim(bits: u64, assoc: u32) -> u32 {
    let mut node = 1u32;
    let mut span = assoc;
    let mut way = 0u32;
    while span > 1 {
        span /= 2;
        let bit = (bits >> node) & 1;
        if bit == 1 {
            way += span;
        }
        node = node * 2 + bit as u32;
    }
    way
}

/// The array-of-structs set-associative cache, exactly as it was before
/// the SoA restructuring. Same outcomes, same statistics, same PRNG
/// consumption — only slower.
#[derive(Clone, Debug)]
pub struct ReferenceCache {
    config: CacheConfig,
    sampling: Option<SetSampling>,
    lines: Vec<Line>,
    rows: u64,
    set_mask: u64,
    set_bits: u32,
    clock: u64,
    rng: Option<Xoshiro256StarStar>,
    plru: Vec<u64>,
    stats: CacheStats,
}

impl ReferenceCache {
    /// Creates a cache simulating every set of `config`.
    ///
    /// # Errors
    ///
    /// Infallible for any valid `config`; kept fallible for uniformity
    /// with [`ReferenceCache::with_sampling`].
    pub fn new(config: CacheConfig) -> Result<Self, crate::CacheConfigError> {
        Self::build(config, None)
    }

    /// Creates a cache that simulates only the sets selected by
    /// `sampling`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sampling is finer than the number of sets.
    pub fn with_sampling(
        config: CacheConfig,
        sampling: SetSampling,
    ) -> Result<Self, crate::CacheConfigError> {
        Self::build(config, Some(sampling))
    }

    fn build(
        config: CacheConfig,
        sampling: Option<SetSampling>,
    ) -> Result<Self, crate::CacheConfigError> {
        let sets = config.num_sets();
        let rows = match sampling {
            Some(s) => {
                let rows = sets >> s.log2_fraction();
                if rows == 0 {
                    return Err(crate::CacheConfigError::SetsNotPowerOfTwo { sets });
                }
                rows
            }
            None => sets,
        };
        let rng = match config.replacement() {
            Replacement::Random { seed } => Some(Xoshiro256StarStar::seed_from_u64(seed)),
            _ => None,
        };
        let plru = if config.replacement() == Replacement::TreePlru {
            if !config.assoc().is_power_of_two() || config.assoc() > 64 {
                return Err(crate::CacheConfigError::PlruNeedsPowerOfTwoAssoc {
                    assoc: config.assoc(),
                });
            }
            vec![0u64; rows as usize]
        } else {
            Vec::new()
        };
        Ok(ReferenceCache {
            config,
            sampling,
            lines: vec![Line::default(); (rows * config.assoc() as u64) as usize],
            rows,
            set_mask: sets - 1,
            set_bits: config.set_index_bits(),
            clock: 0,
            rng,
            plru,
            stats: CacheStats::new(),
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn locate(&self, addr: Addr) -> Option<(u64, u64)> {
        let block = addr.block(self.config.block()).index();
        let set = block & self.set_mask;
        let tag = block >> self.set_bits;
        let row = match self.sampling {
            Some(s) => {
                if !s.selects(set) {
                    return None;
                }
                s.row(set)
            }
            None => set,
        };
        debug_assert!(row < self.rows);
        Some((row, tag))
    }

    fn set_range(&self, row: u64) -> std::ops::Range<usize> {
        let assoc = self.config.assoc() as usize;
        let start = row as usize * assoc;
        start..start + assoc
    }

    /// Presents one reference; fills on miss per the write policy.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        match self.detailed(addr, kind) {
            None => AccessOutcome::Bypassed,
            Some(DetailedOutcome { hit: true, .. }) => AccessOutcome::Hit,
            Some(DetailedOutcome {
                hit: false,
                evicted,
            }) => AccessOutcome::Miss {
                writeback: evicted.filter(|e| e.dirty).map(|e| e.block),
            },
        }
    }

    /// Like [`ReferenceCache::access`] but reports the evicted line even
    /// when clean.
    pub fn access_detailed(&mut self, addr: Addr, kind: AccessKind) -> Option<DetailedOutcome> {
        self.detailed(addr, kind)
    }

    fn detailed(&mut self, addr: Addr, kind: AccessKind) -> Option<DetailedOutcome> {
        let (row, tag) = self.locate(addr)?;
        let write_back = self.config.write_policy() == WritePolicy::WriteBackAllocate;
        let replacement = self.config.replacement();
        let range = self.set_range(row);
        self.clock += 1;
        let clock = self.clock;

        // Hit?
        for (way, line) in self.lines[range.clone()].iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                if replacement == Replacement::Lru {
                    line.stamp = clock;
                }
                if replacement == Replacement::TreePlru {
                    plru_touch(
                        &mut self.plru[row as usize],
                        self.config.assoc(),
                        way as u32,
                    );
                }
                if kind.is_store() && write_back {
                    line.dirty = true;
                }
                self.stats.record(kind, true);
                return Some(DetailedOutcome {
                    hit: true,
                    evicted: None,
                });
            }
        }

        self.stats.record(kind, false);

        // Write-through / no-allocate: store misses do not fill.
        if kind.is_store() && !write_back {
            return Some(DetailedOutcome {
                hit: false,
                evicted: None,
            });
        }

        // Choose a victim: first invalid line, otherwise per policy.
        let victim_index = {
            let set = &self.lines[range.clone()];
            match set.iter().position(|l| !l.valid) {
                Some(i) => i,
                None => match replacement {
                    Replacement::Lru | Replacement::Fifo => set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.stamp)
                        .map(|(i, _)| i)
                        .expect("associativity >= 1"),
                    Replacement::Random { .. } => self
                        .rng
                        .as_mut()
                        .expect("random replacement has an rng")
                        .gen_range(0..range.len()),
                    Replacement::TreePlru => {
                        plru_victim(self.plru[row as usize], self.config.assoc()) as usize
                    }
                },
            }
        };

        let set_index = (addr.block(self.config.block()).index()) & self.set_mask;
        let line = &mut self.lines[range.start + victim_index];
        let evicted = if line.valid {
            if line.dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                block: BlockAddr::from_index((line.tag << self.set_bits) | set_index),
                dirty: line.dirty,
            })
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty: kind.is_store() && write_back,
            stamp: clock,
        };
        if replacement == Replacement::TreePlru {
            plru_touch(
                &mut self.plru[row as usize],
                self.config.assoc(),
                victim_index as u32,
            );
        }
        Some(DetailedOutcome {
            hit: false,
            evicted,
        })
    }

    /// Whether the block containing `addr` is present (no state change,
    /// no statistics). Returns `false` for unsampled sets.
    pub fn probe(&self, addr: Addr) -> bool {
        let Some((row, tag)) = self.locate(addr) else {
            return false;
        };
        self.lines[self.set_range(row)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the block containing `addr` if present; returns
    /// whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (row, tag) = self.locate(addr)?;
        let range = self.set_range(row);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.valid = false;
                let dirty = line.dirty;
                line.dirty = false;
                self.stats.invalidations += 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently held (sampled sets only).
    pub fn resident_blocks(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }
}
