//! Set sampling of large caches.
//!
//! The paper cites Kessler, Hill & Wood's trace-sampling work and uses *set
//! sampling* to determine secondary-cache hit rates (Table 4): only the
//! references mapping to a chosen subset of sets are simulated, and the hit
//! rate over that subset estimates the whole-cache hit rate at a fraction of
//! the simulation cost.
//!
//! [`SetSampling`] selects every set whose low `log2_fraction` index bits
//! equal `matcher`; a cache constructed with it simulates `1/2^log2_fraction`
//! of its sets while keeping *tags identical to the full cache* — only the
//! simulated rows shrink.

use std::fmt;

/// A set-sampling selection: simulate the sets whose low `log2_fraction`
/// index bits equal `matcher`.
///
/// # Example
///
/// ```
/// use streamsim_cache::SetSampling;
///
/// // Simulate 1/8 of the sets (those with index ≡ 3 mod 8).
/// let s = SetSampling::new(3, 3);
/// assert!(s.selects(3));
/// assert!(s.selects(11));
/// assert!(!s.selects(4));
/// assert_eq!(s.fraction(), 0.125);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SetSampling {
    log2_fraction: u32,
    matcher: u64,
}

impl SetSampling {
    /// Creates a sampling of `1/2^log2_fraction` of the sets, keeping sets
    /// whose low index bits equal `matcher`.
    ///
    /// # Panics
    ///
    /// Panics if `matcher >= 2^log2_fraction` or `log2_fraction > 32`.
    pub fn new(log2_fraction: u32, matcher: u64) -> Self {
        assert!(log2_fraction <= 32, "sampling fraction too fine");
        assert!(
            matcher < (1u64 << log2_fraction),
            "matcher {matcher} out of range for 1/2^{log2_fraction} sampling"
        );
        SetSampling {
            log2_fraction,
            matcher,
        }
    }

    /// `log2` of the inverse sampling fraction.
    pub fn log2_fraction(self) -> u32 {
        self.log2_fraction
    }

    /// Which low-bit pattern of the set index is kept.
    pub fn matcher(self) -> u64 {
        self.matcher
    }

    /// The fraction of sets simulated, in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        1.0 / (1u64 << self.log2_fraction) as f64
    }

    /// Whether a (full-cache) set index is in the sample.
    pub fn selects(self, set_index: u64) -> bool {
        set_index & ((1u64 << self.log2_fraction) - 1) == self.matcher
    }

    /// Maps a selected full-cache set index to its simulated row.
    pub fn row(self, set_index: u64) -> u64 {
        debug_assert!(self.selects(set_index));
        set_index >> self.log2_fraction
    }
}

impl fmt::Display for SetSampling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1/{} of sets (index ≡ {} mod {})",
            1u64 << self.log2_fraction,
            self.matcher,
            1u64 << self.log2_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_matching_indices() {
        let s = SetSampling::new(2, 1);
        let selected: Vec<u64> = (0..12).filter(|&i| s.selects(i)).collect();
        assert_eq!(selected, [1, 5, 9]);
        assert_eq!(s.row(5), 1);
        assert_eq!(s.row(9), 2);
    }

    #[test]
    fn zero_fraction_selects_everything() {
        let s = SetSampling::new(0, 0);
        assert!((0..100).all(|i| s.selects(i)));
        assert_eq!(s.fraction(), 1.0);
        assert_eq!(s.row(42), 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn matcher_out_of_range_panics() {
        let _ = SetSampling::new(1, 2);
    }

    #[test]
    fn display() {
        let s = SetSampling::new(3, 5);
        assert_eq!(s.to_string(), "1/8 of sets (index ≡ 5 mod 8)");
    }
}
