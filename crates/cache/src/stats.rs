//! Per-cache counters and derived rates.

use std::fmt;
use std::ops::AddAssign;

use streamsim_trace::AccessKind;

/// Counters accumulated by a cache simulator.
///
/// Counters are split by [`AccessKind`] so the paper's Table 1 metrics —
/// *data miss rate* (data misses / data references) and *MPI* (misses per
/// instruction) — fall straight out.
///
/// # Example
///
/// ```
/// use streamsim_cache::CacheStats;
/// use streamsim_trace::AccessKind;
///
/// let mut s = CacheStats::new();
/// s.record(AccessKind::Load, true);
/// s.record(AccessKind::Load, false);
/// assert_eq!(s.hit_rate(), 0.5);
/// assert_eq!(s.misses(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    accesses: [u64; 3],
    /// Misses, not hits: the hit path is the hot one, and counting the
    /// rare outcome keeps [`CacheStats::record_hit`] to one increment.
    misses: [u64; 3],
    /// Dirty blocks written back to the next level.
    pub writebacks: u64,
    /// Lines invalidated externally.
    pub invalidations: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access of `kind` which either hit or missed.
    #[inline]
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        if hit {
            self.record_hit(kind);
        } else {
            self.record_miss(kind);
        }
    }

    /// Records a hit of `kind` — one counter touch, for call sites that
    /// already know the outcome.
    #[inline(always)]
    pub fn record_hit(&mut self, kind: AccessKind) {
        self.accesses[kind.as_index()] += 1;
    }

    /// Records a miss of `kind`.
    #[inline(always)]
    pub fn record_miss(&mut self, kind: AccessKind) {
        let i = kind.as_index();
        self.accesses[i] += 1;
        self.misses[i] += 1;
    }

    /// Accesses of one kind.
    pub fn accesses_of(&self, kind: AccessKind) -> u64 {
        self.accesses[kind.as_index()]
    }

    /// Hits of one kind.
    pub fn hits_of(&self, kind: AccessKind) -> u64 {
        self.accesses_of(kind) - self.misses_of(kind)
    }

    /// Misses of one kind.
    pub fn misses_of(&self, kind: AccessKind) -> u64 {
        self.misses[kind.as_index()]
    }

    /// Total accesses, all kinds.
    pub fn accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total hits, all kinds.
    pub fn hits(&self) -> u64 {
        self.accesses() - self.misses()
    }

    /// Total misses, all kinds.
    pub fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Hits / accesses over all kinds (0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits(), self.accesses())
    }

    /// Misses / accesses over all kinds (0.0 when empty).
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses(), self.accesses())
    }

    /// Data accesses (loads + stores).
    pub fn data_accesses(&self) -> u64 {
        self.accesses_of(AccessKind::Load) + self.accesses_of(AccessKind::Store)
    }

    /// Data misses (loads + stores).
    pub fn data_misses(&self) -> u64 {
        self.misses_of(AccessKind::Load) + self.misses_of(AccessKind::Store)
    }

    /// Data misses / data accesses — the paper's Table 1 "Data Miss Rate".
    pub fn data_miss_rate(&self) -> f64 {
        ratio(self.data_misses(), self.data_accesses())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..3 {
            self.accesses[i] += rhs.accesses[i];
            self.misses[i] += rhs.misses[i];
        }
        self.writebacks += rhs.writebacks;
        self.invalidations += rhs.invalidations;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses (miss rate {:.3}%), {} writebacks",
            self.accesses(),
            self.misses(),
            self.miss_rate() * 100.0,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.data_miss_rate(), 0.0);
    }

    #[test]
    fn per_kind_counters() {
        let mut s = CacheStats::new();
        s.record(AccessKind::Load, true);
        s.record(AccessKind::Store, false);
        s.record(AccessKind::IFetch, true);
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses_of(AccessKind::Store), 1);
        assert_eq!(s.data_accesses(), 2);
        assert_eq!(s.data_misses(), 1);
        assert_eq!(s.data_miss_rate(), 0.5);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = CacheStats::new();
        a.record(AccessKind::Load, true);
        a.writebacks = 2;
        let mut b = CacheStats::new();
        b.record(AccessKind::Load, false);
        b.invalidations = 1;
        a += b;
        assert_eq!(a.accesses(), 2);
        assert_eq!(a.hits(), 1);
        assert_eq!(a.writebacks, 2);
        assert_eq!(a.invalidations, 1);
    }

    #[test]
    fn display_contains_rates() {
        let mut s = CacheStats::new();
        s.record(AccessKind::Load, false);
        assert!(s.to_string().contains("1 misses"));
    }
}
