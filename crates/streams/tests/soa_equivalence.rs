//! The SoA `StreamSystem` is pinned outcome-for-outcome against the
//! frozen pre-SoA [`streamsim_streams::reference::ReferenceStreamSystem`],
//! across every allocation policy, both match policies and randomized
//! geometries — the same oracle pattern that pinned `SetAssocCache`
//! against `ReferenceCache`.

use streamsim_prng::quickcheck::check_with;
use streamsim_prng::Rng;

use streamsim_streams::reference::ReferenceStreamSystem;
use streamsim_streams::{Allocation, MatchPolicy, StreamConfig, StreamSystem};
use streamsim_trace::{Addr, BlockSize, WordSize};

fn random_config(g: &mut streamsim_prng::quickcheck::Gen) -> StreamConfig {
    let allocation = match g.gen_range(0u32..4) {
        0 => Allocation::OnMiss,
        1 => Allocation::UnitFilter {
            entries: g.gen_range(1usize..20),
        },
        2 => Allocation::UnitAndStrideFilters {
            unit_entries: g.gen_range(1usize..20),
            stride_entries: g.gen_range(1usize..20),
            czone_bits: g.gen_range(8u32..24),
        },
        _ => Allocation::MinDelta {
            entries: g.gen_range(1usize..12),
            max_stride_words: g.gen_range(1i64..(1 << 20)),
        },
    };
    let cfg = StreamConfig::new(g.gen_range(1usize..9), g.gen_range(1usize..6), allocation)
        .expect("parameters drawn from valid ranges");
    let block = g.pick(&[16u64, 32, 64, 128]);
    let word = g.pick(&[4u64, 8]);
    let policy = if g.gen_bool(0.5) {
        MatchPolicy::HeadOnly
    } else {
        MatchPolicy::AnyEntry
    };
    cfg.with_block(BlockSize::new(block).unwrap())
        .with_word(WordSize::new(word).unwrap())
        .with_match_policy(policy)
}

/// A miss stream that exercises hits, skips, filters and invalidations:
/// arithmetic runs (unit and non-unit strides, occasionally descending)
/// interleaved with isolated references and write-backs.
enum Event {
    Miss(u64),
    Writeback(u64),
}

fn random_events(g: &mut streamsim_prng::quickcheck::Gen) -> Vec<Event> {
    let mut events = Vec::new();
    let segments = g.gen_range(1usize..12);
    for _ in 0..segments {
        match g.gen_range(0u32..4) {
            // A strided run: the bread and butter of stream buffers.
            0 | 1 => {
                let base = g.gen_range(0u64..1 << 24);
                let stride = g.pick(&[8i64, 32, 64, 2048, -32, -2048]);
                let len = g.gen_range(2u64..40);
                for i in 0..len {
                    events.push(Event::Miss(base.wrapping_add_signed(stride * i as i64)));
                }
            }
            // Isolated noise.
            2 => {
                for _ in 0..g.gen_range(1usize..10) {
                    events.push(Event::Miss(g.gen_range(0u64..1 << 24)));
                }
            }
            // Write-backs, sometimes aimed near recent traffic so they
            // actually invalidate buffered prefetches.
            _ => {
                for _ in 0..g.gen_range(1usize..5) {
                    events.push(Event::Writeback(g.gen_range(0u64..1 << 24)));
                }
            }
        }
    }
    events
}

#[test]
fn soa_system_matches_the_reference_everywhere() {
    check_with("soa_system_matches_the_reference_everywhere", 96, |g| {
        let cfg = random_config(g);
        let events = random_events(g);
        let mut soa = StreamSystem::new(cfg);
        let mut reference =
            ReferenceStreamSystem::with_counters(cfg, streamsim_obs::Counters::global());
        for (i, event) in events.iter().enumerate() {
            match *event {
                Event::Miss(raw) => {
                    let addr = Addr::new(raw);
                    assert_eq!(
                        soa.on_l1_miss(addr),
                        reference.on_l1_miss(addr),
                        "outcome diverged at event {i} for {cfg}"
                    );
                }
                Event::Writeback(raw) => {
                    let block = Addr::new(raw).block(cfg.block());
                    soa.on_writeback(block);
                    reference.on_writeback(block);
                }
            }
        }
        assert_eq!(soa.snapshot(), reference_snapshot(&reference));
        soa.finalize();
        reference.finalize();
        assert_eq!(soa.stats(), reference.stats(), "final stats for {cfg}");
    });
}

/// The decoded fast path used by the fused replay observer agrees with
/// the reference under the same randomized drive.
#[test]
fn decoded_soa_path_matches_the_reference() {
    check_with("decoded_soa_path_matches_the_reference", 96, |g| {
        let cfg = random_config(g);
        let events = random_events(g);
        let mut soa = StreamSystem::new(cfg);
        let mut reference = ReferenceStreamSystem::new(cfg);
        for event in &events {
            match *event {
                Event::Miss(raw) => {
                    let addr = Addr::new(raw);
                    let block = addr.block(cfg.block());
                    let word = addr.word(cfg.word());
                    assert_eq!(
                        soa.on_l1_miss_decoded(addr, block, word),
                        reference.on_l1_miss(addr)
                    );
                }
                Event::Writeback(raw) => {
                    let block = Addr::new(raw).block(cfg.block());
                    soa.on_writeback(block);
                    reference.on_writeback(block);
                }
            }
        }
        soa.finalize();
        reference.finalize();
        assert_eq!(soa.stats(), reference.stats(), "final stats for {cfg}");
    });
}

/// Renders the reference's buffers in the production snapshot format so
/// the two systems' buffer states can be compared textually.
fn reference_snapshot(reference: &ReferenceStreamSystem) -> String {
    // The reference intentionally has no snapshot method (it is not a
    // debugging tool); rebuild the production format from its buffers.
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "buffer  active  stride      head block  queued  run hits"
    );
    for (i, b) in reference.buffers().iter().enumerate() {
        let head = b
            .head_block()
            .map_or_else(|| "-".to_owned(), |h| format!("{:#x}", h.index()));
        let _ = writeln!(
            out,
            "{i:>6}  {:>6}  {:>+9} B  {head:>10}  {:>6}  {:>8}",
            if b.is_active() { "yes" } else { "no" },
            b.stride_bytes(),
            b.len(),
            b.current_run(),
        );
    }
    out
}
