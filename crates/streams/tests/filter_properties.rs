//! Property-based tests for the stride-detection filters and the stream
//! system's allocation policies, on the in-tree `streamsim-quickcheck`
//! harness.

use streamsim_prng::quickcheck::check_with;
use streamsim_prng::Rng;

use streamsim_streams::{Allocation, CzoneFilter, MinDeltaDetector, StreamConfig, StreamSystem};
use streamsim_trace::{Addr, WordAddr};

/// Three consecutive constant-stride references within one partition
/// always trigger detection with exactly that stride, for any base,
/// stride and czone large enough to contain them.
#[test]
fn czone_detects_any_clean_constant_stride() {
    check_with("czone_detects_any_clean_constant_stride", 128, |g| {
        let base = g.gen_range(0u64..1 << 40);
        let stride = if g.gen_bool(0.5) {
            g.gen_range(1i64..1 << 20)
        } else {
            g.gen_range(-(1i64 << 20)..-1)
        };
        let czone_bits = g.gen_range(24u32..40);
        // Keep all three references in one partition: align the base so
        // base, base+s, base+2s share their high bits.
        let span = stride.unsigned_abs() * 2 + 1;
        g.assume(span < (1u64 << czone_bits) / 2);
        let partition = base >> czone_bits << czone_bits;
        let start = partition + (1 << (czone_bits - 1)); // middle of czone
        let mut filter = CzoneFilter::new(8, czone_bits);
        let w = |i: i64| WordAddr::from_index(start.wrapping_add_signed(i * stride));
        assert_eq!(filter.lookup(w(0)), None);
        assert_eq!(filter.lookup(w(1)), None);
        assert_eq!(filter.lookup(w(2)), Some(stride));
    });
}

/// Detection in one partition is unaffected by arbitrary traffic in
/// other partitions (as long as the filter has capacity).
#[test]
fn czone_partitions_are_independent() {
    check_with("czone_partitions_are_independent", 128, |g| {
        let noise = g.vec(0usize..6, |g| g.gen_range(0u64..1 << 20));
        let czone_bits = 16u32;
        let mut filter = CzoneFilter::new(16, czone_bits);
        // The victim stream lives in partition 40.
        let base = 40u64 << czone_bits;
        let stride = 100i64;
        let refs = [base, base + 100, base + 200];
        // Interleave noise from partitions 0..15 (never 40).
        let mut sequence = Vec::new();
        for (i, &r) in refs.iter().enumerate() {
            if let Some(&n) = noise.get(i) {
                sequence.push(n & 0xFFFFF); // partitions 0..=15
            }
            sequence.push(r);
        }
        let mut detected = None;
        for s in sequence {
            if let Some(d) = filter.lookup(WordAddr::from_index(s)) {
                if s >= base {
                    detected = Some(d);
                }
            }
        }
        assert_eq!(detected, Some(stride));
    });
}

/// The min-delta detector's reported stride is always the smallest
/// nonzero distance to a remembered address, within its bound.
#[test]
fn min_delta_reports_the_minimum() {
    check_with("min_delta_reports_the_minimum", 128, |g| {
        let history = g.vec(1usize..12, |g| g.gen_range(0u64..1 << 24));
        let probe = g.gen_range(0u64..1 << 24);
        let bound = 1i64 << 22;
        let mut d = MinDeltaDetector::new(16, bound);
        for &h in &history {
            let _ = d.lookup(WordAddr::from_index(h));
        }
        let got = d.lookup(WordAddr::from_index(probe));
        let expected = history
            .iter()
            .map(|&h| probe.wrapping_sub(h) as i64)
            .filter(|&x| x != 0 && x.unsigned_abs() <= bound.unsigned_abs())
            .min_by_key(|x| x.unsigned_abs());
        assert_eq!(got, expected);
    });
}

/// Whatever the allocation policy, hit counts and filter counters are
/// internally consistent: every hit consumed a prefetch, every filtered
/// miss was declined by a filter lookup.
#[test]
fn policy_counters_are_consistent() {
    check_with("policy_counters_are_consistent", 128, |g| {
        let misses = g.vec(1usize..300, |g| g.gen_range(0u64..1 << 24));
        let allocation = g.pick(&[
            Allocation::OnMiss,
            Allocation::UnitFilter { entries: 8 },
            Allocation::UnitAndStrideFilters {
                unit_entries: 8,
                stride_entries: 8,
                czone_bits: 14,
            },
        ]);
        let mut sys = StreamSystem::new(StreamConfig::new(6, 2, allocation).unwrap());
        for &m in &misses {
            sys.on_l1_miss(Addr::new(m * 8));
        }
        sys.finalize();
        let stats = sys.stats();
        assert!(stats.prefetch_accounting_balances());
        match allocation {
            Allocation::OnMiss => {
                assert_eq!(stats.allocations, stats.misses());
            }
            Allocation::UnitFilter { .. } => {
                assert_eq!(stats.unit_filter.lookups, stats.misses());
                assert_eq!(stats.allocations, stats.unit_filter.allocations);
            }
            _ => {
                assert_eq!(stats.unit_filter.lookups, stats.misses());
                // czone sees exactly the unit-filter misses.
                assert_eq!(
                    stats.stride_filter.lookups,
                    stats.misses() - stats.unit_filter.allocations
                );
                assert_eq!(
                    stats.allocations,
                    stats.unit_filter.allocations + stats.stride_filter.allocations
                );
            }
        }
    });
}

/// A strided stream with random one-off interruptions still gets
/// detected and supplies hits (robustness of the czone FSM).
#[test]
fn czone_survives_sparse_interruptions() {
    check_with("czone_survives_sparse_interruptions", 128, |g| {
        let stride_blocks = g.gen_range(2u64..256);
        let interrupt_every = g.gen_range(5u64..20);
        let stride = stride_blocks * 32; // bytes, multiple of a block
        let mut sys = StreamSystem::new(StreamConfig::paper_strided(10, 20).unwrap());
        let mut hits = 0u64;
        for i in 0..200u64 {
            if i % interrupt_every == interrupt_every - 1 {
                // An isolated reference far away.
                sys.on_l1_miss(Addr::new(1 << 40));
            }
            if sys.on_l1_miss(Addr::new(0x10_0000 + i * stride)).is_hit() {
                hits += 1;
            }
        }
        assert!(hits > 150, "hits = {hits}");
    });
}
