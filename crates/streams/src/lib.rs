//! Stream buffers — the paper's primary contribution.
//!
//! This crate implements the full prefetching hardware evaluated by
//! Palacharla & Kessler (ISCA 1994):
//!
//! * [`StreamBuffer`] — one FIFO prefetch buffer (Figure 2): a queue of
//!   prefetched cache-block tags with valid bits plus an adder that
//!   generates the next prefetch address.
//! * [`StreamSystem`] — a multi-way collection of stream buffers with LRU
//!   reallocation, head comparison against every buffer in parallel, and
//!   write-back invalidation, exactly as §3 describes. All allocation
//!   policies are supported:
//!     - [`Allocation::OnMiss`] — Jouppi's original scheme: every miss that
//!       also misses the streams reallocates the LRU stream (§5);
//!     - [`Allocation::UnitFilter`] — the paper's bandwidth-saving filter:
//!       allocate only after misses to two consecutive cache blocks (§6,
//!       Figure 4);
//!     - [`Allocation::UnitAndStrideFilters`] — the unit filter backed by
//!       the **czone** non-unit-stride detector with its 3-state FSM
//!       (§7, Figures 6 & 7);
//!     - [`Allocation::MinDelta`] — the alternative "minimum delta"
//!       stride scheme the paper mentions and rejects on hardware-cost
//!       grounds (§7), included for the ablation benchmark.
//! * Full bandwidth accounting ([`StreamStats`]): every prefetch is
//!   tracked to a useful / flushed / invalidated / dead disposition, from
//!   which the paper's *extra bandwidth* (EB) metric is computed directly,
//!   alongside the closed-form approximation the paper uses.
//! * [`LengthHistogram`] — the stream-length distribution of Table 3.
//!
//! # Example
//!
//! ```
//! use streamsim_streams::{StreamConfig, StreamSystem};
//! use streamsim_trace::Addr;
//!
//! // Ten streams of depth two, allocate-on-miss (the paper's §5 setup).
//! let mut streams = StreamSystem::new(StreamConfig::paper_basic(10)?);
//!
//! // A unit-stride miss pattern: block 0, 1, 2, ... (32-byte blocks).
//! let mut hits = 0;
//! for i in 0..100u64 {
//!     if streams.on_l1_miss(Addr::new(i * 32)).is_hit() {
//!         hits += 1;
//!     }
//! }
//! // The first miss allocates; every subsequent miss hits the stream head.
//! assert_eq!(hits, 99);
//! # Ok::<(), streamsim_streams::StreamConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod config;
mod czone;
mod min_delta;
pub mod reference;
mod scan;
mod stats;
mod system;
mod unit_filter;

pub use buffer::StreamBuffer;
pub use config::{Allocation, MatchPolicy, StreamConfig, StreamConfigError};
pub use czone::{CzoneFilter, FsmState};
pub use min_delta::MinDeltaDetector;
pub use stats::{FilterStats, LeadHistogram, LengthBucket, LengthHistogram, StreamStats};
pub use system::{StreamOutcome, StreamSystem};
