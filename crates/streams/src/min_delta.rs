//! The "minimum delta" stride-detection alternative (§7).
//!
//! The paper sketches a second non-unit-stride scheme: cache the last N
//! miss addresses in a history buffer; on a stream miss, find the minimum
//! distance (delta) between the new address and any buffered address and
//! use that delta as the stride of the allocated stream. The authors found
//! its performance similar to the czone scheme but its hardware (N parallel
//! subtractions and a minimum tree per miss) less attractive. It is
//! implemented here for the ablation benchmark that reproduces that
//! comparison.

use std::collections::VecDeque;

use streamsim_trace::WordAddr;

use crate::FilterStats;

/// History buffer implementing the minimum-delta stride heuristic.
#[derive(Clone, Debug)]
pub struct MinDeltaDetector {
    entries: VecDeque<WordAddr>,
    capacity: usize,
    max_stride_words: i64,
    stats: FilterStats,
}

impl MinDeltaDetector {
    /// Creates a detector remembering `capacity` miss addresses and
    /// ignoring candidate strides larger than `max_stride_words` in
    /// magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `max_stride_words <= 0`.
    pub fn new(capacity: usize, max_stride_words: i64) -> Self {
        assert!(capacity > 0, "detector needs at least one entry");
        assert!(max_stride_words > 0, "maximum stride must be positive");
        MinDeltaDetector {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            max_stride_words,
            stats: FilterStats::default(),
        }
    }

    /// Presents a missed word address; returns the minimum signed delta to
    /// any remembered address (the stride to allocate with), if one exists
    /// within the magnitude bound. The address is then remembered.
    pub fn lookup(&mut self, word: WordAddr) -> Option<i64> {
        self.stats.lookups += 1;
        let best = self
            .entries
            .iter()
            .map(|&prev| word.delta(prev))
            .filter(|&d| d != 0 && d.unsigned_abs() <= self.max_stride_words.unsigned_abs())
            .min_by_key(|d| d.unsigned_abs());
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.stats.evictions += 1;
        }
        self.entries.push_back(word);
        self.stats.insertions += 1;
        if best.is_some() {
            self.stats.allocations += 1;
        }
        best
    }

    /// Detector counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WordAddr {
        WordAddr::from_index(i)
    }

    #[test]
    fn picks_the_smallest_magnitude_delta() {
        let mut d = MinDeltaDetector::new(4, 1_000_000);
        assert_eq!(d.lookup(w(1000)), None);
        assert_eq!(d.lookup(w(5000)), Some(4000));
        // 5100 is 100 from 5000 and 4100 from 1000: picks 100.
        assert_eq!(d.lookup(w(5100)), Some(100));
    }

    #[test]
    fn negative_deltas_allowed() {
        let mut d = MinDeltaDetector::new(4, 1_000_000);
        d.lookup(w(1000));
        assert_eq!(d.lookup(w(900)), Some(-100));
    }

    #[test]
    fn respects_max_stride_bound() {
        let mut d = MinDeltaDetector::new(4, 50);
        d.lookup(w(0));
        assert_eq!(d.lookup(w(1000)), None, "delta 1000 exceeds bound");
        assert_eq!(d.lookup(w(1040)), Some(40));
    }

    #[test]
    fn duplicate_addresses_give_no_stride() {
        let mut d = MinDeltaDetector::new(4, 100);
        d.lookup(w(7));
        assert_eq!(d.lookup(w(7)), None);
    }

    #[test]
    fn history_is_bounded() {
        let mut d = MinDeltaDetector::new(2, 1_000_000);
        d.lookup(w(0));
        d.lookup(w(100_000));
        d.lookup(w(200_000)); // evicts 0
        assert_eq!(d.stats().evictions, 1);
        // Nearest to 30 is now 100_000, not the evicted 0.
        assert_eq!(d.lookup(w(30)), Some(30 - 100_000));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MinDeltaDetector::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_bound_panics() {
        let _ = MinDeltaDetector::new(4, 0);
    }
}
