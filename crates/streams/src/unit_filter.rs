//! The unit-stride allocation filter (§6, Figure 4).
//!
//! Ordinary streams allocate on *every* miss, wasting memory bandwidth on
//! isolated references. The filter is a small history buffer of the N most
//! recent miss addresses, storing `a + 1` (the next cache block) for a miss
//! at block `a`. A stream is allocated only when a miss *hits* the filter —
//! i.e. when the preceding block missed in the recent past, indicating two
//! misses to consecutive cache blocks and hence a promising stream.

use std::collections::VecDeque;

use streamsim_trace::BlockAddr;

use crate::FilterStats;

/// History buffer detecting misses to consecutive cache blocks.
///
/// # Example
///
/// ```
/// use streamsim_streams::StreamConfig;
/// # use streamsim_trace::Addr;
/// use streamsim_streams::StreamSystem;
///
/// let mut sys = StreamSystem::new(StreamConfig::paper_filtered(4)?);
/// // An isolated miss never allocates a stream...
/// sys.on_l1_miss(Addr::new(0x9000));
/// assert_eq!(sys.stats().allocations, 0);
/// // ...but a miss to the next sequential block does.
/// sys.on_l1_miss(Addr::new(0x9020));
/// assert_eq!(sys.stats().allocations, 1);
/// # Ok::<(), streamsim_streams::StreamConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub(crate) struct UnitStrideFilter {
    /// Expected-next blocks; front = oldest.
    entries: VecDeque<BlockAddr>,
    capacity: usize,
    stats: FilterStats,
    counters: streamsim_obs::Counters,
}

impl UnitStrideFilter {
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_counters(capacity, streamsim_obs::Counters::global())
    }

    pub(crate) fn with_counters(capacity: usize, counters: streamsim_obs::Counters) -> Self {
        assert!(capacity > 0, "filter needs at least one entry");
        UnitStrideFilter {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: FilterStats::default(),
            counters,
        }
    }

    /// Presents a missed block. Returns `true` when a stream should be
    /// allocated (the block was predicted by an earlier miss); the hit
    /// entry is freed, as the paper specifies. On a filter miss the
    /// successor block is recorded, displacing the oldest entry if full.
    pub(crate) fn lookup(&mut self, block: BlockAddr) -> bool {
        self.stats.lookups += 1;
        if let Some(pos) = self.entries.iter().position(|&b| b == block) {
            self.entries.remove(pos);
            self.stats.allocations += 1;
            self.counters
                .add(streamsim_obs::Counter::UnitFilterAccepts, 1);
            return true;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.stats.evictions += 1;
        }
        self.entries.push_back(block.next());
        self.stats.insertions += 1;
        self.counters
            .add(streamsim_obs::Counter::UnitFilterRejects, 1);
        false
    }

    pub(crate) fn stats(&self) -> FilterStats {
        self.stats
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn consecutive_blocks_trigger_allocation() {
        let mut f = UnitStrideFilter::new(4);
        assert!(!f.lookup(b(10)), "first miss only records 11");
        assert!(f.lookup(b(11)), "predicted successor hits");
    }

    #[test]
    fn hit_frees_the_entry() {
        let mut f = UnitStrideFilter::new(4);
        f.lookup(b(10));
        assert!(f.lookup(b(11)));
        // The entry was freed; 11 again is a fresh miss recording 12.
        assert!(!f.lookup(b(11)));
        assert!(f.lookup(b(12)));
    }

    #[test]
    fn isolated_references_never_allocate() {
        let mut f = UnitStrideFilter::new(8);
        for i in [100, 300, 500, 700, 900] {
            assert!(!f.lookup(b(i)));
        }
        assert_eq!(f.stats().allocations, 0);
        assert_eq!(f.stats().insertions, 5);
    }

    #[test]
    fn capacity_evicts_oldest_prediction() {
        let mut f = UnitStrideFilter::new(2);
        f.lookup(b(10)); // predicts 11
        f.lookup(b(20)); // predicts 21
        f.lookup(b(30)); // predicts 31, evicts the 11 prediction
        assert!(!f.lookup(b(11)), "prediction for 11 was evicted");
        assert_eq!(f.stats().evictions, 2); // 21 evicted by the b(11) insert too
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn interleaved_streams_are_tracked_independently() {
        let mut f = UnitStrideFilter::new(4);
        assert!(!f.lookup(b(100)));
        assert!(!f.lookup(b(200)));
        assert!(f.lookup(b(101)));
        assert!(f.lookup(b(201)));
    }

    #[test]
    fn descending_accesses_do_not_hit_the_unit_filter() {
        // The unit filter predicts only +1 successors.
        let mut f = UnitStrideFilter::new(8);
        assert!(!f.lookup(b(50)));
        assert!(!f.lookup(b(49)));
        assert!(!f.lookup(b(48)));
        assert_eq!(f.stats().allocations, 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = UnitStrideFilter::new(0);
    }
}
