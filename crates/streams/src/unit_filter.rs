//! The unit-stride allocation filter (§6, Figure 4).
//!
//! Ordinary streams allocate on *every* miss, wasting memory bandwidth on
//! isolated references. The filter is a small history buffer of the N most
//! recent miss addresses, storing `a + 1` (the next cache block) for a miss
//! at block `a`. A stream is allocated only when a miss *hits* the filter —
//! i.e. when the preceding block missed in the recent past, indicating two
//! misses to consecutive cache blocks and hence a promising stream.
//!
//! The predictions live in a flat ring of block indices probed with
//! [`scan::find_first`](crate::scan::find_first) over its two contiguous
//! segments: the filter is probed on *every* primary miss that reaches
//! allocation, so the scan is as hot as the stream-head lookup itself,
//! and the ring makes the common capacity eviction a head increment
//! instead of a whole-array memmove. First-match order matters — the
//! history may legitimately hold the same predicted block twice (two
//! recent misses at `a - 1`), and the paper's FIFO frees the oldest.

// lint:hot-module — probed on every filtered allocation decision during replay

use streamsim_trace::BlockAddr;

use crate::scan;
use crate::FilterStats;

/// History buffer detecting misses to consecutive cache blocks.
///
/// # Example
///
/// ```
/// use streamsim_streams::StreamConfig;
/// # use streamsim_trace::Addr;
/// use streamsim_streams::StreamSystem;
///
/// let mut sys = StreamSystem::new(StreamConfig::paper_filtered(4)?);
/// // An isolated miss never allocates a stream...
/// sys.on_l1_miss(Addr::new(0x9000));
/// assert_eq!(sys.stats().allocations, 0);
/// // ...but a miss to the next sequential block does.
/// sys.on_l1_miss(Addr::new(0x9020));
/// assert_eq!(sys.stats().allocations, 1);
/// # Ok::<(), streamsim_streams::StreamConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub(crate) struct UnitStrideFilter {
    /// Predicted-next block indices in a ring: logical position `i`
    /// (0 = oldest) lives at `(head + i) % capacity`.
    predictions: Box<[u64]>,
    head: usize,
    len: usize,
    stats: FilterStats,
    counters: streamsim_obs::Counters,
}

impl UnitStrideFilter {
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_counters(capacity, streamsim_obs::Counters::global())
    }

    pub(crate) fn with_counters(capacity: usize, counters: streamsim_obs::Counters) -> Self {
        assert!(capacity > 0, "filter needs at least one entry");
        UnitStrideFilter {
            predictions: vec![0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            stats: FilterStats::default(),
            counters,
        }
    }

    /// Physical slot of logical position `pos` (one conditional subtract;
    /// `head + pos` never reaches twice the capacity).
    #[inline(always)]
    fn slot(&self, pos: usize) -> usize {
        let s = self.head + pos;
        if s >= self.predictions.len() {
            s - self.predictions.len()
        } else {
            s
        }
    }

    /// Oldest-first position of `needle`, scanning the ring's two
    /// contiguous segments, or `usize::MAX` if absent.
    fn find(&self, needle: u64) -> usize {
        let first_len = (self.predictions.len() - self.head).min(self.len);
        let pos = scan::find_first(&self.predictions[self.head..self.head + first_len], needle);
        if pos != usize::MAX {
            return pos;
        }
        let wrapped = scan::find_first(&self.predictions[..self.len - first_len], needle);
        if wrapped != usize::MAX {
            return first_len + wrapped;
        }
        usize::MAX
    }

    /// Presents a missed block. Returns `true` when a stream should be
    /// allocated (the block was predicted by an earlier miss); the hit
    /// entry is freed, as the paper specifies. On a filter miss the
    /// successor block is recorded, displacing the oldest entry if full.
    pub(crate) fn lookup(&mut self, block: BlockAddr) -> bool {
        self.stats.lookups += 1;
        let pos = self.find(block.index());
        if pos != usize::MAX {
            // Free the hit entry, preserving the order of the survivors:
            // shift the younger side down one logical position. Streaming
            // hits match the newest prediction, so this loop almost never
            // iterates.
            for i in pos..self.len - 1 {
                self.predictions[self.slot(i)] = self.predictions[self.slot(i + 1)];
            }
            self.len -= 1;
            self.stats.allocations += 1;
            self.counters
                .add(streamsim_obs::Counter::UnitFilterAccepts, 1);
            return true;
        }
        if self.len == self.predictions.len() {
            // Dropping the oldest is what the old `Vec::remove(0)`
            // memmove did; here it is one head increment.
            self.head = self.slot(1);
            self.len -= 1;
            self.stats.evictions += 1;
        }
        let tail = self.slot(self.len);
        self.predictions[tail] = block.next().index();
        self.len += 1;
        self.stats.insertions += 1;
        self.counters
            .add(streamsim_obs::Counter::UnitFilterRejects, 1);
        false
    }

    pub(crate) fn stats(&self) -> FilterStats {
        self.stats
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn consecutive_blocks_trigger_allocation() {
        let mut f = UnitStrideFilter::new(4);
        assert!(!f.lookup(b(10)), "first miss only records 11");
        assert!(f.lookup(b(11)), "predicted successor hits");
    }

    #[test]
    fn hit_frees_the_entry() {
        let mut f = UnitStrideFilter::new(4);
        f.lookup(b(10));
        assert!(f.lookup(b(11)));
        // The entry was freed; 11 again is a fresh miss recording 12.
        assert!(!f.lookup(b(11)));
        assert!(f.lookup(b(12)));
    }

    #[test]
    fn isolated_references_never_allocate() {
        let mut f = UnitStrideFilter::new(8);
        for i in [100, 300, 500, 700, 900] {
            assert!(!f.lookup(b(i)));
        }
        assert_eq!(f.stats().allocations, 0);
        assert_eq!(f.stats().insertions, 5);
    }

    #[test]
    fn capacity_evicts_oldest_prediction() {
        let mut f = UnitStrideFilter::new(2);
        f.lookup(b(10)); // predicts 11
        f.lookup(b(20)); // predicts 21
        f.lookup(b(30)); // predicts 31, evicts the 11 prediction
        assert!(!f.lookup(b(11)), "prediction for 11 was evicted");
        assert_eq!(f.stats().evictions, 2); // 21 evicted by the b(11) insert too
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn interleaved_streams_are_tracked_independently() {
        let mut f = UnitStrideFilter::new(4);
        assert!(!f.lookup(b(100)));
        assert!(!f.lookup(b(200)));
        assert!(f.lookup(b(101)));
        assert!(f.lookup(b(201)));
    }

    #[test]
    fn descending_accesses_do_not_hit_the_unit_filter() {
        // The unit filter predicts only +1 successors.
        let mut f = UnitStrideFilter::new(8);
        assert!(!f.lookup(b(50)));
        assert!(!f.lookup(b(49)));
        assert!(!f.lookup(b(48)));
        assert_eq!(f.stats().allocations, 0);
    }

    #[test]
    fn duplicate_predictions_free_the_oldest_first() {
        // Two misses at block 9 both predict 10; a hit at 10 must free only
        // the older entry (first match), leaving the second prediction live.
        let mut f = UnitStrideFilter::new(4);
        assert!(!f.lookup(b(9)));
        assert!(!f.lookup(b(9)));
        assert!(f.lookup(b(10)), "first prediction hits");
        assert!(f.lookup(b(10)), "second prediction still present");
        assert!(!f.lookup(b(10)), "both freed now");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = UnitStrideFilter::new(0);
    }
}
