//! The pre-SoA reference stream system.
//!
//! [`ReferenceStreamSystem`] is the stream-buffer system exactly as it
//! was before its hot state (head tags, replacement keys, filter
//! entries) was restructured into structure-of-arrays. It is kept
//! verbatim for two jobs, mirroring `streamsim_cache::reference`:
//!
//! * **equivalence oracle** — the SoA [`StreamSystem`](crate::StreamSystem)
//!   must match it outcome for outcome (per-miss [`StreamOutcome`],
//!   statistics, buffer snapshots) under every allocation policy and
//!   geometry, which the `soa_equivalence` property tests check against
//!   randomized miss streams;
//! * **benchmark baseline** — the `replay` bench measures the batched,
//!   fused SoA replay loop against this model driven one virtual call
//!   per miss event, so the tracked speedup is against the real pre-PR
//!   implementation, not a strawman.
//!
//! It is deliberately *not* optimised; do not use it in drivers.

use std::collections::VecDeque;

use streamsim_trace::{Addr, BlockAddr, BlockSize, WordAddr};

use crate::buffer::{AllocationEffects, ConsumeEffects};
use crate::czone::FsmState;
use crate::{Allocation, FilterStats, MatchPolicy, StreamConfig, StreamOutcome, StreamStats};

/// One prefetched entry of the pre-PR buffer (block tag, valid bit,
/// issue time), exactly as it was laid out before the restructuring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RefEntry {
    block: BlockAddr,
    valid: bool,
    issued_at: u64,
}

/// The original stream buffer: a `VecDeque` of [`RefEntry`] structs,
/// walked entry by entry for every match, flush count and write-back
/// invalidation — the array-of-structs layout the production
/// [`StreamBuffer`](crate::StreamBuffer) replaced with ring-indexed
/// parallel arrays. Kept verbatim so the reference system's cost profile
/// is the genuine pre-PR one.
#[derive(Clone, Debug)]
pub struct RefStreamBuffer {
    depth: usize,
    block: BlockSize,
    entries: VecDeque<RefEntry>,
    next_prefetch: Addr,
    stride_bytes: i64,
    last_queued_block: BlockAddr,
    exhausted: bool,
    active: bool,
    run_hits: u64,
    lru_stamp: u64,
}

impl RefStreamBuffer {
    fn new(depth: usize, block: BlockSize) -> Self {
        assert!(depth > 0, "stream depth must be at least 1");
        RefStreamBuffer {
            depth,
            block,
            entries: VecDeque::with_capacity(depth),
            next_prefetch: Addr::new(0),
            stride_bytes: block.bytes() as i64,
            last_queued_block: BlockAddr::from_index(0),
            exhausted: false,
            active: false,
            run_hits: 0,
            lru_stamp: 0,
        }
    }

    /// Whether the buffer currently holds an allocated stream.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The stride (in bytes) the buffer is prefetching with.
    pub fn stride_bytes(&self) -> i64 {
        self.stride_bytes
    }

    /// Number of entries currently buffered (valid or invalidated).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The block at the head of the FIFO, if any (valid entries only).
    pub fn head_block(&self) -> Option<BlockAddr> {
        self.entries.front().filter(|e| e.valid).map(|e| e.block)
    }

    /// Hits supplied since the last allocation.
    pub fn current_run(&self) -> u64 {
        self.run_hits
    }

    fn lru_stamp(&self) -> u64 {
        self.lru_stamp
    }

    fn touch(&mut self, stamp: u64) {
        self.lru_stamp = stamp;
    }

    fn head_matches(&self, block: BlockAddr) -> bool {
        self.head_block() == Some(block)
    }

    fn match_position(&self, block: BlockAddr) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.valid && e.block == block)
    }

    fn refill_one(&mut self, now: u64) -> bool {
        loop {
            if self.exhausted {
                return false;
            }
            let target_addr = self.next_prefetch;
            let target = target_addr.block(self.block);
            let advanced = target_addr.offset(self.stride_bytes);
            if advanced == target_addr {
                self.exhausted = true;
            }
            self.next_prefetch = advanced;
            if target != self.last_queued_block {
                self.entries.push_back(RefEntry {
                    block: target,
                    valid: true,
                    issued_at: now,
                });
                self.last_queued_block = target;
                return true;
            }
        }
    }

    fn allocate(&mut self, miss: Addr, stride_bytes: i64, now: u64) -> AllocationEffects {
        assert!(stride_bytes != 0, "a stream cannot have stride zero");
        let flushed = self.entries.iter().filter(|e| e.valid).count() as u64;
        let previous_run = self.run_hits;
        self.entries.clear();
        self.run_hits = 0;
        self.exhausted = false;
        self.stride_bytes = stride_bytes;
        self.last_queued_block = miss.block(self.block);
        self.next_prefetch = miss.offset(stride_bytes);
        if self.next_prefetch == miss {
            self.exhausted = true;
        }
        let mut issued = 0;
        while self.entries.len() < self.depth && self.refill_one(now) {
            issued += 1;
        }
        self.active = true;
        AllocationEffects {
            flushed,
            previous_run,
            issued,
        }
    }

    fn consume(&mut self, pos: usize, now: u64) -> ConsumeEffects {
        debug_assert!(self.entries.get(pos).is_some_and(|e| e.valid));
        let mut skipped = 0;
        for _ in 0..pos {
            let e = self.entries.pop_front().expect("pos is in range");
            if e.valid {
                skipped += 1;
            }
        }
        let matched = self.entries.pop_front().expect("pos is in range");
        self.run_hits += 1;
        let mut issued = 0;
        while self.entries.len() < self.depth && self.refill_one(now) {
            issued += 1;
        }
        ConsumeEffects {
            skipped,
            issued,
            lead: now.saturating_sub(matched.issued_at).max(1),
        }
    }

    fn invalidate(&mut self, block: BlockAddr) -> u64 {
        let mut count = 0;
        for e in &mut self.entries {
            if e.valid && e.block == block {
                e.valid = false;
                count += 1;
            }
        }
        count
    }

    fn retire(&mut self) -> (u64, u64) {
        let dead = self.entries.iter().filter(|e| e.valid).count() as u64;
        let run = self.run_hits;
        self.entries.clear();
        self.run_hits = 0;
        self.active = false;
        (dead, run)
    }
}

/// The original unit-stride filter: a `VecDeque` of predicted successor
/// blocks scanned with `Iterator::position`.
#[derive(Clone, Debug)]
struct RefUnitFilter {
    /// Expected-next blocks; front = oldest.
    entries: VecDeque<BlockAddr>,
    capacity: usize,
    stats: FilterStats,
    counters: streamsim_obs::Counters,
}

impl RefUnitFilter {
    fn new(capacity: usize, counters: streamsim_obs::Counters) -> Self {
        assert!(capacity > 0, "filter needs at least one entry");
        RefUnitFilter {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: FilterStats::default(),
            counters,
        }
    }

    fn lookup(&mut self, block: BlockAddr) -> bool {
        self.stats.lookups += 1;
        if let Some(pos) = self.entries.iter().position(|&b| b == block) {
            self.entries.remove(pos);
            self.stats.allocations += 1;
            self.counters
                .add(streamsim_obs::Counter::UnitFilterAccepts, 1);
            return true;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.stats.evictions += 1;
        }
        self.entries.push_back(block.next());
        self.stats.insertions += 1;
        self.counters
            .add(streamsim_obs::Counter::UnitFilterRejects, 1);
        false
    }
}

#[derive(Clone, Copy, Debug)]
struct RefCzoneEntry {
    tag: u64,
    last_addr: WordAddr,
    stride: i64,
    state: FsmState,
}

/// The original czone filter: a `VecDeque` of partition FSM entries.
#[derive(Clone, Debug)]
struct RefCzoneFilter {
    entries: VecDeque<RefCzoneEntry>,
    capacity: usize,
    czone_bits: u32,
    stats: FilterStats,
    counters: streamsim_obs::Counters,
}

impl RefCzoneFilter {
    fn new(capacity: usize, czone_bits: u32, counters: streamsim_obs::Counters) -> Self {
        assert!(capacity > 0, "filter needs at least one entry");
        assert!(
            (1..=62).contains(&czone_bits),
            "czone size must be between 1 and 62 bits"
        );
        RefCzoneFilter {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            czone_bits,
            stats: FilterStats::default(),
            counters,
        }
    }

    fn lookup(&mut self, word: WordAddr) -> Option<i64> {
        self.stats.lookups += 1;
        let tag = word.czone_tag(self.czone_bits);
        if let Some(pos) = self.entries.iter().position(|e| e.tag == tag) {
            let entry = &mut self.entries[pos];
            let delta = word.delta(entry.last_addr);
            if delta == 0 {
                return None;
            }
            self.counters
                .add(streamsim_obs::Counter::CzoneTransitions, 1);
            match entry.state {
                FsmState::Meta1 => {
                    entry.stride = delta;
                    entry.last_addr = word;
                    entry.state = FsmState::Meta2;
                    None
                }
                FsmState::Meta2 => {
                    if delta == entry.stride {
                        self.entries.remove(pos);
                        self.stats.allocations += 1;
                        Some(delta)
                    } else {
                        entry.stride = delta;
                        entry.last_addr = word;
                        None
                    }
                }
            }
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
                self.stats.evictions += 1;
            }
            self.entries.push_back(RefCzoneEntry {
                tag,
                last_addr: word,
                stride: 0,
                state: FsmState::Meta1,
            });
            self.stats.insertions += 1;
            self.counters
                .add(streamsim_obs::Counter::CzoneTransitions, 1);
            None
        }
    }
}

/// The original minimum-delta detector: a `VecDeque` of remembered miss
/// words, scanned in full per lookup.
#[derive(Clone, Debug)]
struct RefMinDelta {
    entries: VecDeque<WordAddr>,
    capacity: usize,
    max_stride_words: i64,
    stats: FilterStats,
}

impl RefMinDelta {
    fn new(capacity: usize, max_stride_words: i64) -> Self {
        assert!(capacity > 0, "detector needs at least one entry");
        assert!(max_stride_words > 0, "maximum stride must be positive");
        RefMinDelta {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            max_stride_words,
            stats: FilterStats::default(),
        }
    }

    fn lookup(&mut self, word: WordAddr) -> Option<i64> {
        self.stats.lookups += 1;
        let best = self
            .entries
            .iter()
            .map(|&prev| word.delta(prev))
            .filter(|&d| d != 0 && d.unsigned_abs() <= self.max_stride_words.unsigned_abs())
            .min_by_key(|d| d.unsigned_abs());
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.stats.evictions += 1;
        }
        self.entries.push_back(word);
        self.stats.insertions += 1;
        if best.is_some() {
            self.stats.allocations += 1;
        }
        best
    }
}

/// The array-of-structs stream system, exactly as it was before the SoA
/// restructuring: buffers probed through `VecDeque` heads, the LRU victim
/// found with `min_by_key`, filters scanned with `Iterator::position`.
/// Same outcomes, same statistics, same counter charges — only slower.
#[derive(Clone, Debug)]
pub struct ReferenceStreamSystem {
    config: StreamConfig,
    buffers: Vec<RefStreamBuffer>,
    clock: u64,
    unit_filter: Option<RefUnitFilter>,
    czone: Option<RefCzoneFilter>,
    min_delta: Option<RefMinDelta>,
    stats: StreamStats,
    finalized: bool,
    counters: streamsim_obs::Counters,
}

impl ReferenceStreamSystem {
    /// Creates a reference system from a validated configuration,
    /// charging internal-event counts to the global observability set.
    pub fn new(config: StreamConfig) -> Self {
        Self::with_counters(config, streamsim_obs::Counters::global())
    }

    /// Like [`ReferenceStreamSystem::new`], but charging allocation and
    /// filter counts to `counters`.
    pub fn with_counters(config: StreamConfig, counters: streamsim_obs::Counters) -> Self {
        let buffers = (0..config.num_streams())
            .map(|_| RefStreamBuffer::new(config.depth(), config.block()))
            .collect();
        let (unit_filter, czone, min_delta) = match config.allocation() {
            Allocation::OnMiss => (None, None, None),
            Allocation::UnitFilter { entries } => (
                Some(RefUnitFilter::new(entries, counters.clone())),
                None,
                None,
            ),
            Allocation::UnitAndStrideFilters {
                unit_entries,
                stride_entries,
                czone_bits,
            } => (
                Some(RefUnitFilter::new(unit_entries, counters.clone())),
                Some(RefCzoneFilter::new(
                    stride_entries,
                    czone_bits,
                    counters.clone(),
                )),
                None,
            ),
            Allocation::MinDelta {
                entries,
                max_stride_words,
            } => (
                None,
                None,
                Some(RefMinDelta::new(entries, max_stride_words)),
            ),
        };
        ReferenceStreamSystem {
            config,
            buffers,
            clock: 0,
            unit_filter,
            czone,
            min_delta,
            stats: StreamStats::default(),
            finalized: false,
            counters,
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Read-only view of the individual buffers, so equivalence tests can
    /// compare buffer state against the SoA system's.
    pub fn buffers(&self) -> &[RefStreamBuffer] {
        &self.buffers
    }

    /// Presents one primary-cache miss, exactly as the pre-SoA system did.
    pub fn on_l1_miss(&mut self, addr: Addr) -> StreamOutcome {
        debug_assert!(!self.finalized, "stream system already finalized");
        self.stats.lookups += 1;
        self.clock += 1;
        let block = addr.block(self.config.block());

        let matched = match self.config.match_policy() {
            MatchPolicy::HeadOnly => self
                .buffers
                .iter()
                .position(|b| b.is_active() && b.head_matches(block))
                .map(|i| (i, 0)),
            MatchPolicy::AnyEntry => self
                .buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_active())
                .filter_map(|(i, b)| b.match_position(block).map(|pos| (i, pos)))
                .min_by_key(|&(_, pos)| pos),
        };

        if let Some((idx, pos)) = matched {
            let clock = self.clock;
            let fx = self.buffers[idx].consume(pos, clock);
            self.buffers[idx].touch(clock);
            self.stats.hits += 1;
            self.stats.prefetches_used += 1;
            self.stats.prefetches_skipped += fx.skipped;
            self.stats.prefetches_issued += fx.issued;
            self.stats.leads.record(fx.lead);
            return StreamOutcome::Hit;
        }

        let unit_stride = self.config.block().bytes() as i64;
        let word = addr.word(self.config.word());
        let stride_bytes = match self.config.allocation() {
            Allocation::OnMiss => Some(unit_stride),
            Allocation::UnitFilter { .. } => self
                .unit_filter
                .as_mut()
                .expect("unit filter configured")
                .lookup(block)
                .then_some(unit_stride),
            Allocation::UnitAndStrideFilters { .. } => {
                let unit = self
                    .unit_filter
                    .as_mut()
                    .expect("unit filter configured")
                    .lookup(block);
                if unit {
                    Some(unit_stride)
                } else {
                    self.czone
                        .as_mut()
                        .expect("czone filter configured")
                        .lookup(word)
                        .map(|stride_words| stride_words * self.config.word().bytes() as i64)
                }
            }
            Allocation::MinDelta { .. } => self
                .min_delta
                .as_mut()
                .expect("min-delta detector configured")
                .lookup(word)
                .map(|stride_words| stride_words * self.config.word().bytes() as i64),
        };

        match stride_bytes {
            Some(stride) => {
                self.allocate(addr, stride);
                if stride.unsigned_abs() != self.config.block().bytes() {
                    self.stats.strided_allocations += 1;
                }
                StreamOutcome::MissAllocated
            }
            None => StreamOutcome::MissFiltered,
        }
    }

    fn allocate(&mut self, addr: Addr, stride_bytes: i64) {
        let idx = self
            .buffers
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| (b.is_active(), b.lru_stamp()))
            .map(|(i, _)| i)
            .expect("at least one stream buffer");
        let clock = self.clock;
        let fx = self.buffers[idx].allocate(addr, stride_bytes, clock);
        self.buffers[idx].touch(clock);
        self.stats.allocations += 1;
        self.counters
            .add(streamsim_obs::Counter::StreamAllocations, 1);
        self.stats.prefetches_flushed += fx.flushed;
        self.stats.prefetches_issued += fx.issued;
        self.stats.lengths.record_run(fx.previous_run);
    }

    /// A dirty block is being written back: invalidate stale copies.
    pub fn on_writeback(&mut self, block: BlockAddr) {
        for b in &mut self.buffers {
            self.stats.prefetches_invalidated += b.invalidate(block);
        }
    }

    /// Ends the simulation, accounting in-flight prefetches. Idempotent.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        for b in &mut self.buffers {
            let (dead, run) = b.retire();
            self.stats.prefetches_dead += dead;
            self.stats.lengths.record_run(run);
        }
        self.finalized = true;
    }

    /// Accumulated statistics, including the filters' counters.
    pub fn stats(&self) -> StreamStats {
        let mut stats = self.stats;
        if let Some(f) = &self.unit_filter {
            stats.unit_filter = f.stats;
        }
        match (&self.czone, &self.min_delta) {
            (Some(f), _) => stats.stride_filter = f.stats,
            (None, Some(d)) => stats.stride_filter = d.stats,
            _ => {}
        }
        stats
    }
}
