//! Stream-buffer statistics: hit rates, bandwidth accounting and the
//! stream-length distribution.

use std::fmt;

/// The stream-length buckets of the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LengthBucket {
    /// Runs of 1–5 stream hits.
    B1to5,
    /// Runs of 6–10 hits.
    B6to10,
    /// Runs of 11–15 hits.
    B11to15,
    /// Runs of 16–20 hits.
    B16to20,
    /// Runs longer than 20 hits.
    Over20,
}

impl LengthBucket {
    /// All buckets in table order.
    pub const ALL: [LengthBucket; 5] = [
        LengthBucket::B1to5,
        LengthBucket::B6to10,
        LengthBucket::B11to15,
        LengthBucket::B16to20,
        LengthBucket::Over20,
    ];

    /// The bucket a run of `length` hits falls in.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0` (zero-length runs are not recorded).
    pub fn of(length: u64) -> LengthBucket {
        match length {
            0 => panic!("zero-length stream runs are not recorded"),
            1..=5 => LengthBucket::B1to5,
            6..=10 => LengthBucket::B6to10,
            11..=15 => LengthBucket::B11to15,
            16..=20 => LengthBucket::B16to20,
            _ => LengthBucket::Over20,
        }
    }

    /// Index into [`LengthBucket::ALL`].
    pub const fn as_index(self) -> usize {
        match self {
            LengthBucket::B1to5 => 0,
            LengthBucket::B6to10 => 1,
            LengthBucket::B11to15 => 2,
            LengthBucket::B16to20 => 3,
            LengthBucket::Over20 => 4,
        }
    }
}

impl fmt::Display for LengthBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LengthBucket::B1to5 => "1-5",
            LengthBucket::B6to10 => "6-10",
            LengthBucket::B11to15 => "11-15",
            LengthBucket::B16to20 => "16-20",
            LengthBucket::Over20 => ">20",
        };
        f.write_str(s)
    }
}

/// Distribution of stream lengths.
///
/// A *stream length* is the number of hits a stream buffer supplied
/// between its allocation and the moment "the regular pattern of accesses
/// is broken" (its reallocation or the end of simulation). Table 3 reports
/// the fraction of all *hits* contributed by runs in each bucket, which is
/// what [`LengthHistogram::hit_fractions`] computes.
///
/// # Example
///
/// ```
/// use streamsim_streams::{LengthBucket, LengthHistogram};
///
/// let mut h = LengthHistogram::new();
/// h.record_run(3);   // 3 hits from a short run
/// h.record_run(27);  // 27 hits from a long run
/// let f = h.hit_fractions();
/// assert!((f[LengthBucket::B1to5.as_index()] - 0.1).abs() < 1e-12);
/// assert!((f[LengthBucket::Over20.as_index()] - 0.9).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LengthHistogram {
    /// Number of runs per bucket.
    runs: [u64; 5],
    /// Total hits contributed by runs in each bucket.
    hits: [u64; 5],
}

impl LengthHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed run of `length` hits. Zero-length runs (a
    /// stream reallocated before ever hitting) are ignored.
    pub fn record_run(&mut self, length: u64) {
        if length == 0 {
            return;
        }
        let i = LengthBucket::of(length).as_index();
        self.runs[i] += 1;
        self.hits[i] += length;
    }

    /// Number of runs recorded in `bucket`.
    pub fn runs_in(&self, bucket: LengthBucket) -> u64 {
        self.runs[bucket.as_index()]
    }

    /// Hits contributed by runs in `bucket`.
    pub fn hits_in(&self, bucket: LengthBucket) -> u64 {
        self.hits[bucket.as_index()]
    }

    /// Total runs recorded.
    pub fn total_runs(&self) -> u64 {
        self.runs.iter().sum()
    }

    /// Total hits recorded.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Fraction of all hits contributed by each bucket, in
    /// [`LengthBucket::ALL`] order — the rows of Table 3. All zeros when
    /// no hits were recorded.
    pub fn hit_fractions(&self) -> [f64; 5] {
        let total = self.total_hits();
        if total == 0 {
            return [0.0; 5];
        }
        let mut f = [0.0; 5];
        for (frac, &hits) in f.iter_mut().zip(self.hits.iter()) {
            *frac = hits as f64 / total as f64;
        }
        f
    }

    /// Mean run length (0.0 when empty).
    pub fn mean_length(&self) -> f64 {
        let runs = self.total_runs();
        if runs == 0 {
            0.0
        } else {
            self.total_hits() as f64 / runs as f64
        }
    }
}

/// Distribution of hit *lead times*: the number of stream lookups that
/// elapsed between a prefetch being issued and the hit that consumed it.
///
/// This quantifies the paper's §8 caveat — "a stream buffer entry may
/// have been prefetched but the data hasn't returned from memory yet".
/// Whether such a hit is as good as a cache hit depends on the memory
/// system: if the main-memory latency spans `R` inter-miss intervals,
/// only hits with lead time > `R` are fully covered. The
/// [`LeadHistogram::coverage`] method evaluates that fraction for any
/// `R`, which is what the `latency` experiment sweeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeadHistogram {
    /// Hit counts for lead times 1, 2, 3, 4..=7, 8..=15, and 16+.
    buckets: [u64; 6],
    total: u64,
}

impl LeadHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(lead: u64) -> usize {
        match lead {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            _ => 5,
        }
    }

    /// Records a hit whose prefetch was issued `lead` lookups earlier.
    pub fn record(&mut self, lead: u64) {
        self.buckets[Self::bucket(lead)] += 1;
        self.total += 1;
    }

    /// Total hits recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of hits whose lead time is at least `min_lead` lookups —
    /// the hits whose data would be back from a memory with a latency of
    /// `min_lead` inter-miss intervals. Conservative at bucket
    /// boundaries (rounds down within a bucket). 0.0 when empty.
    pub fn coverage(&self, min_lead: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = (Self::bucket(min_lead)..6).map(|i| self.buckets[i]).sum();
        covered as f64 / self.total as f64
    }

    /// Raw bucket counts (lead 1, 2, 3, 4–7, 8–15, 16+).
    pub fn buckets(&self) -> [u64; 6] {
        self.buckets
    }
}

/// Counters for an allocation filter (unit-stride, czone or min-delta).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// References presented to the filter.
    pub lookups: u64,
    /// Lookups that triggered a stream allocation.
    pub allocations: u64,
    /// New history entries created.
    pub insertions: u64,
    /// History entries displaced before completing a detection.
    pub evictions: u64,
}

impl FilterStats {
    /// Allocations / lookups (0.0 when no lookups).
    pub fn allocation_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.allocations as f64 / self.lookups as f64
        }
    }
}

/// Complete statistics of a [`crate::StreamSystem`] run.
///
/// The bandwidth accounting tracks every prefetch to one of four
/// dispositions: *used* (consumed by a stream hit), *flushed* (discarded
/// when its stream was reallocated), *invalidated* (killed by a
/// write-back), or *dead* (still in a buffer when simulation ended).
/// `issued = used + flushed + invalidated + dead` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Primary-cache misses presented to the streams.
    pub lookups: u64,
    /// Lookups that hit a stream buffer.
    pub hits: u64,
    /// Stream (re)allocations.
    pub allocations: u64,
    /// Allocations of non-unit-stride streams.
    pub strided_allocations: u64,
    /// Prefetches issued to memory.
    pub prefetches_issued: u64,
    /// Prefetches consumed by stream hits.
    pub prefetches_used: u64,
    /// Prefetches discarded when their stream was reallocated.
    pub prefetches_flushed: u64,
    /// Prefetches killed by write-back invalidation.
    pub prefetches_invalidated: u64,
    /// Prefetches still buffered at the end of simulation.
    pub prefetches_dead: u64,
    /// Entries skipped over by any-entry matching (discarded unused).
    pub prefetches_skipped: u64,
    /// Stream-length distribution (Table 3).
    pub lengths: LengthHistogram,
    /// Hit lead-time distribution (the §8 timing caveat).
    pub leads: LeadHistogram,
    /// Unit-stride filter counters, if such a filter is configured.
    pub unit_filter: FilterStats,
    /// Czone (or min-delta) filter counters, if configured.
    pub stride_filter: FilterStats,
}

impl StreamStats {
    /// Lookups that missed every stream.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Stream hit rate: the fraction of primary-cache misses that hit in
    /// the streams — the paper's primary metric.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Prefetches that were issued but never supplied data.
    pub fn useless_prefetches(&self) -> u64 {
        self.prefetches_issued - self.prefetches_used
    }

    /// Measured **extra bandwidth** (EB): useless prefetches as a fraction
    /// of the memory traffic the program needs without streams (its
    /// primary-cache miss fetches). Multiply by 100 for the paper's
    /// percentages.
    pub fn extra_bandwidth(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.useless_prefetches() as f64 / self.lookups as f64
        }
    }

    /// The paper's closed-form EB approximation for unfiltered streams:
    /// every stream miss causes an allocation that may flush up to `depth`
    /// prefetches, so `EB ≈ misses × depth / misses_total`.
    pub fn extra_bandwidth_paper_formula(&self, depth: usize) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.allocations * depth as u64) as f64 / self.lookups as f64
        }
    }

    /// Checks the prefetch-disposition conservation law; used by tests.
    pub fn prefetch_accounting_balances(&self) -> bool {
        self.prefetches_issued
            == self.prefetches_used
                + self.prefetches_flushed
                + self.prefetches_invalidated
                + self.prefetches_dead
                + self.prefetches_skipped
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} hits (hit rate {:.1}%), {} allocations, EB {:.1}%",
            self.lookups,
            self.hits,
            self.hit_rate() * 100.0,
            self.allocations,
            self.extra_bandwidth() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LengthBucket::of(1), LengthBucket::B1to5);
        assert_eq!(LengthBucket::of(5), LengthBucket::B1to5);
        assert_eq!(LengthBucket::of(6), LengthBucket::B6to10);
        assert_eq!(LengthBucket::of(10), LengthBucket::B6to10);
        assert_eq!(LengthBucket::of(11), LengthBucket::B11to15);
        assert_eq!(LengthBucket::of(15), LengthBucket::B11to15);
        assert_eq!(LengthBucket::of(16), LengthBucket::B16to20);
        assert_eq!(LengthBucket::of(20), LengthBucket::B16to20);
        assert_eq!(LengthBucket::of(21), LengthBucket::Over20);
        assert_eq!(LengthBucket::of(10_000), LengthBucket::Over20);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_bucket_panics() {
        let _ = LengthBucket::of(0);
    }

    #[test]
    fn histogram_ignores_zero_runs() {
        let mut h = LengthHistogram::new();
        h.record_run(0);
        assert_eq!(h.total_runs(), 0);
        assert_eq!(h.hit_fractions(), [0.0; 5]);
    }

    #[test]
    fn histogram_weights_by_hits() {
        let mut h = LengthHistogram::new();
        for _ in 0..10 {
            h.record_run(2); // 20 hits in 1-5
        }
        h.record_run(80); // 80 hits in >20
        assert_eq!(h.total_runs(), 11);
        assert_eq!(h.total_hits(), 100);
        let f = h.hit_fractions();
        assert!((f[0] - 0.2).abs() < 1e-12);
        assert!((f[4] - 0.8).abs() < 1e-12);
        assert!((h.mean_length() - 100.0 / 11.0).abs() < 1e-12);
        assert_eq!(h.runs_in(LengthBucket::B1to5), 10);
        assert_eq!(h.hits_in(LengthBucket::Over20), 80);
    }

    #[test]
    fn stats_rates() {
        let stats = StreamStats {
            lookups: 200,
            hits: 150,
            allocations: 50,
            prefetches_issued: 260,
            prefetches_used: 150,
            prefetches_flushed: 90,
            prefetches_invalidated: 5,
            prefetches_dead: 15,
            ..Default::default()
        };
        assert_eq!(stats.misses(), 50);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.useless_prefetches(), 110);
        assert!((stats.extra_bandwidth() - 0.55).abs() < 1e-12);
        assert!((stats.extra_bandwidth_paper_formula(2) - 0.5).abs() < 1e-12);
        assert!(stats.prefetch_accounting_balances());
    }

    #[test]
    fn accounting_detects_imbalance() {
        let stats = StreamStats {
            prefetches_issued: 10,
            prefetches_used: 3,
            ..Default::default()
        };
        assert!(!stats.prefetch_accounting_balances());
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = StreamStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.extra_bandwidth(), 0.0);
        assert_eq!(stats.extra_bandwidth_paper_formula(2), 0.0);
        assert_eq!(FilterStats::default().allocation_rate(), 0.0);
    }

    #[test]
    fn filter_allocation_rate() {
        let f = FilterStats {
            lookups: 100,
            allocations: 25,
            insertions: 75,
            evictions: 10,
        };
        assert!((f.allocation_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_shows_percentages() {
        let stats = StreamStats {
            lookups: 100,
            hits: 60,
            prefetches_issued: 100,
            prefetches_used: 60,
            ..Default::default()
        };
        let s = stats.to_string();
        assert!(s.contains("60.0%"), "{s}");
        assert!(s.contains("EB 40.0%"), "{s}");
    }

    #[test]
    fn lead_histogram_buckets_and_coverage() {
        let mut h = LeadHistogram::new();
        for lead in [1, 1, 2, 3, 5, 9, 40] {
            h.record(lead);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.buckets(), [2, 1, 1, 1, 1, 1]);
        assert!((h.coverage(1) - 1.0).abs() < 1e-12);
        assert!((h.coverage(2) - 5.0 / 7.0).abs() < 1e-12);
        assert!((h.coverage(4) - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.coverage(16) - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(LeadHistogram::new().coverage(1), 0.0);
    }

    #[test]
    fn bucket_display_labels() {
        let labels: Vec<String> = LengthBucket::ALL.iter().map(|b| b.to_string()).collect();
        assert_eq!(labels, ["1-5", "6-10", "11-15", "16-20", ">20"]);
    }
}
