//! A single FIFO stream buffer (the paper's Figure 2).
//!
//! The entry queue is a fixed ring of 16-byte slots indexed by a head
//! pointer: each slot is a block tag plus a meta word that packs the
//! valid flag (bit 63) over the prefetch issue time. Two slots share a
//! cache line where the previous `VecDeque` of 24-byte entry structs
//! straddled them, and the ring's wrap is one predictable conditional
//! subtract instead of the deque's masked capacity arithmetic. The
//! pre-restructuring layout survives verbatim as
//! `reference::RefStreamBuffer` so the replay bench compares against
//! the genuine original.

// lint:hot-module — every stream hit, refill and write-back probe lands here

use streamsim_trace::{Addr, BlockAddr, BlockSize};

/// Valid flag inside [`Slot::meta`]. The low 63 bits hold the issue
/// time, a per-run lookup count that cannot plausibly overflow them.
const VALID_BIT: u64 = 1 << 63;

/// One ring slot: a prefetched block tag and its packed metadata.
#[derive(Clone, Copy, Debug)]
struct Slot {
    block: u64,
    /// Bit 63: valid. Bits 0..63: logical time the prefetch was issued.
    meta: u64,
}

/// Effects of (re)allocating a stream buffer, for bandwidth accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct AllocationEffects {
    /// Valid prefetched entries discarded by the flush.
    pub flushed: u64,
    /// Length (in hits) of the run the buffer was on before the flush.
    pub previous_run: u64,
    /// Prefetches issued to refill the buffer.
    pub issued: u64,
}

/// Effects of consuming a matched entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ConsumeEffects {
    /// Valid entries discarded ahead of the match (any-entry policy only).
    pub skipped: u64,
    /// Prefetches issued to refill the freed slots.
    pub issued: u64,
    /// Lookups elapsed between the consumed entry's prefetch issue and
    /// this hit (its *lead time*; ≥ 1).
    pub lead: u64,
}

/// A single stream buffer: a FIFO of prefetched cache-block tags, a stride
/// register and an adder that generates successive prefetch addresses.
///
/// Jouppi's original buffers always advance by one cache block; the
/// paper's §7 extension replaces the incrementer with a general adder so a
/// buffer can follow any constant stride (including negative ones). Both
/// behaviours are captured here by the signed `stride_bytes` set at
/// allocation.
///
/// The FIFO holds tags only (hit-rate studies do not model the data);
/// each slot also records a valid flag and the logical time its prefetch
/// was issued, which supports the §8 timing analysis — a hit whose
/// prefetch was issued only moments ago may still be waiting on memory.
///
/// Buffers are driven by [`crate::StreamSystem`]; the public surface is
/// read-only inspection.
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    depth: usize,
    block: BlockSize,
    /// Ring storage: logical FIFO position `i` lives at slot
    /// `(head + i) % depth`, positions `0..len` are live. Slots past
    /// `len` hold stale values that are overwritten before they can be
    /// read.
    slots: Box<[Slot]>,
    head: usize,
    len: usize,
    /// Byte address the adder will prefetch next.
    next_prefetch: Addr,
    stride_bytes: i64,
    /// Block of the most recently enqueued prefetch, for de-duplicating
    /// sub-block strides (several words of one block need one prefetch).
    last_queued_block: BlockAddr,
    /// Set when the prefetch address saturated at an end of the address
    /// space; no further prefetches can be generated this run.
    exhausted: bool,
    active: bool,
    run_hits: u64,
    lru_stamp: u64,
    /// One-bit-per-block Bloom summary of every block enqueued since the
    /// last flush (bit `index & 63`). Never a false negative: consumed or
    /// invalidated entries leave their bits set (a false positive costs
    /// one real scan), so a clear bit proves the block is not buffered —
    /// the write-back fast path the system's mirror array relies on.
    bloom: u64,
}

impl StreamBuffer {
    /// Creates an idle buffer of `depth` entries for `block`-sized blocks.
    pub(crate) fn new(depth: usize, block: BlockSize) -> Self {
        assert!(depth > 0, "stream depth must be at least 1");
        StreamBuffer {
            depth,
            block,
            slots: vec![Slot { block: 0, meta: 0 }; depth].into_boxed_slice(),
            head: 0,
            len: 0,
            next_prefetch: Addr::new(0),
            stride_bytes: block.bytes() as i64,
            last_queued_block: BlockAddr::from_index(0),
            exhausted: false,
            active: false,
            run_hits: 0,
            lru_stamp: 0,
            bloom: 0,
        }
    }

    /// Physical slot of logical FIFO position `pos`. `head + pos` never
    /// reaches `2 * depth`, so one conditional subtract replaces a
    /// modulo.
    #[inline(always)]
    fn slot(&self, pos: usize) -> usize {
        let s = self.head + pos;
        if s >= self.depth {
            s - self.depth
        } else {
            s
        }
    }

    /// Valid entries among logical positions `0..upto`.
    fn count_valid(&self, upto: usize) -> u64 {
        (0..upto)
            .filter(|&i| self.slots[self.slot(i)].meta & VALID_BIT != 0)
            .count() as u64
    }

    /// Whether the buffer currently holds an allocated stream.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The stride (in bytes) the buffer is prefetching with.
    pub fn stride_bytes(&self) -> i64 {
        self.stride_bytes
    }

    /// Number of entries currently buffered (valid or invalidated).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The block at the head of the FIFO, if any (valid entries only).
    pub fn head_block(&self) -> Option<BlockAddr> {
        (self.len > 0 && self.slots[self.head].meta & VALID_BIT != 0)
            .then(|| BlockAddr::from_index(self.slots[self.head].block))
    }

    /// Hits supplied since the last allocation.
    pub fn current_run(&self) -> u64 {
        self.run_hits
    }

    pub(crate) fn lru_stamp(&self) -> u64 {
        self.lru_stamp
    }

    /// The block Bloom summary (see the field doc). A block whose
    /// `1 << (index & 63)` bit is clear is definitely not buffered.
    pub(crate) fn block_bloom(&self) -> u64 {
        self.bloom
    }

    pub(crate) fn touch(&mut self, stamp: u64) {
        self.lru_stamp = stamp;
    }

    /// Whether the valid head entry matches `block`.
    #[cfg(test)]
    fn head_matches(&self, block: BlockAddr) -> bool {
        self.head_block() == Some(block)
    }

    /// Position of the first valid entry matching `block`, for the
    /// any-entry ablation policy.
    pub(crate) fn match_position(&self, block: BlockAddr) -> Option<usize> {
        (0..self.len).find(|&i| {
            let s = self.slots[self.slot(i)];
            s.meta & VALID_BIT != 0 && s.block == block.index()
        })
    }

    /// Issues one prefetch at logical time `now`, de-duplicating blocks
    /// for sub-block strides. Returns whether an entry was enqueued.
    fn refill_one(&mut self, now: u64) -> bool {
        loop {
            if self.exhausted {
                return false;
            }
            let target_addr = self.next_prefetch;
            let target = target_addr.block(self.block);
            let advanced = target_addr.offset(self.stride_bytes);
            if advanced == target_addr {
                // Saturated at an end of the address space.
                self.exhausted = true;
            }
            self.next_prefetch = advanced;
            if target != self.last_queued_block {
                let s = self.slot(self.len);
                self.slots[s] = Slot {
                    block: target.index(),
                    meta: VALID_BIT | now,
                };
                self.len += 1;
                self.bloom |= 1 << (target.index() & 63);
                self.last_queued_block = target;
                return true;
            }
        }
    }

    /// Flushes the buffer and re-targets it to prefetch
    /// `miss + stride, miss + 2·stride, …`.
    ///
    /// # Panics
    ///
    /// Panics if `stride_bytes == 0`.
    pub(crate) fn allocate(
        &mut self,
        miss: Addr,
        stride_bytes: i64,
        now: u64,
    ) -> AllocationEffects {
        assert!(stride_bytes != 0, "a stream cannot have stride zero");
        let flushed = self.count_valid(self.len);
        let previous_run = self.run_hits;
        self.head = 0;
        self.len = 0;
        self.bloom = 0;
        self.run_hits = 0;
        self.exhausted = false;
        self.stride_bytes = stride_bytes;
        self.last_queued_block = miss.block(self.block);
        self.next_prefetch = miss.offset(stride_bytes);
        if self.next_prefetch == miss {
            self.exhausted = true; // saturated immediately
        }
        let mut issued = 0;
        while self.len < self.depth && self.refill_one(now) {
            issued += 1;
        }
        self.active = true;
        AllocationEffects {
            flushed,
            previous_run,
            issued,
        }
    }

    /// Consumes the matched entry at `pos` (0 = head): the block moves to
    /// the primary cache, entries ahead of it are discarded, and the adder
    /// streams new prefetches into the freed slots.
    pub(crate) fn consume(&mut self, pos: usize, now: u64) -> ConsumeEffects {
        debug_assert!(pos < self.len && self.slots[self.slot(pos)].meta & VALID_BIT != 0);
        let skipped = self.count_valid(pos);
        let matched_issue = self.slots[self.slot(pos)].meta & !VALID_BIT;
        self.head = self.slot(pos + 1);
        self.len -= pos + 1;
        self.run_hits += 1;
        let mut issued = 0;
        while self.len < self.depth && self.refill_one(now) {
            issued += 1;
        }
        ConsumeEffects {
            skipped,
            issued,
            lead: now.saturating_sub(matched_issue).max(1),
        }
    }

    /// Marks any buffered copy of `block` invalid (a write-back passed it
    /// on its way to memory). Returns the number of entries invalidated.
    pub(crate) fn invalidate(&mut self, block: BlockAddr) -> u64 {
        let mut count = 0;
        for i in 0..self.len {
            let s = self.slot(i);
            if self.slots[s].meta & VALID_BIT != 0 && self.slots[s].block == block.index() {
                self.slots[s].meta &= !VALID_BIT;
                count += 1;
            }
        }
        count
    }

    /// Ends the simulation for this buffer: returns the number of valid
    /// (never consumed) entries and the final run length, then goes idle.
    pub(crate) fn retire(&mut self) -> (u64, u64) {
        let dead = self.count_valid(self.len);
        let run = self.run_hits;
        self.head = 0;
        self.len = 0;
        self.bloom = 0;
        self.run_hits = 0;
        self.active = false;
        (dead, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(depth: usize) -> StreamBuffer {
        StreamBuffer::new(depth, BlockSize::new(32).unwrap())
    }

    fn block_of(addr: u64) -> BlockAddr {
        Addr::new(addr).block(BlockSize::new(32).unwrap())
    }

    #[test]
    fn allocation_prefetches_successors() {
        let mut b = buf(2);
        let fx = b.allocate(Addr::new(0x100), 32, 0);
        assert_eq!(fx.issued, 2);
        assert_eq!(fx.flushed, 0);
        assert!(b.head_matches(block_of(0x120)));
        assert_eq!(b.len(), 2);
        assert!(b.is_active());
    }

    #[test]
    fn consume_refills_from_the_adder() {
        let mut b = buf(2);
        b.allocate(Addr::new(0), 32, 0);
        assert!(b.head_matches(block_of(32)));
        let fx = b.consume(0, 1);
        assert_eq!(fx.issued, 1);
        assert_eq!(fx.skipped, 0);
        assert!(b.head_matches(block_of(64)));
        assert_eq!(b.current_run(), 1);
    }

    #[test]
    fn reallocation_flushes_and_reports_run() {
        let mut b = buf(2);
        b.allocate(Addr::new(0), 32, 0);
        b.consume(0, 1);
        b.consume(0, 1);
        let fx = b.allocate(Addr::new(0x4000), 32, 0);
        assert_eq!(fx.flushed, 2, "both live prefetches discarded");
        assert_eq!(fx.previous_run, 2);
        assert!(b.head_matches(block_of(0x4020)));
    }

    #[test]
    fn negative_stride_streams_backwards() {
        let mut b = buf(2);
        b.allocate(Addr::new(0x1000), -32, 0);
        assert!(b.head_matches(block_of(0x0fe0)));
        b.consume(0, 1);
        assert!(b.head_matches(block_of(0x0fc0)));
        assert_eq!(b.stride_bytes(), -32);
    }

    #[test]
    fn large_stride_prefetches_far_blocks() {
        let mut b = buf(2);
        b.allocate(Addr::new(0), 4096, 0);
        assert!(b.head_matches(block_of(4096)));
        b.consume(0, 1);
        assert!(b.head_matches(block_of(8192)));
    }

    #[test]
    fn sub_block_stride_deduplicates_blocks() {
        // Stride of 8 bytes within 32-byte blocks: prefetches must be one
        // per distinct block, not one per word.
        let mut b = buf(2);
        let fx = b.allocate(Addr::new(0), 8, 0);
        assert_eq!(fx.issued, 2);
        assert!(b.head_matches(block_of(32)));
        let fx = b.consume(0, 1);
        assert_eq!(fx.issued, 1);
        assert!(b.head_matches(block_of(64)));
    }

    #[test]
    fn saturation_at_address_zero_stops_prefetching() {
        let mut b = buf(4);
        let fx = b.allocate(Addr::new(64), -32, 0);
        // Can prefetch blocks at 32 and 0, then saturates.
        assert_eq!(fx.issued, 2);
        b.consume(0, 1);
        let fx = b.consume(0, 1);
        assert_eq!(fx.issued, 0);
        assert!(b.is_empty());
        assert!(!b.head_matches(block_of(0)));
    }

    #[test]
    fn invalidation_kills_matching_entries() {
        let mut b = buf(2);
        b.allocate(Addr::new(0), 32, 0);
        assert_eq!(b.invalidate(block_of(32)), 1);
        assert_eq!(b.invalidate(block_of(32)), 0, "already invalid");
        // Head is invalid: it no longer matches.
        assert!(!b.head_matches(block_of(32)));
        assert_eq!(b.head_block(), None);
        // The second entry is still there but is not the head.
        assert_eq!(b.match_position(block_of(64)), Some(1));
    }

    #[test]
    fn any_entry_consume_skips_ahead() {
        let mut b = buf(3);
        b.allocate(Addr::new(0), 32, 0);
        let pos = b.match_position(block_of(96)).unwrap();
        assert_eq!(pos, 2);
        let fx = b.consume(pos, 1);
        assert_eq!(fx.skipped, 2);
        assert_eq!(fx.issued, 3);
        assert!(b.head_matches(block_of(128)));
    }

    #[test]
    fn retire_reports_dead_entries_and_run() {
        let mut b = buf(2);
        b.allocate(Addr::new(0), 32, 0);
        b.consume(0, 1);
        let (dead, run) = b.retire();
        assert_eq!(dead, 2);
        assert_eq!(run, 1);
        assert!(!b.is_active());
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "stride zero")]
    fn zero_stride_panics() {
        let mut b = buf(2);
        let _ = b.allocate(Addr::new(0), 0, 0);
    }

    #[test]
    fn head_only_match_requires_exact_head() {
        let mut b = buf(2);
        b.allocate(Addr::new(0), 32, 0);
        assert!(!b.head_matches(block_of(64)), "second entry is not head");
        assert!(!b.head_matches(block_of(0)), "allocation target not held");
    }

    #[test]
    fn ring_wraps_cleanly_under_sustained_consumption() {
        // Enough consumes to wrap the head pointer through the ring
        // several times; logical FIFO order must be preserved throughout.
        let mut b = buf(3);
        b.allocate(Addr::new(0), 32, 0);
        for i in 1..=20u64 {
            assert!(b.head_matches(block_of(32 * i)), "head at iteration {i}");
            let fx = b.consume(0, i);
            assert_eq!(fx.skipped, 0);
            assert_eq!(b.len(), 3);
        }
    }
}
