//! Stream-buffer system configuration.

use std::fmt;

use streamsim_trace::{BlockSize, WordSize};

/// How a primary-cache miss is compared against a stream buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchPolicy {
    /// Compare only against the entry at the head of each FIFO — the
    /// paper's hardware ("subsequent primary cache misses compare their
    /// address against the head of the stream buffer").
    #[default]
    HeadOnly,
    /// Compare against every entry; on a match at position *k* the *k*
    /// entries ahead of it are discarded. A more expensive associative
    /// lookup, evaluated as an ablation.
    AnyEntry,
}

impl fmt::Display for MatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchPolicy::HeadOnly => f.write_str("head-only"),
            MatchPolicy::AnyEntry => f.write_str("any-entry"),
        }
    }
}

/// When a miss that also missed the streams is allowed to (re)allocate a
/// stream buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Allocation {
    /// Allocate on every stream miss (Jouppi's original policy, §5).
    OnMiss,
    /// Allocate only when the miss address hits the unit-stride filter —
    /// i.e. after misses to two consecutive cache blocks (§6).
    UnitFilter {
        /// History-buffer entries (the paper finds 8–10 sufficient and
        /// uses 16 in its experiments).
        entries: usize,
    },
    /// The unit-stride filter backed by the czone non-unit-stride filter:
    /// references that miss the unit filter are passed to the partition
    /// scheme of §7, which allocates a strided stream after three
    /// constant-stride misses within one czone partition.
    UnitAndStrideFilters {
        /// Unit-stride filter entries.
        unit_entries: usize,
        /// Non-unit-stride (czone) filter entries.
        stride_entries: usize,
        /// Size of the concentration zone in bits of the *word* address.
        /// The optimal value is "a little more than twice the stride" —
        /// Figure 9 sweeps this parameter.
        czone_bits: u32,
    },
    /// The "minimum delta" alternative (§7): keep the last N miss
    /// addresses and use the minimum distance to any of them as the
    /// stride. Allocates on every stream miss once history exists.
    MinDelta {
        /// History entries.
        entries: usize,
        /// Ignore candidate strides larger than this many words.
        max_stride_words: i64,
    },
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Allocation::OnMiss => f.write_str("allocate-on-miss"),
            Allocation::UnitFilter { entries } => write!(f, "unit filter ({entries} entries)"),
            Allocation::UnitAndStrideFilters {
                unit_entries,
                stride_entries,
                czone_bits,
            } => write!(
                f,
                "unit filter ({unit_entries}) + czone filter ({stride_entries}, czone {czone_bits} bits)"
            ),
            Allocation::MinDelta { entries, .. } => write!(f, "min-delta ({entries} entries)"),
        }
    }
}

/// Error constructing a [`StreamConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamConfigError {
    /// At least one stream buffer is required.
    NoStreams,
    /// Streams must prefetch at least one block ahead.
    ZeroDepth,
    /// A filter must have at least one entry.
    EmptyFilter,
    /// The czone must cover at least one block and leave tag bits.
    BadCzone {
        /// The offending czone size in bits.
        bits: u32,
    },
}

impl fmt::Display for StreamConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamConfigError::NoStreams => f.write_str("at least one stream buffer is required"),
            StreamConfigError::ZeroDepth => f.write_str("stream depth must be at least 1"),
            StreamConfigError::EmptyFilter => f.write_str("filters need at least one entry"),
            StreamConfigError::BadCzone { bits } => {
                write!(
                    f,
                    "czone size of {bits} bits is outside the usable 1..=62 range"
                )
            }
        }
    }
}

impl std::error::Error for StreamConfigError {}

/// Complete configuration of a [`crate::StreamSystem`].
///
/// Use the `paper_*` presets for the paper's experimental setups, or
/// [`StreamConfig::new`] plus the `with_*` builders for custom systems.
///
/// # Example
///
/// ```
/// use streamsim_streams::{Allocation, StreamConfig};
///
/// let cfg = StreamConfig::paper_strided(10, 16)?;
/// assert_eq!(cfg.num_streams(), 10);
/// assert_eq!(cfg.depth(), 2);
/// assert!(matches!(cfg.allocation(), Allocation::UnitAndStrideFilters { .. }));
/// # Ok::<(), streamsim_streams::StreamConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    num_streams: usize,
    depth: usize,
    block: BlockSize,
    word: WordSize,
    match_policy: MatchPolicy,
    allocation: Allocation,
}

impl StreamConfig {
    /// Filter size used throughout the paper's experiments.
    pub const PAPER_FILTER_ENTRIES: usize = 16;
    /// Stream depth assumed throughout the paper ("a constant stream
    /// buffer depth of two").
    pub const PAPER_DEPTH: usize = 2;

    /// Creates a configuration with `num_streams` buffers of `depth`
    /// entries, 32-byte blocks, 4-byte words, head-only matching and the
    /// given allocation policy.
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError`] for zero streams/depth, empty filters
    /// or an unusable czone size.
    pub fn new(
        num_streams: usize,
        depth: usize,
        allocation: Allocation,
    ) -> Result<Self, StreamConfigError> {
        if num_streams == 0 {
            return Err(StreamConfigError::NoStreams);
        }
        if depth == 0 {
            return Err(StreamConfigError::ZeroDepth);
        }
        match allocation {
            Allocation::UnitFilter { entries: 0 } => return Err(StreamConfigError::EmptyFilter),
            Allocation::UnitAndStrideFilters {
                unit_entries,
                stride_entries,
                czone_bits,
            } => {
                if unit_entries == 0 || stride_entries == 0 {
                    return Err(StreamConfigError::EmptyFilter);
                }
                if czone_bits == 0 || czone_bits > 62 {
                    return Err(StreamConfigError::BadCzone { bits: czone_bits });
                }
            }
            Allocation::MinDelta { entries: 0, .. } => return Err(StreamConfigError::EmptyFilter),
            _ => {}
        }
        Ok(StreamConfig {
            num_streams,
            depth,
            block: BlockSize::default(),
            word: WordSize::default(),
            match_policy: MatchPolicy::HeadOnly,
            allocation,
        })
    }

    /// §5 setup: `n` unified streams of depth 2, allocate on every miss.
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError::NoStreams`] when `n == 0`.
    pub fn paper_basic(n: usize) -> Result<Self, StreamConfigError> {
        Self::new(n, Self::PAPER_DEPTH, Allocation::OnMiss)
    }

    /// §6 setup: `n` streams behind a 16-entry unit-stride filter.
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError::NoStreams`] when `n == 0`.
    pub fn paper_filtered(n: usize) -> Result<Self, StreamConfigError> {
        Self::new(
            n,
            Self::PAPER_DEPTH,
            Allocation::UnitFilter {
                entries: Self::PAPER_FILTER_ENTRIES,
            },
        )
    }

    /// §7 setup: `n` streams, 16-entry unit filter backed by a 16-entry
    /// czone filter with the given czone size in bits (of the word
    /// address).
    ///
    /// # Errors
    ///
    /// See [`StreamConfig::new`].
    pub fn paper_strided(n: usize, czone_bits: u32) -> Result<Self, StreamConfigError> {
        Self::new(
            n,
            Self::PAPER_DEPTH,
            Allocation::UnitAndStrideFilters {
                unit_entries: Self::PAPER_FILTER_ENTRIES,
                stride_entries: Self::PAPER_FILTER_ENTRIES,
                czone_bits,
            },
        )
    }

    /// Replaces the cache block size (default 32 bytes).
    #[must_use]
    pub fn with_block(mut self, block: BlockSize) -> Self {
        self.block = block;
        self
    }

    /// Replaces the word size used by stride detection (default 4 bytes).
    #[must_use]
    pub fn with_word(mut self, word: WordSize) -> Self {
        self.word = word;
        self
    }

    /// Replaces the match policy (default head-only).
    #[must_use]
    pub fn with_match_policy(mut self, policy: MatchPolicy) -> Self {
        self.match_policy = policy;
        self
    }

    /// Number of stream buffers.
    pub fn num_streams(self) -> usize {
        self.num_streams
    }

    /// Entries per stream buffer.
    pub fn depth(self) -> usize {
        self.depth
    }

    /// Cache block size.
    pub fn block(self) -> BlockSize {
        self.block
    }

    /// Word size for stride detection.
    pub fn word(self) -> WordSize {
        self.word
    }

    /// Match policy.
    pub fn match_policy(self) -> MatchPolicy {
        self.match_policy
    }

    /// Allocation policy.
    pub fn allocation(self) -> Allocation {
        self.allocation
    }
}

impl fmt::Display for StreamConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} streams x depth {}, {} blocks, {}, {}",
            self.num_streams, self.depth, self.block, self.match_policy, self.allocation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let basic = StreamConfig::paper_basic(8).unwrap();
        assert_eq!(basic.num_streams(), 8);
        assert_eq!(basic.depth(), 2);
        assert_eq!(basic.allocation(), Allocation::OnMiss);
        assert_eq!(basic.block().bytes(), 32);
        assert_eq!(basic.match_policy(), MatchPolicy::HeadOnly);

        let filtered = StreamConfig::paper_filtered(10).unwrap();
        assert_eq!(
            filtered.allocation(),
            Allocation::UnitFilter { entries: 16 }
        );

        let strided = StreamConfig::paper_strided(10, 18).unwrap();
        assert_eq!(
            strided.allocation(),
            Allocation::UnitAndStrideFilters {
                unit_entries: 16,
                stride_entries: 16,
                czone_bits: 18
            }
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert_eq!(
            StreamConfig::paper_basic(0),
            Err(StreamConfigError::NoStreams)
        );
        assert_eq!(
            StreamConfig::new(1, 0, Allocation::OnMiss),
            Err(StreamConfigError::ZeroDepth)
        );
        assert_eq!(
            StreamConfig::new(1, 1, Allocation::UnitFilter { entries: 0 }),
            Err(StreamConfigError::EmptyFilter)
        );
        assert_eq!(
            StreamConfig::new(
                1,
                1,
                Allocation::UnitAndStrideFilters {
                    unit_entries: 16,
                    stride_entries: 0,
                    czone_bits: 16
                }
            ),
            Err(StreamConfigError::EmptyFilter)
        );
        assert_eq!(
            StreamConfig::paper_strided(4, 0),
            Err(StreamConfigError::BadCzone { bits: 0 })
        );
        assert_eq!(
            StreamConfig::paper_strided(4, 63),
            Err(StreamConfigError::BadCzone { bits: 63 })
        );
        assert_eq!(
            StreamConfig::new(
                1,
                1,
                Allocation::MinDelta {
                    entries: 0,
                    max_stride_words: 10
                }
            ),
            Err(StreamConfigError::EmptyFilter)
        );
    }

    #[test]
    fn builders_override_defaults() {
        use streamsim_trace::{BlockSize, WordSize};
        let cfg = StreamConfig::paper_basic(4)
            .unwrap()
            .with_block(BlockSize::new(64).unwrap())
            .with_word(WordSize::new(8).unwrap())
            .with_match_policy(MatchPolicy::AnyEntry);
        assert_eq!(cfg.block().bytes(), 64);
        assert_eq!(cfg.word().bytes(), 8);
        assert_eq!(cfg.match_policy(), MatchPolicy::AnyEntry);
    }

    #[test]
    fn error_messages_are_specific() {
        assert!(StreamConfigError::BadCzone { bits: 63 }
            .to_string()
            .contains("63"));
        assert!(StreamConfigError::NoStreams.to_string().contains("stream"));
    }

    #[test]
    fn display_mentions_policy() {
        let cfg = StreamConfig::paper_filtered(10).unwrap();
        let s = cfg.to_string();
        assert!(s.contains("10 streams"), "{s}");
        assert!(s.contains("unit filter"), "{s}");
    }
}
