//! Scans over the stream system's structure-of-arrays state.
//!
//! These replace per-buffer `VecDeque` walks with flat `&[u64]` sweeps,
//! mirroring the way-scan rebuild of `streamsim_cache::SetAssocCache`:
//! the win is the layout — one contiguous cache line or two instead of a
//! pointer chase per buffer. [`find_first`] keeps the early exit (match
//! positions are front-loaded in practice, and measurement beat a
//! branchless conditional-move chain on every workload mix); the
//! victim-choice [`min_index`] always reads every key, so it *is* the
//! branchless conditional-move scan. Both scans resolve ties to the
//! *lowest* index, exactly as the `Iterator::position` / `min_by_key`
//! code they replace did — the unit filter can legitimately hold
//! duplicate predictions, so first-match semantics are load-bearing, not
//! a nicety.

// lint:hot-module — every stream lookup and LRU victim choice runs these scans

/// Index of the first element equal to `needle`, or `usize::MAX` if
/// absent.
///
/// A plain early-exit scan over the flat key array. Two branchless
/// variants (a conditional-move chain and a per-lane match mask resolved
/// with `trailing_zeros`) were both measured slower on every workload
/// mix: matches are front-loaded in practice, so the early exit wins and
/// the flat `&[u64]` layout is where the speedup actually comes from.
#[inline(always)]
pub(crate) fn find_first(keys: &[u64], needle: u64) -> usize {
    keys.iter().position(|&k| k == needle).unwrap_or(usize::MAX)
}

/// Index of the first minimum element. Returns `0` for an empty slice —
/// callers guarantee non-empty (`StreamConfig` validates at least one
/// buffer), which a debug assertion pins.
#[inline(always)]
pub(crate) fn min_index(keys: &[u64]) -> usize {
    debug_assert!(!keys.is_empty(), "min_index over an empty key array");
    let mut best = 0usize;
    let mut best_key = u64::MAX;
    for (i, &k) in keys.iter().enumerate() {
        let better = k < best_key;
        best = if better { i } else { best };
        best_key = if better { k } else { best_key };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_first_returns_the_first_of_duplicates() {
        assert_eq!(find_first(&[5, 3, 5, 1], 5), 0);
        assert_eq!(find_first(&[9, 3, 5, 3], 3), 1);
    }

    #[test]
    fn find_first_misses_cleanly() {
        assert_eq!(find_first(&[1, 2, 3], 7), usize::MAX);
        assert_eq!(find_first(&[], 7), usize::MAX);
    }

    #[test]
    fn find_first_locates_the_sentinel_itself() {
        // The head-tag array uses u64::MAX as "no valid head"; a scan for
        // it must still behave sanely (the system never searches for it,
        // but the helper should not special-case values).
        assert_eq!(find_first(&[0, u64::MAX], u64::MAX), 1);
    }

    #[test]
    fn min_index_breaks_ties_to_the_lowest_index() {
        assert_eq!(min_index(&[4, 2, 2, 9]), 1);
        assert_eq!(min_index(&[0, 0, 0]), 0);
        assert_eq!(min_index(&[u64::MAX, u64::MAX]), 0);
    }

    #[test]
    fn min_index_finds_a_unique_minimum_anywhere() {
        assert_eq!(min_index(&[7, 5, 1, 6]), 2);
        assert_eq!(min_index(&[1]), 0);
    }
}
