//! The multi-way stream buffer system (§3).
//!
//! The hot lookup state is kept as structure-of-arrays alongside the
//! buffers, mirroring the `SetAssocCache` rebuild: a flat `Vec<u64>` of
//! head-block tags (with [`IDLE_HEAD`] marking idle buffers and
//! invalidated heads) scanned branchlessly on every miss, and a flat
//! `Vec<u64>` of packed replacement keys (`active` in the top bit over
//! the LRU stamp) so the victim choice is one branchless min-scan. The
//! `StreamBuffer`s remain the source of truth; the arrays are mirrors
//! refreshed at the few points a buffer's head or recency can change.

// lint:hot-module — every L1 miss funnels through this module

use streamsim_trace::{Addr, BlockAddr, WordAddr};

use crate::buffer::StreamBuffer;
use crate::czone::CzoneFilter;
use crate::min_delta::MinDeltaDetector;
use crate::scan;
use crate::unit_filter::UnitStrideFilter;
use crate::{Allocation, MatchPolicy, StreamConfig, StreamStats};

/// Sentinel head tag for a buffer with no valid head (idle, empty or an
/// invalidated front entry). Collides with a real block index only for
/// the very top block of the address space at the smallest block size,
/// which no configuration reaches; a debug assertion pins this.
const IDLE_HEAD: u64 = u64::MAX;

/// Result of presenting a primary-cache miss to the stream system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOutcome {
    /// The miss matched a stream buffer; the block moves to the primary
    /// cache from the buffer.
    Hit,
    /// The miss missed the streams and (re)allocated one.
    MissAllocated,
    /// The miss missed the streams and the allocation policy declined to
    /// allocate (filtered as an isolated reference).
    MissFiltered,
}

impl StreamOutcome {
    /// `true` for [`StreamOutcome::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, StreamOutcome::Hit)
    }
}

/// The head tag mirrored into the scan array for `buffer`.
fn head_tag(buffer: &StreamBuffer) -> u64 {
    if !buffer.is_active() {
        return IDLE_HEAD;
    }
    match buffer.head_block() {
        Some(head) => {
            debug_assert_ne!(head.index(), IDLE_HEAD, "head tag collides with sentinel");
            head.index()
        }
        None => IDLE_HEAD,
    }
}

/// The replacement key mirrored into the victim-scan array for `buffer`:
/// idle buffers sort below every active one, ties broken by LRU stamp —
/// the exact order of the `(is_active, lru_stamp)` tuple it replaces.
fn lru_key(buffer: &StreamBuffer) -> u64 {
    let stamp = buffer.lru_stamp();
    debug_assert!(stamp < 1 << 63, "LRU stamp overflows the packed key");
    ((buffer.is_active() as u64) << 63) | stamp
}

/// A multi-way set of stream buffers with LRU reallocation and the
/// allocation policy configured in [`StreamConfig`].
///
/// The system observes the primary cache's *miss stream*: call
/// [`StreamSystem::on_l1_miss`] for every primary-cache miss and
/// [`StreamSystem::on_writeback`] for every dirty block written back (the
/// paper: "write-backs bypass the streams and on their way to memory
/// invalidate any stale copies that might be present in the streams").
/// Call [`StreamSystem::finalize`] at end of trace so in-flight prefetches
/// are accounted and final run lengths recorded.
///
/// # Example
///
/// ```
/// use streamsim_streams::{StreamConfig, StreamSystem};
/// use streamsim_trace::Addr;
///
/// let mut sys = StreamSystem::new(StreamConfig::paper_basic(2)?);
/// // Two interleaved unit-stride miss streams lock onto two buffers.
/// for i in 0..50u64 {
///     sys.on_l1_miss(Addr::new(0x10000 + i * 32));
///     sys.on_l1_miss(Addr::new(0x90000 + i * 32));
/// }
/// sys.finalize();
/// assert!(sys.stats().hit_rate() > 0.9);
/// # Ok::<(), streamsim_streams::StreamConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct StreamSystem {
    config: StreamConfig,
    buffers: Vec<StreamBuffer>,
    /// Mirror of each buffer's valid head block ([`IDLE_HEAD`] if none);
    /// the only array the head-only match scan touches.
    head_tags: Vec<u64>,
    /// Mirror of each buffer's packed replacement key (see [`lru_key`]).
    lru_keys: Vec<u64>,
    /// Mirror of each buffer's block Bloom summary
    /// ([`StreamBuffer::block_bloom`]): the write-back path tests one bit
    /// per buffer here and only walks the entries of buffers that might
    /// hold the block — most write-backs touch nothing.
    entry_blooms: Vec<u64>,
    clock: u64,
    unit_filter: Option<UnitStrideFilter>,
    czone: Option<CzoneFilter>,
    min_delta: Option<MinDeltaDetector>,
    stats: StreamStats,
    finalized: bool,
    counters: streamsim_obs::Counters,
}

impl StreamSystem {
    /// Creates a stream system from a validated configuration, charging
    /// internal-event counts to the global observability set.
    pub fn new(config: StreamConfig) -> Self {
        Self::with_counters(config, streamsim_obs::Counters::global())
    }

    /// Like [`StreamSystem::new`], but charging allocation and filter
    /// counts to `counters` — scoped handles give per-system attribution
    /// when many systems replay one trace side by side.
    pub fn with_counters(config: StreamConfig, counters: streamsim_obs::Counters) -> Self {
        let buffers: Vec<StreamBuffer> = (0..config.num_streams())
            .map(|_| StreamBuffer::new(config.depth(), config.block()))
            .collect();
        let (unit_filter, czone, min_delta) = match config.allocation() {
            Allocation::OnMiss => (None, None, None),
            Allocation::UnitFilter { entries } => (
                Some(UnitStrideFilter::with_counters(entries, counters.clone())),
                None,
                None,
            ),
            Allocation::UnitAndStrideFilters {
                unit_entries,
                stride_entries,
                czone_bits,
            } => (
                Some(UnitStrideFilter::with_counters(
                    unit_entries,
                    counters.clone(),
                )),
                Some(CzoneFilter::with_counters(
                    stride_entries,
                    czone_bits,
                    counters.clone(),
                )),
                None,
            ),
            Allocation::MinDelta {
                entries,
                max_stride_words,
            } => (
                None,
                None,
                Some(MinDeltaDetector::new(entries, max_stride_words)),
            ),
        };
        StreamSystem {
            head_tags: vec![IDLE_HEAD; buffers.len()],
            lru_keys: buffers.iter().map(lru_key).collect(),
            entry_blooms: vec![0; buffers.len()],
            config,
            buffers,
            clock: 0,
            unit_filter,
            czone,
            min_delta,
            stats: StreamStats::default(),
            finalized: false,
            counters,
        }
    }

    /// The counter set this system charges (scoped or global).
    pub fn counters(&self) -> &streamsim_obs::Counters {
        &self.counters
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Read-only view of the individual buffers (for inspection/tests).
    pub fn buffers(&self) -> &[StreamBuffer] {
        &self.buffers
    }

    /// Refreshes the scan mirrors for the buffer at `idx` after any
    /// operation that may have changed its head or recency.
    fn refresh(&mut self, idx: usize) {
        self.head_tags[idx] = head_tag(&self.buffers[idx]);
        self.lru_keys[idx] = lru_key(&self.buffers[idx]);
        self.entry_blooms[idx] = self.buffers[idx].block_bloom();
    }

    /// Presents one primary-cache miss to the streams.
    pub fn on_l1_miss(&mut self, addr: Addr) -> StreamOutcome {
        let block = addr.block(self.config.block());
        let word = addr.word(self.config.word());
        self.on_l1_miss_decoded(addr, block, word)
    }

    /// Like [`StreamSystem::on_l1_miss`], with the block and word of
    /// `addr` already decoded — the replay engine's fused observer splits
    /// each address once and feeds every system sharing that geometry.
    pub fn on_l1_miss_decoded(
        &mut self,
        addr: Addr,
        block: BlockAddr,
        word: WordAddr,
    ) -> StreamOutcome {
        debug_assert!(!self.finalized, "stream system already finalized");
        debug_assert_eq!(block, addr.block(self.config.block()), "mismatched block");
        debug_assert_eq!(word, addr.word(self.config.word()), "mismatched word");
        self.stats.lookups += 1;
        self.clock += 1;

        // All buffers are compared in parallel in hardware; find a match.
        // Head-only matching (the common case) is one branchless scan over
        // the mirrored head tags.
        let matched = match self.config.match_policy() {
            MatchPolicy::HeadOnly => {
                let idx = scan::find_first(&self.head_tags, block.index());
                (idx != usize::MAX).then_some((idx, 0))
            }
            MatchPolicy::AnyEntry => self
                .buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_active())
                .filter_map(|(i, b)| b.match_position(block).map(|pos| (i, pos)))
                .min_by_key(|&(_, pos)| pos),
        };

        if let Some((idx, pos)) = matched {
            let clock = self.clock;
            let fx = self.buffers[idx].consume(pos, clock);
            self.buffers[idx].touch(clock);
            self.refresh(idx);
            self.stats.hits += 1;
            self.stats.prefetches_used += 1;
            self.stats.prefetches_skipped += fx.skipped;
            self.stats.prefetches_issued += fx.issued;
            self.stats.leads.record(fx.lead);
            return StreamOutcome::Hit;
        }

        // Stream miss: consult the allocation policy.
        let unit_stride = self.config.block().bytes() as i64;
        let stride_bytes = match self.config.allocation() {
            Allocation::OnMiss => Some(unit_stride),
            Allocation::UnitFilter { .. } => self
                .unit_filter
                .as_mut()
                // lint:allow(no-unwrap-hot, the constructor builds the filter whenever the policy names one)
                .expect("unit filter configured")
                .lookup(block)
                .then_some(unit_stride),
            Allocation::UnitAndStrideFilters { .. } => {
                let unit = self
                    .unit_filter
                    .as_mut()
                    // lint:allow(no-unwrap-hot, the constructor builds the filter whenever the policy names one)
                    .expect("unit filter configured")
                    .lookup(block);
                if unit {
                    Some(unit_stride)
                } else {
                    // References that miss the unit filter fall through to
                    // the non-unit-stride filter.
                    self.czone
                        .as_mut()
                        // lint:allow(no-unwrap-hot, the constructor builds the czone filter whenever the policy names one)
                        .expect("czone filter configured")
                        .lookup(word)
                        .map(|stride_words| stride_words * self.config.word().bytes() as i64)
                }
            }
            Allocation::MinDelta { .. } => self
                .min_delta
                .as_mut()
                // lint:allow(no-unwrap-hot, the constructor builds the detector whenever the policy names one)
                .expect("min-delta detector configured")
                .lookup(word)
                .map(|stride_words| stride_words * self.config.word().bytes() as i64),
        };

        match stride_bytes {
            Some(stride) => {
                self.allocate(addr, stride);
                if stride.unsigned_abs() != self.config.block().bytes() {
                    self.stats.strided_allocations += 1;
                }
                StreamOutcome::MissAllocated
            }
            None => StreamOutcome::MissFiltered,
        }
    }

    fn allocate(&mut self, addr: Addr, stride_bytes: i64) {
        // LRU replacement among the buffers; idle buffers first. The packed
        // keys make the old (is_active, lru_stamp) min_by_key a branchless
        // min-scan with the same first-minimum tie-breaking.
        let idx = scan::min_index(&self.lru_keys);
        let clock = self.clock;
        let fx = self.buffers[idx].allocate(addr, stride_bytes, clock);
        self.buffers[idx].touch(clock);
        self.refresh(idx);
        self.stats.allocations += 1;
        self.counters
            .add(streamsim_obs::Counter::StreamAllocations, 1);
        self.stats.prefetches_flushed += fx.flushed;
        self.stats.prefetches_issued += fx.issued;
        self.stats.lengths.record_run(fx.previous_run);
    }

    /// A dirty block is being written back to memory: invalidate any stale
    /// copies buffered in the streams.
    pub fn on_writeback(&mut self, block: BlockAddr) {
        // A clear Bloom bit proves the buffer never enqueued this block
        // since its last flush, so only plausible holders are walked.
        let bit = 1u64 << (block.index() & 63);
        for i in 0..self.buffers.len() {
            if self.entry_blooms[i] & bit == 0 {
                continue;
            }
            let invalidated = self.buffers[i].invalidate(block);
            if invalidated > 0 {
                // The head may have been the invalidated entry.
                self.head_tags[i] = head_tag(&self.buffers[i]);
            }
            self.stats.prefetches_invalidated += invalidated;
        }
    }

    /// Ends the simulation: accounts still-buffered prefetches as dead and
    /// records the final run length of every active stream. Idempotent.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        for i in 0..self.buffers.len() {
            let (dead, run) = self.buffers[i].retire();
            self.refresh(i);
            self.stats.prefetches_dead += dead;
            self.stats.lengths.record_run(run);
        }
        self.finalized = true;
    }

    /// A human-readable snapshot of every buffer's state — which streams
    /// are locked, their strides and how long they have been running.
    /// Useful when debugging why a workload does (not) stream.
    ///
    /// # Example
    ///
    /// ```
    /// use streamsim_streams::{StreamConfig, StreamSystem};
    /// use streamsim_trace::Addr;
    ///
    /// let mut sys = StreamSystem::new(StreamConfig::paper_basic(2)?);
    /// for i in 0..10u64 {
    ///     sys.on_l1_miss(Addr::new(i * 32));
    /// }
    /// let snap = sys.snapshot();
    /// assert!(snap.contains("stride"));
    /// assert!(snap.contains("+32"));
    /// # Ok::<(), streamsim_streams::StreamConfigError>(())
    /// ```
    pub fn snapshot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "buffer  active  stride      head block  queued  run hits"
        );
        for (i, b) in self.buffers.iter().enumerate() {
            let head = b
                .head_block()
                .map_or_else(|| "-".to_owned(), |h| format!("{:#x}", h.index()));
            let _ = writeln!(
                out,
                "{i:>6}  {:>6}  {:>+9} B  {head:>10}  {:>6}  {:>8}",
                if b.is_active() { "yes" } else { "no" },
                b.stride_bytes(),
                b.len(),
                b.current_run(),
            );
        }
        out
    }

    /// Accumulated statistics, including the filters' counters.
    pub fn stats(&self) -> StreamStats {
        let mut stats = self.stats;
        if let Some(f) = &self.unit_filter {
            stats.unit_filter = f.stats();
        }
        match (&self.czone, &self.min_delta) {
            (Some(f), _) => stats.stride_filter = f.stats(),
            (None, Some(d)) => stats.stride_filter = d.stats(),
            _ => {}
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_trace::BlockSize;

    fn basic(n: usize) -> StreamSystem {
        StreamSystem::new(StreamConfig::paper_basic(n).unwrap())
    }

    #[test]
    fn single_unit_stride_stream_hits_after_first_miss() {
        let mut sys = basic(1);
        assert_eq!(sys.on_l1_miss(Addr::new(0)), StreamOutcome::MissAllocated);
        for i in 1..20u64 {
            assert_eq!(
                sys.on_l1_miss(Addr::new(i * 32)),
                StreamOutcome::Hit,
                "i={i}"
            );
        }
        sys.finalize();
        let stats = sys.stats();
        assert_eq!(stats.hits, 19);
        assert_eq!(stats.allocations, 1);
        assert!(stats.prefetch_accounting_balances());
    }

    #[test]
    fn interleaved_streams_need_multiple_buffers() {
        // Two interleaved unit-stride streams with one buffer thrash it:
        // every miss reallocates.
        let mut one = basic(1);
        for i in 0..20u64 {
            one.on_l1_miss(Addr::new(i * 32));
            one.on_l1_miss(Addr::new(0x100000 + i * 32));
        }
        assert_eq!(one.stats().hits, 0, "single buffer thrashes");

        // Two buffers lock on: hit rate approaches 1.
        let mut two = basic(2);
        for i in 0..20u64 {
            two.on_l1_miss(Addr::new(i * 32));
            two.on_l1_miss(Addr::new(0x100000 + i * 32));
        }
        assert_eq!(two.stats().hits, 38);
    }

    #[test]
    fn lru_reallocates_the_coldest_buffer() {
        let mut sys = basic(2);
        // Stream A established and hot.
        sys.on_l1_miss(Addr::new(0));
        sys.on_l1_miss(Addr::new(32));
        // Stream B established but stale.
        sys.on_l1_miss(Addr::new(0x100000));
        // A hits again (hotter than B).
        sys.on_l1_miss(Addr::new(64));
        // A new stream C must displace B, not A.
        sys.on_l1_miss(Addr::new(0x200000));
        assert_eq!(sys.on_l1_miss(Addr::new(96)), StreamOutcome::Hit, "A alive");
        assert_eq!(
            sys.on_l1_miss(Addr::new(0x200020)),
            StreamOutcome::Hit,
            "C alive"
        );
    }

    #[test]
    fn skipping_a_block_breaks_a_head_only_stream() {
        let mut sys = basic(1);
        sys.on_l1_miss(Addr::new(0));
        assert_eq!(sys.on_l1_miss(Addr::new(32)), StreamOutcome::Hit);
        // Skip block 2 — head holds block 2, reference is block 3: miss.
        assert_eq!(sys.on_l1_miss(Addr::new(96)), StreamOutcome::MissAllocated);
    }

    #[test]
    fn any_entry_matching_tolerates_skips_within_depth() {
        let cfg = StreamConfig::new(1, 4, Allocation::OnMiss)
            .unwrap()
            .with_match_policy(MatchPolicy::AnyEntry);
        let mut sys = StreamSystem::new(cfg);
        sys.on_l1_miss(Addr::new(0));
        // Block 2 is the second entry: any-entry matching finds it.
        assert_eq!(sys.on_l1_miss(Addr::new(64)), StreamOutcome::Hit);
        let stats = sys.stats();
        assert_eq!(stats.prefetches_skipped, 1);
    }

    #[test]
    fn writeback_invalidates_buffered_block() {
        let mut sys = basic(1);
        sys.on_l1_miss(Addr::new(0)); // buffers blocks 1, 2
        let block1 = Addr::new(32).block(BlockSize::new(32).unwrap());
        sys.on_writeback(block1);
        // The stale copy must not supply a hit.
        assert_eq!(sys.on_l1_miss(Addr::new(32)), StreamOutcome::MissAllocated);
        sys.finalize();
        let stats = sys.stats();
        assert_eq!(stats.prefetches_invalidated, 1);
        assert!(stats.prefetch_accounting_balances());
    }

    #[test]
    fn decoded_entry_point_matches_the_plain_one() {
        let cfg = StreamConfig::paper_strided(4, 16).unwrap();
        let mut plain = StreamSystem::new(cfg);
        let mut decoded = StreamSystem::new(cfg);
        let addrs: Vec<u64> = (0..200u64)
            .map(|i| (i * 0x2497 + (i % 7) * 0x40000) & 0xf_ffff)
            .collect();
        for &raw in &addrs {
            let addr = Addr::new(raw);
            let block = addr.block(cfg.block());
            let word = addr.word(cfg.word());
            assert_eq!(
                plain.on_l1_miss(addr),
                decoded.on_l1_miss_decoded(addr, block, word)
            );
        }
        plain.finalize();
        decoded.finalize();
        assert_eq!(plain.stats(), decoded.stats());
    }

    #[test]
    fn unit_filter_suppresses_isolated_references() {
        let mut sys = StreamSystem::new(StreamConfig::paper_filtered(4).unwrap());
        for i in 0..32u64 {
            // Far-apart isolated references.
            assert_eq!(
                sys.on_l1_miss(Addr::new(i * 0x10000)),
                StreamOutcome::MissFiltered
            );
        }
        let stats = sys.stats();
        assert_eq!(stats.allocations, 0);
        assert_eq!(stats.prefetches_issued, 0);
        assert_eq!(stats.unit_filter.lookups, 32);
    }

    #[test]
    fn unit_filter_costs_two_misses_before_streaming() {
        let mut sys = StreamSystem::new(StreamConfig::paper_filtered(4).unwrap());
        assert_eq!(sys.on_l1_miss(Addr::new(0)), StreamOutcome::MissFiltered);
        assert_eq!(sys.on_l1_miss(Addr::new(32)), StreamOutcome::MissAllocated);
        for i in 2..10u64 {
            assert_eq!(sys.on_l1_miss(Addr::new(i * 32)), StreamOutcome::Hit);
        }
    }

    #[test]
    fn czone_detects_large_strides_behind_unit_filter() {
        let mut sys = StreamSystem::new(StreamConfig::paper_strided(4, 18).unwrap());
        let stride = 4096u64; // bytes; 1024 words: needs czone > ~11 bits
        let mut hits = 0;
        for i in 0..40u64 {
            if sys.on_l1_miss(Addr::new(0x40000 + i * stride)).is_hit() {
                hits += 1;
            }
        }
        // Three misses to detect, then the stream supplies hits.
        assert!(hits >= 35, "hits = {hits}");
        sys.finalize();
        let stats = sys.stats();
        assert!(stats.strided_allocations >= 1);
        assert!(stats.prefetch_accounting_balances());
    }

    #[test]
    fn basic_streams_cannot_follow_large_strides() {
        let mut sys = basic(4);
        let stride = 4096u64;
        let mut hits = 0;
        for i in 0..40u64 {
            if sys.on_l1_miss(Addr::new(i * stride)).is_hit() {
                hits += 1;
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn min_delta_detects_constant_strides() {
        let cfg = StreamConfig::new(
            4,
            2,
            Allocation::MinDelta {
                entries: 8,
                max_stride_words: 1 << 20,
            },
        )
        .unwrap();
        let mut sys = StreamSystem::new(cfg);
        let mut hits = 0;
        for i in 0..40u64 {
            if sys.on_l1_miss(Addr::new(i * 2048)).is_hit() {
                hits += 1;
            }
        }
        assert!(hits >= 35, "hits = {hits}");
    }

    #[test]
    fn finalize_is_idempotent_and_accounts_dead_prefetches() {
        let mut sys = basic(2);
        sys.on_l1_miss(Addr::new(0));
        sys.finalize();
        sys.finalize();
        let stats = sys.stats();
        assert_eq!(stats.prefetches_dead, 2);
        assert!(stats.prefetch_accounting_balances());
    }

    #[test]
    fn run_lengths_recorded_on_flush_and_finalize() {
        let mut sys = basic(1);
        sys.on_l1_miss(Addr::new(0));
        for i in 1..4u64 {
            sys.on_l1_miss(Addr::new(i * 32)); // 3 hits
        }
        sys.on_l1_miss(Addr::new(0x100000)); // reallocation flushes run of 3
        sys.on_l1_miss(Addr::new(0x100020)); // 1 hit
        sys.finalize();
        let h = sys.stats().lengths;
        assert_eq!(h.total_runs(), 2);
        assert_eq!(h.total_hits(), 4);
    }

    #[test]
    fn eb_matches_paper_formula_for_unfiltered_isolated_misses() {
        // Isolated references: every miss allocates, every prefetch is
        // useless, so measured EB equals allocations×depth/misses exactly.
        let mut sys = basic(4);
        for i in 0..100u64 {
            sys.on_l1_miss(Addr::new(i * 0x40000));
        }
        sys.finalize();
        let stats = sys.stats();
        assert_eq!(stats.hits, 0);
        let measured = stats.extra_bandwidth();
        let formula = stats.extra_bandwidth_paper_formula(2);
        assert!((measured - formula).abs() < 1e-12);
        assert!(
            (measured - 2.0).abs() < 1e-12,
            "2 useless prefetches per miss"
        );
    }

    #[test]
    fn stats_include_filter_counters() {
        let mut sys = StreamSystem::new(StreamConfig::paper_strided(2, 16).unwrap());
        sys.on_l1_miss(Addr::new(0));
        sys.on_l1_miss(Addr::new(0x100000));
        let stats = sys.stats();
        assert_eq!(stats.unit_filter.lookups, 2);
        assert_eq!(stats.stride_filter.lookups, 2);
    }

    #[test]
    fn deeper_buffers_give_longer_lead_times() {
        // With depth d, a steady unit-stride stream's hits consume
        // prefetches issued d lookups earlier, so deeper buffers tolerate
        // longer memory latencies (the §8 analysis).
        let run = |depth: usize| {
            let mut sys =
                StreamSystem::new(StreamConfig::new(4, depth, Allocation::OnMiss).unwrap());
            for i in 0..200u64 {
                sys.on_l1_miss(Addr::new(i * 32));
            }
            sys.stats().leads
        };
        let shallow = run(1);
        let deep = run(8);
        assert!(shallow.coverage(4) < 0.05, "depth-1 leads are short");
        assert!(deep.coverage(4) > 0.9, "depth-8 leads are long");
        assert_eq!(shallow.total() + 1, 200); // every miss after the first hits
    }

    #[test]
    fn snapshot_describes_active_streams() {
        let mut sys = basic(3);
        sys.on_l1_miss(Addr::new(0));
        sys.on_l1_miss(Addr::new(32));
        let snap = sys.snapshot();
        assert!(snap.contains("yes"), "{snap}");
        assert!(snap.contains("no"), "{snap}");
        assert_eq!(snap.lines().count(), 4, "{snap}");
    }

    #[test]
    fn buffers_accessor_exposes_state() {
        let mut sys = basic(3);
        sys.on_l1_miss(Addr::new(0));
        assert_eq!(sys.buffers().len(), 3);
        assert_eq!(sys.buffers().iter().filter(|b| b.is_active()).count(), 1);
    }
}
