//! Non-unit-stride detection: the czone partition scheme (§7).
//!
//! Off-chip logic cannot see the program counter, so per-instruction
//! stride tables (Baer & Chen) are unavailable. The paper instead
//! partitions the physical address space dynamically: the low `czone_bits`
//! of the *word* address are the **concentration zone** and the remaining
//! high bits are a partition *tag*. References whose addresses share a tag
//! fall in the same partition and are analysed in isolation by a small
//! finite-state machine (Figure 7) that verifies a constant stride:
//!
//! ```text
//! INVALID ──miss a──▶ META1 ──miss a'──▶ META2 ──miss a''──▶ allocate
//!                     (last = a)         (stride = a' − a)   if a''−a' == stride
//! ```
//!
//! On the third constant-stride miss, a stream is allocated with that
//! stride and the filter entry is freed. The czone size trades off
//! detection ability (Figure 9): too small and three strided references
//! never share a partition; too large and unrelated streams collide.
//!
//! The per-partition FSM entries are stored as structure-of-arrays — the
//! tags in their own flat `Vec<u64>` probed by the branchless
//! [`scan::find_first`](crate::scan::find_first), with the last address,
//! stride guess and FSM state in parallel arrays touched only on a tag
//! hit. The tag scan runs on every miss that falls through the unit
//! filter, so only the 8 bytes per partition it actually compares stay in
//! the scanned cache lines. Tags are unique (one FSM per partition), so
//! first-match order is equivalent to any-match here; the parallel arrays
//! shift together on eviction to preserve the paper's FIFO.

// lint:hot-module — probed on every miss that falls through the unit filter

use streamsim_trace::WordAddr;

use crate::scan;
use crate::FilterStats;

/// State of a partition's stride-verification FSM (Figure 7).
///
/// `INVALID` is represented by the absence of a filter entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsmState {
    /// One miss seen; `last_addr` recorded, no stride guess yet.
    Meta1,
    /// Two or more misses seen; a candidate stride is being verified.
    Meta2,
}

/// The non-unit-stride filter: a history buffer of active partitions, each
/// with the FSM state needed to verify a constant stride.
///
/// Strides are detected in *words* (the paper operates on word addresses)
/// and reported as signed word deltas; the caller scales them to bytes.
#[derive(Clone, Debug)]
pub struct CzoneFilter {
    /// Partition tags; index 0 = oldest. The only array the scan touches.
    tags: Vec<u64>,
    /// Word index of the partition's most recent miss.
    last: Vec<u64>,
    /// Candidate stride in words; meaningful in `Meta2`.
    strides: Vec<i64>,
    states: Vec<FsmState>,
    capacity: usize,
    czone_bits: u32,
    stats: FilterStats,
    counters: streamsim_obs::Counters,
}

impl CzoneFilter {
    /// Creates a filter of `capacity` entries partitioning word addresses
    /// with a czone of `czone_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `czone_bits` is outside `1..=62`.
    pub fn new(capacity: usize, czone_bits: u32) -> Self {
        Self::with_counters(capacity, czone_bits, streamsim_obs::Counters::global())
    }

    /// Like [`CzoneFilter::new`], but charging transition counts to
    /// `counters` instead of the global set.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `czone_bits` is outside `1..=62`.
    pub fn with_counters(
        capacity: usize,
        czone_bits: u32,
        counters: streamsim_obs::Counters,
    ) -> Self {
        assert!(capacity > 0, "filter needs at least one entry");
        assert!(
            (1..=62).contains(&czone_bits),
            "czone size must be between 1 and 62 bits"
        );
        CzoneFilter {
            tags: Vec::with_capacity(capacity),
            last: Vec::with_capacity(capacity),
            strides: Vec::with_capacity(capacity),
            states: Vec::with_capacity(capacity),
            capacity,
            czone_bits,
            stats: FilterStats::default(),
            counters,
        }
    }

    /// The configured czone size in bits.
    pub fn czone_bits(&self) -> u32 {
        self.czone_bits
    }

    /// Removes the partition at `pos` from all four parallel arrays.
    fn evict(&mut self, pos: usize) {
        self.tags.remove(pos);
        self.last.remove(pos);
        self.strides.remove(pos);
        self.states.remove(pos);
    }

    /// Presents a missed word address. Returns `Some(stride_words)` when
    /// three consecutive misses in one partition have a verified constant
    /// stride — the caller should allocate a stream — and the entry is
    /// freed. Otherwise the FSM for the partition advances.
    pub fn lookup(&mut self, word: WordAddr) -> Option<i64> {
        self.stats.lookups += 1;
        let tag = word.czone_tag(self.czone_bits);
        let pos = scan::find_first(&self.tags, tag);
        if pos != usize::MAX {
            let delta = word.delta(WordAddr::from_index(self.last[pos]));
            if delta == 0 {
                // Two misses to the same word (e.g. re-miss after
                // eviction): no stride information, keep waiting.
                return None;
            }
            // Every arm below advances (or restarts) the partition's FSM.
            self.counters
                .add(streamsim_obs::Counter::CzoneTransitions, 1);
            match self.states[pos] {
                FsmState::Meta1 => {
                    self.strides[pos] = delta;
                    self.last[pos] = word.index();
                    self.states[pos] = FsmState::Meta2;
                    None
                }
                FsmState::Meta2 => {
                    if delta == self.strides[pos] {
                        // Stride verified: free the entry and allocate.
                        self.evict(pos);
                        self.stats.allocations += 1;
                        Some(delta)
                    } else {
                        self.strides[pos] = delta;
                        self.last[pos] = word.index();
                        None
                    }
                }
            }
        } else {
            if self.tags.len() == self.capacity {
                self.evict(0);
                self.stats.evictions += 1;
            }
            self.tags.push(tag);
            self.last.push(word.index());
            self.strides.push(0);
            self.states.push(FsmState::Meta1);
            self.stats.insertions += 1;
            self.counters
                .add(streamsim_obs::Counter::CzoneTransitions, 1);
            None
        }
    }

    /// Filter counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Number of partitions currently tracked.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether no partitions are tracked.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WordAddr {
        WordAddr::from_index(i)
    }

    #[test]
    fn three_strided_references_allocate() {
        let mut f = CzoneFilter::new(4, 16);
        assert_eq!(f.lookup(w(1000)), None); // META1
        assert_eq!(f.lookup(w(1040)), None); // META2, stride 40
        assert_eq!(f.lookup(w(1080)), Some(40)); // verified
        assert_eq!(f.stats().allocations, 1);
        assert!(f.is_empty(), "entry freed after allocation");
    }

    #[test]
    fn negative_strides_are_detected() {
        let mut f = CzoneFilter::new(4, 16);
        f.lookup(w(5000));
        f.lookup(w(4900));
        assert_eq!(f.lookup(w(4800)), Some(-100));
    }

    #[test]
    fn changing_stride_restarts_verification() {
        let mut f = CzoneFilter::new(4, 16);
        f.lookup(w(100));
        f.lookup(w(140)); // candidate 40
        assert_eq!(f.lookup(w(200)), None); // delta 60 != 40: re-guess
        assert_eq!(f.lookup(w(260)), Some(60)); // 60 verified
    }

    #[test]
    fn references_in_different_partitions_do_not_interfere() {
        let mut f = CzoneFilter::new(4, 8);
        // Partition A: words 0x100, 0x110, 0x120 (czone 8 bits: tag 1).
        // Partition B: words 0x900, 0x9f0 (tag 9).
        f.lookup(w(0x100));
        f.lookup(w(0x900));
        f.lookup(w(0x110));
        f.lookup(w(0x9f0));
        assert_eq!(f.lookup(w(0x120)), Some(0x10));
    }

    #[test]
    fn czone_too_small_misses_large_strides() {
        // Stride 0x100 words with an 8-bit czone: each reference lands in
        // a different partition, so no stride is ever verified.
        let mut f = CzoneFilter::new(8, 8);
        for i in 0..6u64 {
            assert_eq!(f.lookup(w(0x1000 + i * 0x100)), None);
        }
        assert_eq!(f.stats().allocations, 0);
    }

    #[test]
    fn czone_large_enough_catches_the_same_strides() {
        let mut f = CzoneFilter::new(8, 12);
        assert_eq!(f.lookup(w(0x1000)), None);
        assert_eq!(f.lookup(w(0x1100)), None);
        assert_eq!(f.lookup(w(0x1200)), Some(0x100));
    }

    #[test]
    fn interleaved_streams_in_one_partition_defeat_detection() {
        // Two interleaved strided streams sharing a partition (czone too
        // large): deltas alternate and never repeat, as §7 warns.
        let mut f = CzoneFilter::new(8, 30);
        let mut allocations = 0;
        for i in 0..8u64 {
            if f.lookup(w(1_000 + i * 50)).is_some() {
                allocations += 1;
            }
            if f.lookup(w(500_000 + i * 70)).is_some() {
                allocations += 1;
            }
        }
        assert_eq!(allocations, 0);
    }

    #[test]
    fn same_word_re_miss_is_ignored() {
        let mut f = CzoneFilter::new(4, 16);
        f.lookup(w(100));
        assert_eq!(f.lookup(w(100)), None);
        f.lookup(w(140));
        assert_eq!(f.lookup(w(140)), None, "duplicate in META2 ignored");
        assert_eq!(f.lookup(w(180)), Some(40), "stride still verifiable");
    }

    #[test]
    fn capacity_evicts_oldest_partition() {
        let mut f = CzoneFilter::new(1, 8);
        f.lookup(w(0x100)); // partition 1
        f.lookup(w(0x900)); // partition 9 evicts partition 1
        assert_eq!(f.stats().evictions, 1);
        // Partition 1 must restart from META1.
        f.lookup(w(0x110));
        f.lookup(w(0x120));
        assert_eq!(f.lookup(w(0x130)), Some(0x10));
    }

    #[test]
    fn eviction_keeps_the_parallel_arrays_in_step() {
        // Fill to capacity, verify a middle partition's stride, then make
        // sure the surviving partitions' FSM state moved with their tags.
        let mut f = CzoneFilter::new(3, 8);
        f.lookup(w(0x100)); // partition 1, META1
        f.lookup(w(0x900)); // partition 9, META1
        f.lookup(w(0x110)); // partition 1, META2 stride 0x10
        f.lookup(w(0x910)); // partition 9, META2 stride 0x10
        assert_eq!(f.lookup(w(0x120)), Some(0x10)); // frees partition 1
        assert_eq!(f.len(), 1);
        // Partition 9 must still be in META2 with stride 0x10.
        assert_eq!(f.lookup(w(0x920)), Some(0x10));
    }

    #[test]
    #[should_panic(expected = "czone size")]
    fn bad_czone_bits_panics() {
        let _ = CzoneFilter::new(4, 0);
    }

    #[test]
    fn accessors() {
        let mut f = CzoneFilter::new(4, 20);
        assert_eq!(f.czone_bits(), 20);
        assert!(f.is_empty());
        f.lookup(w(0));
        assert_eq!(f.len(), 1);
    }
}
