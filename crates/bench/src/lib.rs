//! Shared plumbing for the experiment bench targets.
//!
//! Each `[[bench]]` target with `harness = false` is a small `main` that
//! runs one experiment driver from `streamsim-core` at paper scale and
//! prints the regenerated table or figure with the paper's reported
//! values alongside. `cargo bench --workspace` therefore reproduces the
//! entire evaluation section.
//!
//! Set `STREAMSIM_SCALE=quick` to run the reduced inputs (useful when
//! smoke-testing the harness itself), `STREAMSIM_SAMPLING=paper` to
//! enable the paper's 10 000-on / 90 000-off time sampling, and
//! `STREAMSIM_PRESCREEN=1` to let the analytical model prune sweeps to
//! the predicted Pareto frontier before simulating.
//!
//! The `micro` target uses the in-tree [`timing`] harness instead of an
//! experiment driver; see that module for its output format and knobs.

pub mod timing;

use std::time::Instant;

use streamsim_core::experiments::{ExperimentOptions, Scale};

/// Reads experiment options from the environment (see crate docs).
pub fn options_from_env() -> ExperimentOptions {
    let scale = match std::env::var("STREAMSIM_SCALE").as_deref() {
        Ok("quick") => Scale::Quick,
        _ => Scale::Paper,
    };
    let sampling = match std::env::var("STREAMSIM_SAMPLING").as_deref() {
        Ok("paper") => Some((10_000, 90_000)),
        _ => None,
    };
    ExperimentOptions {
        scale,
        sampling,
        prescreen: std::env::var("STREAMSIM_PRESCREEN").as_deref() == Ok("1"),
        store: Default::default(),
        executor: Default::default(),
    }
}

/// Runs an experiment closure, printing its name, result and wall time.
pub fn run_experiment<R: std::fmt::Display>(name: &str, f: impl FnOnce(ExperimentOptions) -> R) {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let options = options_from_env();
    let scale = options.scale;
    let start = Instant::now();
    let result = f(options);
    let elapsed = start.elapsed();
    println!("=== {name} (scale: {scale:?}) ===");
    println!("{result}");
    println!("[{name} completed in {:.2?}]", elapsed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_paper_scale() {
        // Unless the env vars are set, which the test environment does
        // not do.
        if std::env::var("STREAMSIM_SCALE").is_err() {
            assert_eq!(options_from_env().scale, Scale::Paper);
        }
    }
}
