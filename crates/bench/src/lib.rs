//! Shared plumbing for the experiment bench targets.
//!
//! Each `[[bench]]` target with `harness = false` is a small `main` that
//! runs one experiment driver from `streamsim-core` at paper scale and
//! prints the regenerated table or figure with the paper's reported
//! values alongside. `cargo bench --workspace` therefore reproduces the
//! entire evaluation section.
//!
//! Set `STREAMSIM_SCALE=quick` to run the reduced inputs (useful when
//! smoke-testing the harness itself), `STREAMSIM_SAMPLING=paper` to
//! enable the paper's 10 000-on / 90 000-off time sampling, and
//! `STREAMSIM_PRESCREEN=1` to let the analytical model prune sweeps to
//! the predicted Pareto frontier before simulating.
//!
//! The `micro` target uses the in-tree [`timing`] harness instead of an
//! experiment driver; see that module for its output format and knobs.

pub mod timing;

use std::time::Instant;

use streamsim_core::experiments::{ExperimentOptions, Scale};

/// Reads experiment options from the environment (see crate docs).
pub fn options_from_env() -> ExperimentOptions {
    let scale = match std::env::var("STREAMSIM_SCALE").as_deref() {
        Ok("quick") => Scale::Quick,
        _ => Scale::Paper,
    };
    let sampling = match std::env::var("STREAMSIM_SAMPLING").as_deref() {
        Ok("paper") => Some((10_000, 90_000)),
        _ => None,
    };
    ExperimentOptions {
        scale,
        sampling,
        prescreen: std::env::var("STREAMSIM_PRESCREEN").as_deref() == Ok("1"),
        store: Default::default(),
        executor: Default::default(),
    }
}

/// Builds the shared `streamsim-bench-v2` summary row every tracked
/// `BENCH_*.json` artifact leads with (see `streamsim_obs::BENCH_SCHEMA`
/// and the ledger docs). The row is flat JSONL: header keys first
/// (`run_config` is the [`streamsim_obs::fingerprint64`] of
/// `config_text`, `run_steps` the wall-clock-free work count), then the
/// benchmark's numeric metrics in the given order.
pub fn bench_summary_line(
    benchmark: &str,
    scale: &str,
    samples: u32,
    config_text: &str,
    run_steps: u64,
    work_unit: &str,
    metrics: &[(&str, f64)],
) -> String {
    use streamsim_obs::{fingerprint64, json_escape, BENCH_SCHEMA};
    let mut line = format!(
        "{{\"schema\":{},\"table\":\"summary\",\"benchmark\":{},\"scale\":{},\
         \"samples\":{samples},\"run_config\":\"{:016x}\",\"run_steps\":{run_steps},\
         \"work_unit\":{}",
        json_escape(BENCH_SCHEMA),
        json_escape(benchmark),
        json_escape(scale),
        fingerprint64(config_text),
        json_escape(work_unit),
    );
    for (key, value) in metrics {
        line.push_str(&format!(",{}:{value}", streamsim_obs::json_escape(key)));
    }
    line.push('}');
    line
}

/// A flat `streamsim-bench-v2` detail row (`table` names the row kind,
/// e.g. `workload` / `family` / `cell`); `fields` are pre-rendered
/// `"key":value` fragments.
pub fn bench_detail_line(benchmark: &str, table: &str, fields: &str) -> String {
    use streamsim_obs::{json_escape, BENCH_SCHEMA};
    format!(
        "{{\"schema\":{},\"table\":{},\"benchmark\":{},{fields}}}",
        json_escape(BENCH_SCHEMA),
        json_escape(table),
        json_escape(benchmark),
    )
}

/// Runs an experiment closure, printing its name, result and wall time.
pub fn run_experiment<R: std::fmt::Display>(name: &str, f: impl FnOnce(ExperimentOptions) -> R) {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let options = options_from_env();
    let scale = options.scale;
    let start = Instant::now();
    let result = f(options);
    let elapsed = start.elapsed();
    println!("=== {name} (scale: {scale:?}) ===");
    println!("{result}");
    println!("[{name} completed in {:.2?}]", elapsed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_is_flat_and_schema_tagged() {
        let line = bench_summary_line(
            "recording",
            "quick",
            9,
            "cfg",
            3_514_559,
            "refs",
            &[("speedup", 1.488), ("reference_ns", 60269845.0)],
        );
        assert!(line.starts_with("{\"schema\":\"streamsim-bench-v2\",\"table\":\"summary\""));
        assert!(line.contains("\"benchmark\":\"recording\""), "{line}");
        assert!(line.contains("\"run_steps\":3514559"), "{line}");
        assert!(line.contains("\"speedup\":1.488"), "{line}");
        assert!(!line.contains('\n'), "one flat line: {line}");
        let detail = bench_detail_line("recording", "workload", "\"name\":\"embar\",\"refs\":7");
        assert!(detail.contains("\"table\":\"workload\""), "{detail}");
        assert!(detail.ends_with("\"refs\":7}"), "{detail}");
    }

    #[test]
    fn default_options_are_paper_scale() {
        // Unless the env vars are set, which the test environment does
        // not do.
        if std::env::var("STREAMSIM_SCALE").is_err() {
            assert_eq!(options_from_env().scale, Scale::Paper);
        }
    }
}
