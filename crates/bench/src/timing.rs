//! A self-contained micro-benchmark timer (the criterion replacement).
//!
//! The workspace builds with zero external dependencies, so the
//! statistical machinery of criterion is replaced by the part the
//! benches actually used: run a closure a few times to warm caches and
//! the branch predictor, time a fixed number of samples with the
//! monotonic wall clock, and report the median (robust against a stray
//! descheduling) plus min/mean for context.
//!
//! Output is one human-readable line and one JSON line per benchmark,
//! so results can be grepped (`^{`) into a series and diffed across
//! commits — the regression workflow ROADMAP's perf items rely on.
//!
//! Environment knobs: `STREAMSIM_BENCH_SAMPLES` (default 11) and
//! `STREAMSIM_BENCH_WARMUP` (default 3) apply to every group.
//!
//! # Example
//!
//! ```
//! let mut group = streamsim_bench::timing::group("demo");
//! group.throughput(1_000);
//! group.bench_function("sum", || (0..1_000u64).sum::<u64>());
//! group.finish();
//! ```

use std::time::Instant;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: u32 = 11;
/// Default number of untimed warm-up iterations per benchmark.
pub const DEFAULT_WARMUP: u32 = 3;

/// A named group of related benchmarks sharing a throughput setting,
/// mirroring criterion's `benchmark_group` so the bench sources read
/// the same.
pub struct Group {
    name: String,
    samples: u32,
    warmup: u32,
    /// Elements processed per iteration, for derived rates.
    elements: Option<u64>,
}

/// Starts a benchmark group. Results print as they complete.
pub fn group(name: &str) -> Group {
    let env_u32 = |key: &str, default: u32| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default)
    };
    Group {
        name: name.to_string(),
        samples: env_u32("STREAMSIM_BENCH_SAMPLES", DEFAULT_SAMPLES),
        warmup: env_u32("STREAMSIM_BENCH_WARMUP", DEFAULT_WARMUP),
        elements: None,
    }
}

impl Group {
    /// Declares how many logical elements one iteration processes, so
    /// results also report a rate (elements per second).
    pub fn throughput(&mut self, elements: u64) {
        self.elements = Some(elements);
    }

    /// Overrides the sample count for the remaining benchmarks in this
    /// group (criterion's `sample_size`).
    pub fn sample_size(&mut self, samples: u32) {
        self.samples = samples.max(1);
    }

    /// Times `f`: `warmup` untimed runs, then `samples` timed runs;
    /// reports the median. The closure's result is passed through
    /// [`std::hint::black_box`] so the work cannot be optimised away.
    pub fn bench_function<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut ns: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_nanos()
            })
            .collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let min = ns[0];
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let full = format!("{}/{}", self.name, name);

        let rate = self.elements.map(|e| {
            if median == 0 {
                f64::INFINITY
            } else {
                e as f64 * 1e9 / median as f64
            }
        });
        match (self.elements, rate) {
            (Some(e), Some(r)) => println!(
                "bench {full:<40} median {:>12}  min {:>12}  ({e} elems, {:.1} Melem/s)",
                fmt_ns(median),
                fmt_ns(min),
                r / 1e6
            ),
            _ => println!(
                "bench {full:<40} median {:>12}  min {:>12}",
                fmt_ns(median),
                fmt_ns(min)
            ),
        }
        let mut json = format!(
            "{{\"benchmark\":\"{full}\",\"median_ns\":{median},\"min_ns\":{min},\
             \"mean_ns\":{mean},\"samples\":{}",
            ns.len()
        );
        if let (Some(e), Some(r)) = (self.elements, rate) {
            json.push_str(&format!(",\"elements\":{e},\"elems_per_sec\":{r:.1}"));
        }
        json.push('}');
        println!("{json}");
    }

    /// Ends the group (kept for criterion source compatibility; results
    /// are printed eagerly so there is nothing left to flush).
    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples_is_reported() {
        // Smoke test: the harness runs the closure warmup + samples
        // times and does not panic.
        let mut calls = 0u32;
        let mut g = group("timing-test");
        g.sample_size(5);
        g.bench_function("counter", || {
            calls += 1;
            calls
        });
        g.finish();
        assert_eq!(calls, 5 + DEFAULT_WARMUP);
    }

    #[test]
    fn formats_cover_magnitudes() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(25_000), "25.00 µs");
        assert_eq!(fmt_ns(25_000_000), "25.00 ms");
        assert_eq!(fmt_ns(25_000_000_000), "25.00 s");
    }
}
