//! Regenerates the paper's table3.
fn main() {
    streamsim_bench::run_experiment("table3", |opts| {
        streamsim_core::experiments::table3::run(&opts)
    });
}
