//! Timing: the record-once/replay-many engine against the per-cell path.
//!
//! All three sides compute the quick-scale Figure 3 sweep (15
//! benchmarks × 10 stream counts), on a subset of the benchmarks so the
//! per-cell side finishes in reasonable time:
//!
//! * **per_cell** — the naive shape: every (benchmark, stream-count)
//!   cell records its own miss trace and runs its own pass, so each L1
//!   is simulated ten times;
//! * **shared_trace_per_config** — the pre-engine driver shape: record
//!   each benchmark's trace once, then run one full pass over it per
//!   stream count;
//! * **record_once_replay_many** — the current engine: traces come from
//!   a shared [`TraceStore`] and all 10 configurations ride one replay
//!   pass per trace.
//!
//! The timing harness prints the median for each side in its JSON line;
//! the engine must beat the per-cell baseline by roughly the number of
//! configurations, since recording the L1 dominates the sweep.
//!
//! [`TraceStore`]: streamsim_core::TraceStore

use streamsim_bench::timing;
use streamsim_core::experiments::fig3::STREAM_COUNTS;
use streamsim_core::experiments::{workload_set, ExperimentOptions, Scale};
use streamsim_core::{record_miss_trace, replay_streams, run_streams, TraceStore};
use streamsim_streams::StreamConfig;
use streamsim_workloads::Workload;

/// A stream-heavy subset of the Table 1 benchmarks: enough to exercise
/// both the recorder and the replay engine without making the per-cell
/// baseline take minutes.
const BENCHMARKS: [&str; 5] = ["embar", "mgrid", "fftpde", "appsp", "adm"];

fn workloads() -> Vec<Box<dyn Workload>> {
    workload_set(Scale::Quick)
        .into_iter()
        .filter(|w| BENCHMARKS.contains(&w.name()))
        .collect()
}

fn main() {
    let options = ExperimentOptions::quick();
    let record = options.record_options();
    let configs: Vec<StreamConfig> = STREAM_COUNTS
        .iter()
        .map(|&n| StreamConfig::paper_basic(n).expect("valid"))
        .collect();

    let mut group = timing::group("fig3_sweep");
    group.sample_size(5);

    group.bench_function("per_cell", || {
        let mut total_hits = 0u64;
        for w in workloads() {
            for &config in &configs {
                let trace = record_miss_trace(w.as_ref(), &record).expect("valid L1");
                total_hits += run_streams(&trace, config).hits;
            }
        }
        total_hits
    });

    group.bench_function("shared_trace_per_config", || {
        let mut total_hits = 0u64;
        for w in workloads() {
            let trace = record_miss_trace(w.as_ref(), &record).expect("valid L1");
            for &config in &configs {
                total_hits += run_streams(&trace, config).hits;
            }
        }
        total_hits
    });

    group.bench_function("record_once_replay_many", || {
        let store = TraceStore::default();
        let mut total_hits = 0u64;
        for w in workloads() {
            let trace = store.record(w.as_ref(), &record).expect("valid L1");
            total_hits += replay_streams(&trace, &configs)
                .iter()
                .map(|s| s.hits)
                .sum::<u64>();
        }
        total_hits
    });

    group.finish();
}
