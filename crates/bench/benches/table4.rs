//! Regenerates the paper's Table 4 (streams vs secondary-cache scaling).
fn main() {
    streamsim_bench::run_experiment("table4", |opts| {
        streamsim_core::experiments::table4::run(&opts)
    });
}
