//! Timing: the recording hot loop (chunked generation + SoA L1) against
//! the pre-PR implementation.
//!
//! Recording is the part of every experiment that touches each
//! reference — everything downstream works on the ~100× smaller miss
//! trace — so it is the loop worth keeping hardware-fast. This bench
//! pits the current [`record_miss_trace`] (chunk-batched emission into
//! the structure-of-arrays `SetAssocCache`) against a faithful
//! reconstruction of the pre-PR path: per-reference closure dispatch
//! into [`ReferenceCache`], the verbatim array-of-structs model kept in
//! `streamsim_cache::reference`. Both paths are run over the quick
//! scorecard workload set and must produce identical miss events, which
//! the bench asserts before timing anything.
//!
//! Output: one human + JSON line per (workload, path) pair in the usual
//! harness shape, plus a summary. With `STREAMSIM_BENCH_WRITE=1` the
//! summary is written to `BENCH_recording.json` at the repo root — the
//! tracked artifact EXPERIMENTS.md describes. With
//! `STREAMSIM_BENCH_ENFORCE=<min>` the run exits non-zero unless the
//! aggregate speedup reaches `<min>` (the CI perf smoke uses this).
//!
//! Knobs: `STREAMSIM_BENCH_SAMPLES` (default 5 here) and
//! `STREAMSIM_BENCH_WARMUP` (default 1 here) — recording a full
//! workload per sample is expensive, so the defaults are smaller than
//! the micro-bench harness's.

use std::time::Instant;

use streamsim_cache::reference::ReferenceCache;
use streamsim_cache::AccessOutcome;
use streamsim_core::experiments::{workload_set, ExperimentOptions, Scale};
use streamsim_core::{record_miss_trace, MissEvent, RecordOptions};
use streamsim_trace::{Access, AccessKind};
use streamsim_workloads::Workload;

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The pre-PR recording loop: closure-based generation into the
/// array-of-structs reference cache, one virtual call per reference.
fn reference_record(w: &dyn Workload, record: &RecordOptions) -> Vec<MissEvent> {
    let mut icache = ReferenceCache::new(record.icache).expect("valid L1");
    let mut dcache = ReferenceCache::new(record.dcache).expect("valid L1");
    let block = record.dcache.block();
    let mut events = Vec::new();
    w.generate(&mut |access: Access| {
        let outcome = match access.kind {
            AccessKind::IFetch => icache.access(access.addr, access.kind),
            AccessKind::Load | AccessKind::Store => dcache.access(access.addr, access.kind),
        };
        match outcome {
            AccessOutcome::Hit | AccessOutcome::Bypassed => {}
            AccessOutcome::Miss { writeback } => {
                events.push(MissEvent::Fetch {
                    addr: access.addr,
                    kind: access.kind,
                });
                if let Some(victim) = writeback {
                    events.push(MissEvent::Writeback {
                        base: victim.base_addr(block),
                    });
                }
            }
        }
    });
    events
}

/// Median wall time of `f` over the configured samples, in nanoseconds.
fn median_ns<R>(samples: u32, warmup: u32, mut f: impl FnMut() -> R) -> u128 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut ns: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn report_line(name: &str, path: &str, ns: u128, refs: u64) {
    let refs_per_sec = refs as f64 * 1e9 / ns as f64;
    println!(
        "bench recording/{name}/{path:<9} median {:>12.2} ms  ({refs} refs, {:.1} Mref/s)",
        ns as f64 / 1e6,
        refs_per_sec / 1e6
    );
    println!(
        "{{\"benchmark\":\"recording/{name}/{path}\",\"median_ns\":{ns},\
         \"refs\":{refs},\"refs_per_sec\":{refs_per_sec:.1}}}"
    );
}

fn main() {
    let samples = env_u32("STREAMSIM_BENCH_SAMPLES", 5);
    let warmup = env_u32("STREAMSIM_BENCH_WARMUP", 1);
    let record = ExperimentOptions::quick().record_options();
    let workloads = workload_set(Scale::Quick);

    // Diagnostic: split generation cost from simulation cost so hot-loop
    // work targets the right side.
    if std::env::var("STREAMSIM_BENCH_BREAKDOWN").as_deref() == Ok("1") {
        for w in &workloads {
            let gen_ns = median_ns(samples, warmup, || {
                let mut refs = 0u64;
                let mut batch = Vec::new();
                w.generate_chunks(&mut batch, &mut |chunk: &[Access]| {
                    refs += chunk.len() as u64;
                });
                refs
            });
            let mut trace = Vec::new();
            let mut batch = Vec::new();
            w.generate_chunks(&mut batch, &mut |chunk: &[Access]| {
                trace.extend_from_slice(chunk);
            });
            let sim_ns = median_ns(samples, warmup, || {
                let mut l1 =
                    streamsim_cache::SplitL1::new(record.icache, record.dcache).expect("valid L1");
                let mut misses = 0u64;
                for &a in &trace {
                    if l1.access(a).is_miss() {
                        misses += 1;
                    }
                }
                misses
            });
            let total_ns = median_ns(samples, warmup, || {
                record_miss_trace(w.as_ref(), &record).expect("valid L1")
            });
            let refs = trace.len() as u64;
            let trace_rec = record_miss_trace(w.as_ref(), &record).expect("valid L1");
            let misses = trace_rec.fetches();
            println!(
                "breakdown {:<8} gen {:>8.2} ms  sim {:>8.2} ms  record {:>8.2} ms  \
                 {refs:>8} refs  {misses:>7} misses ({:.1}%)  sim {:>5.1} ns/ref",
                w.name(),
                gen_ns as f64 / 1e6,
                sim_ns as f64 / 1e6,
                total_ns as f64 / 1e6,
                100.0 * misses as f64 / refs as f64,
                sim_ns as f64 / refs as f64
            );
        }
        // Sim + events push (the full record inner loop, minus generation).
        {
            let w = &workloads[0];
            let mut trace = Vec::new();
            let mut batch = Vec::new();
            w.generate_chunks(&mut batch, &mut |chunk: &[Access]| {
                trace.extend_from_slice(chunk);
            });
            let block = record.dcache.block();
            let sim_ev_ns = median_ns(samples, warmup, || {
                let mut l1 =
                    streamsim_cache::SplitL1::new(record.icache, record.dcache).expect("valid L1");
                let mut events = Vec::new();
                for &a in &trace {
                    match l1.access(a) {
                        AccessOutcome::Hit | AccessOutcome::Bypassed => {}
                        AccessOutcome::Miss { writeback } => {
                            events.push(MissEvent::Fetch {
                                addr: a.addr,
                                kind: a.kind,
                            });
                            if let Some(victim) = writeback {
                                events.push(MissEvent::Writeback {
                                    base: victim.base_addr(block),
                                });
                            }
                        }
                    }
                }
                events
            });
            println!(
                "breakdown sim+events ({}): {:.2} ms, {:.1} ns/ref",
                w.name(),
                sim_ev_ns as f64 / 1e6,
                sim_ev_ns as f64 / trace.len() as f64
            );
        }
        // Pure miss cost: stream new blocks so every access misses.
        let miss_loop = {
            let mut l1 =
                streamsim_cache::SplitL1::new(record.icache, record.dcache).expect("valid L1");
            median_ns(samples, warmup, || {
                let mut misses = 0u64;
                for i in 0..1_000_000u64 {
                    let a = Access::load(streamsim_trace::Addr::new(i * 32));
                    if l1.access(a).is_miss() {
                        misses += 1;
                    }
                }
                misses
            })
        };
        println!(
            "breakdown pure-miss loop: {:.2} ns/access",
            miss_loop as f64 / 1e6
        );
        // Pure fast-path cost: one hot block, always an MRU hit.
        let hot = {
            let mut l1 =
                streamsim_cache::SplitL1::new(record.icache, record.dcache).expect("valid L1");
            let a = Access::load(streamsim_trace::Addr::new(0x1000_0000));
            l1.access(a);
            median_ns(samples, warmup, || {
                let mut hits = 0u64;
                for _ in 0..1_000_000u32 {
                    if l1.access(a).is_hit() {
                        hits += 1;
                    }
                }
                hits
            })
        };
        println!("breakdown pure-hit loop: {:.2} ns/access", hot as f64 / 1e6);
        return;
    }

    let mut per_workload = Vec::new();
    let (mut total_refs, mut total_ref_ns, mut total_cur_ns) = (0u64, 0u128, 0u128);
    for w in &workloads {
        let name = w.name().to_owned();

        // Reference-count the stream and pin byte-identity between the
        // two paths before timing either.
        let mut refs = 0u64;
        let mut batch = Vec::new();
        w.generate_chunks(&mut batch, &mut |chunk: &[Access]| {
            refs += chunk.len() as u64
        });
        let current = record_miss_trace(w.as_ref(), &record).expect("valid L1");
        let reference = reference_record(w.as_ref(), &record);
        assert_eq!(
            current.events(),
            &reference[..],
            "{name}: SoA+chunked recording diverges from the reference path"
        );

        let cur_ns = median_ns(samples, warmup, || {
            record_miss_trace(w.as_ref(), &record).expect("valid L1")
        });
        let ref_ns = median_ns(samples, warmup, || reference_record(w.as_ref(), &record));
        report_line(&name, "reference", ref_ns, refs);
        report_line(&name, "current", cur_ns, refs);

        total_refs += refs;
        total_ref_ns += ref_ns;
        total_cur_ns += cur_ns;
        per_workload.push((name, refs, ref_ns, cur_ns));
    }

    let speedup = total_ref_ns as f64 / total_cur_ns as f64;
    let cur_rate = total_refs as f64 * 1e9 / total_cur_ns as f64;
    let ref_rate = total_refs as f64 * 1e9 / total_ref_ns as f64;
    println!(
        "bench recording/total: {total_refs} refs — reference {:.1} Mref/s, \
         current {:.1} Mref/s, speedup {speedup:.2}x",
        ref_rate / 1e6,
        cur_rate / 1e6
    );

    // The shared streamsim-bench-v2 artifact: one flat summary row the
    // perf ledger ingests, then one detail row per workload.
    let config_text = format!("recording quick {record:?}");
    let header = streamsim_bench::bench_summary_line(
        "recording",
        "quick",
        samples,
        &config_text,
        total_refs,
        "refs",
        &[
            ("reference_ns", total_ref_ns as f64),
            ("current_ns", total_cur_ns as f64),
            ("refs_per_sec", (cur_rate * 10.0).round() / 10.0),
            (
                "ns_per_ref",
                (total_cur_ns as f64 / total_refs as f64 * 1e3).round() / 1e3,
            ),
            ("speedup", (speedup * 1e3).round() / 1e3),
        ],
    );
    let rows: Vec<String> = per_workload
        .iter()
        .map(|(name, refs, ref_ns, cur_ns)| {
            streamsim_bench::bench_detail_line(
                "recording",
                "workload",
                &format!(
                    "\"name\":\"{name}\",\"refs\":{refs},\"reference_ns\":{ref_ns},\
                     \"current_ns\":{cur_ns},\"speedup\":{:.3}",
                    *ref_ns as f64 / *cur_ns as f64
                ),
            )
        })
        .collect();
    let summary = format!("{header}\n{}\n", rows.join("\n"));

    if std::env::var("STREAMSIM_BENCH_WRITE").as_deref() == Ok("1") {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recording.json");
        std::fs::write(path, &summary).expect("write BENCH_recording.json");
        println!("recording summary written to {path}");
    }

    if let Ok(min) = std::env::var("STREAMSIM_BENCH_ENFORCE") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("STREAMSIM_BENCH_ENFORCE is a float");
        if speedup < min {
            eprintln!("recording speedup {speedup:.3}x below enforced minimum {min}x");
            std::process::exit(1);
        }
        println!("recording speedup {speedup:.3}x meets enforced minimum {min}x");
    }
}
