//! Regenerates the estimated-memory-CPI extension.
fn main() {
    streamsim_bench::run_experiment("cpi", |opts| streamsim_core::experiments::cpi::run(&opts));
}
