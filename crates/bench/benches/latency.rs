//! Regenerates the §8 timing extension (covered hit rate vs latency).
fn main() {
    streamsim_bench::run_experiment("latency", |opts| {
        streamsim_core::experiments::latency::run(&opts)
    });
}
