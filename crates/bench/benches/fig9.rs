//! Regenerates the paper's fig9.
fn main() {
    streamsim_bench::run_experiment("fig9", |opts| streamsim_core::experiments::fig9::run(&opts));
}
