//! Regenerates the prefetcher-lineage comparison (OBL to full system).
fn main() {
    streamsim_bench::run_experiment("baselines", |opts| {
        streamsim_core::experiments::baselines::run(&opts)
    });
}
