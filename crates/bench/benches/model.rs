//! Timing: the analytically pre-screened design-space sweep against the
//! full simulation of the same grid.
//!
//! The sweep artifact scores every cell of the stream-buffer design
//! space — [`sweep::cells`]` ≈ 1000` configurations — on the (hit rate,
//! extra bandwidth) plane. The fast path scores all cells in closed
//! form from each workload's memoized locality profile, keeps only the
//! predicted Pareto frontier plus the validated tolerance band, and
//! simulates just those survivors. Each sample prefills a fresh shared
//! trace store untimed — exactly how the report driver amortizes
//! recording across artifacts — then times both paths on the trace-hot
//! store. The fast path is timed first, so the cold profile pass it
//! depends on is inside its measurement. The contract is asserted
//! before timing anything:
//!
//! * the pruned sweep reproduces the full sweep's Pareto frontier
//!   exactly, with byte-identical measurements on every frontier cell;
//! * the pre-screen simulates at most a quarter of the grid.
//!
//! Output: one human + JSON line per path in the usual harness shape,
//! plus a summary. With `STREAMSIM_BENCH_WRITE=1` the summary is
//! written to `BENCH_model.json` at the repo root — the tracked
//! artifact EXPERIMENTS.md describes. With
//! `STREAMSIM_BENCH_ENFORCE=<min>` the run exits non-zero unless the
//! full/pre-screened wall-clock ratio reaches `<min>` (the CI model
//! smoke uses this).
//!
//! Knobs: `STREAMSIM_BENCH_SAMPLES` (default 1 here — each sample runs
//! the full thousand-cell sweep) and `STREAMSIM_BENCH_WARMUP`
//! (default 0).

use std::time::Instant;

use streamsim_core::experiments::sweep::{self, Sweep};
use streamsim_core::experiments::{miss_traces, ExperimentOptions};

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// One sample: a fresh store shared by both paths is prefilled with
/// recorded miss traces untimed (the report driver amortizes recording
/// across artifacts the same way), then each path runs on the
/// trace-hot store. The fast path goes first so the cold profile pass
/// it depends on lands inside its own measurement; the full path
/// replays every cell of the grid.
fn sample() -> ((Sweep, u128), (Sweep, u128)) {
    let base = ExperimentOptions::quick();
    miss_traces(&base);
    let timed = |prescreen: bool| {
        let options = ExperimentOptions {
            prescreen,
            ..base.clone()
        };
        let start = Instant::now();
        let sweep = std::hint::black_box(sweep::run(&options));
        (sweep, start.elapsed().as_nanos())
    };
    let pre = timed(true);
    let full = timed(false);
    (full, pre)
}

fn report_line(path: &str, ns: u128, cells: usize) {
    println!(
        "bench model/sweep/{path:<9} median {:>10.2} ms  ({cells} cells simulated)",
        ns as f64 / 1e6
    );
    println!(
        "{{\"benchmark\":\"model/sweep/{path}\",\"median_ns\":{ns},\"cells_simulated\":{cells}}}"
    );
}

fn main() {
    let samples = env_u32("STREAMSIM_BENCH_SAMPLES", 1);
    let warmup = env_u32("STREAMSIM_BENCH_WARMUP", 0);

    // Contract first, clock second: the run below doubles as warmup.
    let ((full, mut full_ns), (pruned, mut pre_ns)) = sample();
    assert_eq!(full.cells_simulated, full.cells_total);
    assert!(pruned.prescreened);
    assert!(
        pruned.cells_simulated * 4 <= pruned.cells_total,
        "pre-screen must prune at least three quarters of the grid \
         ({} of {} simulated)",
        pruned.cells_simulated,
        pruned.cells_total
    );
    assert_eq!(
        full.frontier_labels(),
        pruned.frontier_labels(),
        "pruned sweep must reproduce the full sweep's Pareto frontier"
    );
    for label in full.frontier_labels() {
        let f = full.row(label).expect("frontier row in full sweep");
        let p = pruned.row(label).expect("frontier row in pruned sweep");
        assert_eq!(
            (f.hit, f.eb),
            (p.hit, p.eb),
            "{label}: frontier measurements must be byte-identical"
        );
    }

    for _ in 1..warmup {
        sample();
    }
    let mut full_samples = vec![full_ns];
    let mut pre_samples = vec![pre_ns];
    for _ in 1..samples {
        let ((_, f), (_, p)) = sample();
        full_samples.push(f);
        pre_samples.push(p);
    }
    full_samples.sort_unstable();
    pre_samples.sort_unstable();
    full_ns = full_samples[full_samples.len() / 2];
    pre_ns = pre_samples[pre_samples.len() / 2];

    report_line("full", full_ns, full.cells_simulated);
    report_line("prescreen", pre_ns, pruned.cells_simulated);

    let speedup = full_ns as f64 / pre_ns as f64;
    let fraction = pruned.cells_simulated as f64 / pruned.cells_total as f64;
    let frontier_cells = full.frontier_labels().len();
    println!(
        "bench model/sweep: {} of {} cells simulated ({:.1}%), frontier {} cells \
         reproduced exactly, speedup {speedup:.2}x",
        pruned.cells_simulated,
        pruned.cells_total,
        fraction * 100.0,
        frontier_cells
    );

    // The shared streamsim-bench-v2 artifact: one flat summary row the
    // perf ledger ingests (full sweep is the reference, the pruned sweep
    // the current path), then the provenance note as its own row.
    let config_text = format!(
        "model quick cells {} frontier {frontier_cells}",
        pruned.cells_total
    );
    let header = streamsim_bench::bench_summary_line(
        "model",
        "quick",
        samples,
        &config_text,
        pruned.cells_simulated as u64,
        "cells",
        &[
            ("reference_ns", full_ns as f64),
            ("current_ns", pre_ns as f64),
            ("cells_total", pruned.cells_total as f64),
            ("cells_simulated", pruned.cells_simulated as f64),
            ("simulated_fraction", (fraction * 1e4).round() / 1e4),
            ("frontier_cells", frontier_cells as f64),
            ("speedup", (speedup * 1e3).round() / 1e3),
        ],
    );
    let note_line = streamsim_bench::bench_detail_line(
        "model",
        "note",
        "\"frontier_reproduced_exactly\":true,\"text\":\"recording amortized in a \
         shared prefilled store as the report driver does; the cold profile pass \
         is inside the fast path's measurement\"",
    );
    let summary = format!("{header}\n{note_line}\n");

    if std::env::var("STREAMSIM_BENCH_WRITE").as_deref() == Ok("1") {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_model.json");
        std::fs::write(path, &summary).expect("write BENCH_model.json");
        println!("model summary written to {path}");
    }

    if let Ok(min) = std::env::var("STREAMSIM_BENCH_ENFORCE") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("STREAMSIM_BENCH_ENFORCE is a float");
        if speedup < min {
            eprintln!("model pre-screen speedup {speedup:.3}x below enforced minimum {min}x");
            std::process::exit(1);
        }
        println!("model pre-screen speedup {speedup:.3}x meets enforced minimum {min}x");
    }
}
