//! Timing: the replay hot loop (batched delivery + fused families + SoA
//! stream state) against the pre-PR implementation.
//!
//! Replay is where the paper's sweeps spend their time once recording is
//! amortised: every table and figure walks the same recorded miss trace
//! against a *family* of configuration cells. This bench pits the
//! current path — [`replay_streams`] (fused, chunk-batched, SoA stream
//! state) and [`replay_l2`] (chunk-batched probes) — against a faithful
//! reconstruction of the pre-PR path: one virtual call per event per
//! cell, streams modelled by [`ReferenceStreamSystem`], the verbatim
//! pre-SoA system kept in `streamsim_streams::reference`. Both paths are
//! run over every (workload, family) pair and must produce identical
//! statistics, which the bench asserts before timing anything.
//!
//! Throughput is counted in *deliveries* — events × cells — so fusing a
//! family does not deflate the rate.
//!
//! Output: one human + JSON line per (workload, family, path) triple in
//! the usual harness shape, plus a summary. With
//! `STREAMSIM_BENCH_WRITE=1` the summary is written to
//! `BENCH_replay.json` at the repo root — the tracked artifact
//! EXPERIMENTS.md describes. With `STREAMSIM_BENCH_ENFORCE=<min>` the
//! run exits non-zero unless the aggregate speedup reaches `<min>` (the
//! CI perf smoke uses this).
//!
//! Knobs: `STREAMSIM_BENCH_SAMPLES` (default 5 here) and
//! `STREAMSIM_BENCH_WARMUP` (default 1 here). With
//! `STREAMSIM_REPLAY_CHUNK_SWEEP=1` the bench instead times the fused
//! stream path at each candidate chunk length per workload — the
//! measurement behind the [`REPLAY_CHUNK_EVENTS`] default — and exits.

use std::time::Instant;

use streamsim_cache::{CacheConfig, CacheStats, SetSampling};
use streamsim_core::experiments::{workload_set, ExperimentOptions, Scale};
use streamsim_core::{
    record_miss_trace, replay_chunked, replay_l2, replay_streams, FusedStreamObserver, L2Observer,
    MissEvent, MissObserver, MissTrace,
};
use streamsim_streams::reference::ReferenceStreamSystem;
use streamsim_streams::{Allocation, StreamConfig, StreamStats};
use streamsim_trace::BlockSize;

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The pre-PR stream replay: walk the event vector once, fan each event
/// out to every cell through a per-event call into the pre-SoA system.
fn reference_replay_streams(trace: &MissTrace, configs: &[StreamConfig]) -> Vec<StreamStats> {
    let mut systems: Vec<ReferenceStreamSystem> = configs
        .iter()
        .map(|&c| ReferenceStreamSystem::new(c))
        .collect();
    for event in trace.events() {
        for sys in &mut systems {
            match *event {
                MissEvent::Fetch { addr, .. } => {
                    sys.on_l1_miss(addr);
                }
                MissEvent::Writeback { base } => {
                    sys.on_writeback(base.block(sys.config().block()));
                }
            }
        }
    }
    for sys in &mut systems {
        sys.finalize();
    }
    systems.iter().map(ReferenceStreamSystem::stats).collect()
}

/// The pre-PR secondary-cache replay: per-event dispatch into each cell
/// (the production cache model — the L2 side never had a reference copy,
/// so this isolates exactly what batching buys).
fn reference_replay_l2(
    trace: &MissTrace,
    cells: &[(CacheConfig, Option<SetSampling>)],
) -> Vec<CacheStats> {
    let mut observers: Vec<L2Observer> = cells
        .iter()
        .map(|&(config, sampling)| L2Observer::new(config, sampling).expect("valid L2 cell"))
        .collect();
    for event in trace.events() {
        for o in &mut observers {
            match *event {
                MissEvent::Fetch { addr, kind } => o.on_fetch(addr, kind),
                MissEvent::Writeback { base } => o.on_writeback(base),
            }
        }
    }
    for o in &mut observers {
        o.finish();
    }
    observers.iter().map(L2Observer::stats).collect()
}

/// The stream-configuration families every workload is swept against:
/// the Figure 3 stream-count sweep, a unit-filter size sweep, and a
/// czone-size sweep — the three shapes the paper's stream sections use.
fn stream_families() -> Vec<(&'static str, Vec<StreamConfig>)> {
    let fig3 = (1..=10)
        .map(|n| StreamConfig::paper_basic(n).expect("valid stream count"))
        .collect();
    let filter = [4, 8, 16, 32]
        .iter()
        .map(|&entries| {
            StreamConfig::new(10, 2, Allocation::UnitFilter { entries }).expect("valid filter")
        })
        .collect();
    let czone = [8, 16, 24]
        .iter()
        .map(|&bits| StreamConfig::paper_strided(10, bits).expect("valid czone"))
        .collect();
    vec![("fig3", fig3), ("filter", filter), ("czone", czone)]
}

/// The fused stream path at an explicit chunk length — the production
/// replay with its one tunable exposed, used by the chunk-size sweep.
fn replay_streams_at(
    trace: &MissTrace,
    configs: &[StreamConfig],
    chunk: usize,
) -> Vec<StreamStats> {
    let mut fused = FusedStreamObserver::new(configs).expect("family shares one geometry");
    replay_chunked(trace, &mut [&mut fused], chunk);
    fused.stats()
}

/// Times the fused stream path at each candidate chunk length over
/// every (workload, family) pair. This is the measurement behind the
/// pinned `REPLAY_CHUNK_EVENTS` default; chunking is
/// behaviour-preserving for any length (the property tests pin that),
/// so the only question is which length keeps a chunk plus one
/// observer's tables cache-resident across the workload mix.
fn chunk_sweep(samples: u32, warmup: u32) {
    const CANDIDATES: [usize; 4] = [256, 512, 1024, 2048];
    let record = ExperimentOptions::quick().record_options();
    let mut totals = [0u128; CANDIDATES.len()];
    for w in &workload_set(Scale::Quick) {
        let name = w.name();
        let trace = record_miss_trace(w.as_ref(), &record).expect("valid L1");
        for (family, configs) in stream_families() {
            for (i, &chunk) in CANDIDATES.iter().enumerate() {
                let ns = median_ns(samples, warmup, || {
                    replay_streams_at(&trace, &configs, chunk)
                });
                totals[i] += ns;
                println!(
                    "bench replay-chunk/{name}/{family:<6}/{chunk:<4} median {:>8.2} ms",
                    ns as f64 / 1e6
                );
            }
        }
    }
    for (i, &chunk) in CANDIDATES.iter().enumerate() {
        println!(
            "bench replay-chunk/total/{chunk:<4}: {:>8.2} ms",
            totals[i] as f64 / 1e6
        );
    }
}

/// Median wall time of `f` over the configured samples, in nanoseconds.
fn median_ns<R>(samples: u32, warmup: u32, mut f: impl FnMut() -> R) -> u128 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut ns: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn report_line(workload: &str, family: &str, path: &str, ns: u128, deliveries: u64) {
    let del_per_sec = deliveries as f64 * 1e9 / ns as f64;
    println!(
        "bench replay/{workload}/{family:<6}/{path:<9} median {:>10.2} ms  \
         ({deliveries} deliveries, {:.1} Mdel/s)",
        ns as f64 / 1e6,
        del_per_sec / 1e6
    );
    println!(
        "{{\"benchmark\":\"replay/{workload}/{family}/{path}\",\"median_ns\":{ns},\
         \"deliveries\":{deliveries},\"deliveries_per_sec\":{del_per_sec:.1}}}"
    );
}

struct FamilyRow {
    workload: String,
    family: &'static str,
    cells: u64,
    deliveries: u64,
    ref_ns: u128,
    cur_ns: u128,
}

fn main() {
    let samples = env_u32("STREAMSIM_BENCH_SAMPLES", 5);
    let warmup = env_u32("STREAMSIM_BENCH_WARMUP", 1);
    if std::env::var("STREAMSIM_REPLAY_CHUNK_SWEEP").as_deref() == Ok("1") {
        chunk_sweep(samples, warmup);
        return;
    }
    let record = ExperimentOptions::quick().record_options();
    let workloads = workload_set(Scale::Quick);

    let l2_block = BlockSize::default();
    let l2_cells = [
        (
            CacheConfig::new(256 << 10, 1, l2_block).expect("valid L2"),
            None,
        ),
        (
            CacheConfig::new(1 << 20, 2, l2_block).expect("valid L2"),
            None,
        ),
        (
            CacheConfig::new(4 << 20, 4, l2_block).expect("valid L2"),
            None,
        ),
    ];

    let mut rows: Vec<FamilyRow> = Vec::new();
    for w in &workloads {
        let name = w.name().to_owned();
        let trace = record_miss_trace(w.as_ref(), &record).expect("valid L1");
        let events = trace.events().len() as u64;

        for (family, configs) in stream_families() {
            // Pin byte-identity between the two paths before timing.
            let current = replay_streams(&trace, &configs);
            let reference = reference_replay_streams(&trace, &configs);
            assert_eq!(
                current, reference,
                "{name}/{family}: fused SoA replay diverges from the reference path"
            );

            let cur_ns = median_ns(samples, warmup, || replay_streams(&trace, &configs));
            let ref_ns = median_ns(samples, warmup, || {
                reference_replay_streams(&trace, &configs)
            });
            let cells = configs.len() as u64;
            let deliveries = events * cells;
            report_line(&name, family, "reference", ref_ns, deliveries);
            report_line(&name, family, "current", cur_ns, deliveries);
            rows.push(FamilyRow {
                workload: name.clone(),
                family,
                cells,
                deliveries,
                ref_ns,
                cur_ns,
            });
        }

        {
            let current = replay_l2(&trace, &l2_cells).expect("valid L2 cells");
            let reference = reference_replay_l2(&trace, &l2_cells);
            assert_eq!(
                current, reference,
                "{name}/l2: batched L2 replay diverges from the per-event path"
            );

            let cur_ns = median_ns(samples, warmup, || {
                replay_l2(&trace, &l2_cells).expect("valid L2 cells")
            });
            let ref_ns = median_ns(samples, warmup, || reference_replay_l2(&trace, &l2_cells));
            let cells = l2_cells.len() as u64;
            let deliveries = events * cells;
            report_line(&name, "l2", "reference", ref_ns, deliveries);
            report_line(&name, "l2", "current", cur_ns, deliveries);
            rows.push(FamilyRow {
                workload: name.clone(),
                family: "l2",
                cells,
                deliveries,
                ref_ns,
                cur_ns,
            });
        }
    }

    let total_deliveries: u64 = rows.iter().map(|r| r.deliveries).sum();
    let total_ref_ns: u128 = rows.iter().map(|r| r.ref_ns).sum();
    let total_cur_ns: u128 = rows.iter().map(|r| r.cur_ns).sum();
    let speedup = total_ref_ns as f64 / total_cur_ns as f64;
    let cur_rate = total_deliveries as f64 * 1e9 / total_cur_ns as f64;
    let ref_rate = total_deliveries as f64 * 1e9 / total_ref_ns as f64;
    println!(
        "bench replay/total: {total_deliveries} deliveries — reference {:.1} Mdel/s, \
         current {:.1} Mdel/s, speedup {speedup:.2}x",
        ref_rate / 1e6,
        cur_rate / 1e6
    );

    // Per-family aggregate speedups, with an honest note naming any
    // family that misses the tentpole's 2x target on this machine.
    let mut families: Vec<&'static str> = Vec::new();
    for r in &rows {
        if !families.contains(&r.family) {
            families.push(r.family);
        }
    }
    let mut family_lines = Vec::new();
    let mut below_target = Vec::new();
    for family in &families {
        let fam_ref: u128 = rows
            .iter()
            .filter(|r| r.family == *family)
            .map(|r| r.ref_ns)
            .sum();
        let fam_cur: u128 = rows
            .iter()
            .filter(|r| r.family == *family)
            .map(|r| r.cur_ns)
            .sum();
        let fam_speedup = fam_ref as f64 / fam_cur as f64;
        println!("bench replay/family/{family}: speedup {fam_speedup:.2}x");
        family_lines.push(format!(
            "\"family\":\"{family}\",\"reference_ns\":{fam_ref},\
             \"current_ns\":{fam_cur},\"speedup\":{fam_speedup:.3}"
        ));
        if fam_speedup < 2.0 {
            below_target.push(format!("{family} ({fam_speedup:.2}x)"));
        }
    }
    // Cells below parity get named too: a (workload, family) pair where
    // the batched path loses to the per-event reference outright is
    // worth a reader's attention even when its family aggregate is fine.
    let below_parity: Vec<String> = rows
        .iter()
        .filter(|r| r.cur_ns > r.ref_ns)
        .map(|r| {
            format!(
                "{}/{} ({:.2}x)",
                r.workload,
                r.family,
                r.ref_ns as f64 / r.cur_ns as f64
            )
        })
        .collect();
    let mut note = if below_target.is_empty() {
        "every family meets the 2x aggregate target".to_owned()
    } else {
        format!(
            "families below the 2x target on this machine: {}",
            below_target.join(", ")
        )
    };
    if !below_parity.is_empty() {
        note.push_str(&format!(
            "; cells below parity with the per-event reference: {} — \
             the chunk-size sweep (256/512/1024/2048) shows these are not \
             a chunking artifact, candidates differ by under noise",
            below_parity.join(", ")
        ));
    }

    // The shared streamsim-bench-v2 artifact: one flat summary row the
    // perf ledger ingests, then family and cell detail rows. The honest
    // per-machine note travels as its own row so the summary stays
    // purely numeric.
    let config_text = format!("replay quick families {families:?}");
    let header = streamsim_bench::bench_summary_line(
        "replay",
        "quick",
        samples,
        &config_text,
        total_deliveries,
        "deliveries",
        &[
            ("reference_ns", total_ref_ns as f64),
            ("current_ns", total_cur_ns as f64),
            ("deliveries_per_sec", (cur_rate * 10.0).round() / 10.0),
            ("speedup", (speedup * 1e3).round() / 1e3),
        ],
    );
    let note_line = streamsim_bench::bench_detail_line(
        "replay",
        "note",
        &format!("\"text\":{}", streamsim_obs::json_escape(&note)),
    );
    let family_rows: Vec<String> = family_lines
        .iter()
        .map(|fields| streamsim_bench::bench_detail_line("replay", "family", fields))
        .collect();
    let cell_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            streamsim_bench::bench_detail_line(
                "replay",
                "cell",
                &format!(
                    "\"workload\":\"{}\",\"family\":\"{}\",\"cells\":{},\
                     \"deliveries\":{},\"reference_ns\":{},\"current_ns\":{},\"speedup\":{:.3}",
                    r.workload,
                    r.family,
                    r.cells,
                    r.deliveries,
                    r.ref_ns,
                    r.cur_ns,
                    r.ref_ns as f64 / r.cur_ns as f64
                ),
            )
        })
        .collect();
    let summary = format!(
        "{header}\n{note_line}\n{}\n{}\n",
        family_rows.join("\n"),
        cell_rows.join("\n")
    );

    if std::env::var("STREAMSIM_BENCH_WRITE").as_deref() == Ok("1") {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
        std::fs::write(path, &summary).expect("write BENCH_replay.json");
        println!("replay summary written to {path}");
    }

    if let Ok(min) = std::env::var("STREAMSIM_BENCH_ENFORCE") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("STREAMSIM_BENCH_ENFORCE is a float");
        if speedup < min {
            eprintln!("replay speedup {speedup:.3}x below enforced minimum {min}x");
            std::process::exit(1);
        }
        println!("replay speedup {speedup:.3}x meets enforced minimum {min}x");
    }
}
