//! Regenerates the machine-checked reproduction scorecard.
fn main() {
    streamsim_bench::run_experiment("scorecard", |opts| {
        streamsim_core::experiments::scorecard::run(&opts)
    });
}
