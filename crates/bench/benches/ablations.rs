//! Regenerates the paper's ablations.
fn main() {
    streamsim_bench::run_experiment("ablations", |opts| {
        streamsim_core::experiments::ablations::run(&opts)
    });
}
