//! Regenerates the memory-traffic comparison (streams vs a 1 MB L2).
fn main() {
    streamsim_bench::run_experiment("traffic", |opts| {
        streamsim_core::experiments::traffic::run(&opts)
    });
}
