//! Regenerates the paper's fig5.
fn main() {
    streamsim_bench::run_experiment("fig5", |opts| streamsim_core::experiments::fig5::run(&opts));
}
