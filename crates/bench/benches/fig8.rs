//! Regenerates the paper's Figure 8 (non-unit-stride detection).
fn main() {
    streamsim_bench::run_experiment("fig8", |opts| streamsim_core::experiments::fig8::run(&opts));
}
