//! Micro-benchmarks: throughput of each simulator component.
//!
//! These measure the simulator itself (accesses per second), not the
//! modelled hardware — useful to keep the experiment harness fast enough
//! to sweep the paper's parameter space. Timed by the in-tree
//! `streamsim_bench::timing` harness (warmup + median-of-N wall clock,
//! one JSON line per benchmark for regression tracking).

use streamsim_bench::timing;
use streamsim_cache::{CacheConfig, SetAssocCache, SplitL1};
use streamsim_core::{record_miss_trace, run_streams, RecordOptions};
use streamsim_streams::{CzoneFilter, StreamConfig, StreamSystem};
use streamsim_trace::io::{read_trace_compressed, write_trace_compressed};
use streamsim_trace::{Access, Addr, WordAddr};
use streamsim_workloads::generators::{RandomGather, SequentialSweep};
use streamsim_workloads::{collect_trace, Workload};

const N: u64 = 100_000;

fn bench_l1() {
    let trace: Vec<Access> = collect_trace(&SequentialSweep {
        arrays: 2,
        bytes_per_array: 256 * 1024,
        passes: 1,
        elem: 8,
    });
    let mut group = timing::group("l1");
    group.throughput(trace.len() as u64);
    group.bench_function("split_l1_sequential", || {
        let mut l1 = SplitL1::paper().expect("valid");
        for &a in &trace {
            std::hint::black_box(l1.access(a));
        }
        l1.combined_stats().misses()
    });
    group.finish();
}

fn bench_cache_random() {
    let trace: Vec<Access> = collect_trace(&RandomGather {
        footprint: 1 << 20,
        count: N,
        seed: 3,
    });
    let mut group = timing::group("cache");
    group.throughput(trace.len() as u64);
    group.bench_function("set_assoc_random_refs", || {
        let mut cache = SetAssocCache::new(CacheConfig::paper_l1().expect("valid")).expect("valid");
        for &a in &trace {
            std::hint::black_box(cache.access(a.addr, a.kind));
        }
        cache.stats().misses()
    });
    group.finish();
}

fn bench_streams() {
    let mut group = timing::group("streams");
    group.throughput(N);

    group.bench_function("unit_stream_hits", || {
        let mut sys = StreamSystem::new(StreamConfig::paper_basic(10).expect("valid"));
        for i in 0..N {
            std::hint::black_box(sys.on_l1_miss(Addr::new(i * 32)));
        }
        sys.stats().hits
    });

    group.bench_function("filtered_random_misses", || {
        // Worst case for the lookup path: every miss scans all buffers
        // and the filter.
        let mut sys = StreamSystem::new(StreamConfig::paper_filtered(10).expect("valid"));
        for i in 0..N {
            let addr = Addr::new((i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 0xFFFF_FFE0);
            std::hint::black_box(sys.on_l1_miss(addr));
        }
        sys.stats().misses()
    });

    group.bench_function("czone_strided_misses", || {
        let mut sys = StreamSystem::new(StreamConfig::paper_strided(10, 16).expect("valid"));
        for i in 0..N {
            std::hint::black_box(sys.on_l1_miss(Addr::new(0x100000 + i * 4096)));
        }
        sys.stats().hits
    });
    group.finish();
}

fn bench_pipeline() {
    let workload = SequentialSweep {
        arrays: 4,
        bytes_per_array: 256 * 1024,
        passes: 1,
        elem: 8,
    };
    let refs = {
        let mut count = 0u64;
        workload.generate(&mut |_| count += 1);
        count
    };
    let mut group = timing::group("pipeline");
    group.sample_size(7);
    group.throughput(refs);
    group.bench_function("record_and_replay", || {
        let trace = record_miss_trace(&workload, &RecordOptions::default()).expect("valid");
        run_streams(&trace, StreamConfig::paper_filtered(10).expect("valid")).hits
    });
    group.finish();
}

fn bench_filters() {
    let mut group = timing::group("filters");
    group.throughput(N);
    group.bench_function("czone_lookup_mixed", || {
        // A mixture of strided and scattered word addresses.
        let mut filter = CzoneFilter::new(16, 16);
        let mut detections = 0u64;
        for i in 0..N {
            let w = if i % 3 == 0 {
                WordAddr::from_index(0x10_0000 + i * 256)
            } else {
                WordAddr::from_index((i.wrapping_mul(0x9E37_79B9)) & 0xF_FFFF)
            };
            if std::hint::black_box(filter.lookup(w)).is_some() {
                detections += 1;
            }
        }
        detections
    });
    group.finish();
}

fn bench_trace_io() {
    let trace: Vec<Access> = (0..N)
        .map(|i| Access::load(Addr::new(0x1000_0000 + i * 8)))
        .collect();
    let mut group = timing::group("trace_io");
    group.throughput(N);
    group.bench_function("write_compressed", || {
        let mut buf = Vec::with_capacity(N as usize * 3);
        write_trace_compressed(&mut buf, &trace).expect("in-memory write");
        buf.len()
    });
    let mut encoded = Vec::new();
    write_trace_compressed(&mut encoded, &trace).expect("in-memory write");
    group.bench_function("read_compressed", || {
        read_trace_compressed(&encoded[..]).expect("valid").len()
    });
    group.finish();
}

fn main() {
    bench_l1();
    bench_cache_random();
    bench_streams();
    bench_filters();
    bench_trace_io();
    bench_pipeline();
}
