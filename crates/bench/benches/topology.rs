//! Regenerates the §3 stream-placement comparison.
fn main() {
    streamsim_bench::run_experiment("topology", |opts| {
        streamsim_core::experiments::topology::run(&opts)
    });
}
