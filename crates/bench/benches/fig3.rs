//! Regenerates the paper's Figure 3 (hit rate vs number of streams).
fn main() {
    streamsim_bench::run_experiment("fig3", |opts| streamsim_core::experiments::fig3::run(&opts));
}
