//! Regenerates the paper's table2.
fn main() {
    streamsim_bench::run_experiment("table2", |opts| {
        streamsim_core::experiments::table2::run(&opts)
    });
}
