//! Regenerates the paper's table1.
fn main() {
    streamsim_bench::run_experiment("table1", |opts| {
        streamsim_core::experiments::table1::run(&opts)
    });
}
