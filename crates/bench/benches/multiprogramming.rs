//! Regenerates the multiprogramming (context-switch) extension.
fn main() {
    streamsim_bench::run_experiment("multiprogramming", |opts| {
        streamsim_core::experiments::multiprogramming::run(&opts)
    });
}
