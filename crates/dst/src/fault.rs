//! The fault plan DSL: what goes wrong, and where.
//!
//! A [`FaultPlan`] is a small list of [`Fault`]s with a textual syntax
//! (`panic@7,slow:2`) so a failing plan can be printed, pasted and
//! replayed. Plans are either written by hand in a test or expanded
//! from a seed by [`FaultPlan::random`] — the latter is what the sweep
//! harness uses, so a single `STREAMSIM_DST_SEED` determines both the
//! schedule *and* the injected faults.
//!
//! Faults split by who consumes them:
//!
//! * scheduling faults (`slow:W`, `starve:W`) bias the
//!   [`crate::SimExecutor`]'s choice of which worker steps next;
//! * payload faults (`panic@K`, `sink-fail@N`) are consulted by the
//!   code under test through a cheap-clone [`FaultContext`] handle.

use std::fmt;
use std::sync::Arc;

use streamsim_prng::Rng;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// The mapped closure panics when it processes input item `item`
    /// (syntax `panic@ITEM`). Consulted via [`FaultContext::maybe_panic`].
    PanicOnItem {
        /// Zero-based input index the panic fires on.
        item: usize,
    },
    /// Worker `worker` is scheduled only when no other worker is
    /// runnable (syntax `slow:WORKER`) — the virtual-time analogue of a
    /// descheduled or overloaded thread.
    SlowWorker {
        /// Worker index to deprioritize.
        worker: usize,
    },
    /// Worker `worker` hogs the scheduler while runnable (syntax
    /// `starve:WORKER`), starving every other worker of queue items —
    /// the opposite extreme of `slow`.
    Starvation {
        /// Worker index that monopolizes scheduling.
        worker: usize,
    },
    /// The guarded artifact sink fails when row `row` is written
    /// (syntax `sink-fail@ROW`). Consulted via [`FaultContext::sink_write`].
    SinkWriteFail {
        /// Zero-based row index whose write fails.
        row: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PanicOnItem { item } => write!(f, "panic@{item}"),
            Fault::SlowWorker { worker } => write!(f, "slow:{worker}"),
            Fault::Starvation { worker } => write!(f, "starve:{worker}"),
            Fault::SinkWriteFail { row } => write!(f, "sink-fail@{row}"),
        }
    }
}

/// A parse failure from [`FaultPlan::parse`], carrying the offending
/// clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError(String);

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault clause {:?}: expected panic@ITEM, slow:WORKER, starve:WORKER or \
             sink-fail@ROW, comma-separated (or \"none\")",
            self.0
        )
    }
}

impl std::error::Error for FaultPlanParseError {}

/// An ordered list of faults to inject into one DST run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: nothing goes wrong.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with exactly these faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// The faults in this plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the textual syntax produced by `Display`:
    /// comma-separated clauses, e.g. `panic@7,slow:2,starve:0,sink-fail@3`.
    /// The empty string and `none` parse to the empty plan.
    pub fn parse(text: &str) -> Result<Self, FaultPlanParseError> {
        let text = text.trim();
        if text.is_empty() || text == "none" {
            return Ok(FaultPlan::none());
        }
        let mut faults = Vec::new();
        for clause in text.split(',') {
            let clause = clause.trim();
            let parsed = clause
                .strip_prefix("panic@")
                .map(|n| (n, 0))
                .or_else(|| clause.strip_prefix("slow:").map(|n| (n, 1)))
                .or_else(|| clause.strip_prefix("starve:").map(|n| (n, 2)))
                .or_else(|| clause.strip_prefix("sink-fail@").map(|n| (n, 3)));
            let (number, kind) = parsed.ok_or_else(|| FaultPlanParseError(clause.to_string()))?;
            let n: usize = number
                .parse()
                .map_err(|_| FaultPlanParseError(clause.to_string()))?;
            faults.push(match kind {
                0 => Fault::PanicOnItem { item: n },
                1 => Fault::SlowWorker { worker: n },
                2 => Fault::Starvation { worker: n },
                _ => Fault::SinkWriteFail { row: n },
            });
        }
        Ok(FaultPlan::new(faults))
    }

    /// Expands a random plan from `rng`, sized for a run over `items`
    /// input items and `workers` workers.
    ///
    /// Roughly a quarter of plans are empty (the fault-free baseline
    /// must stay represented in every sweep), half inject one fault and
    /// the rest two. Drawing from the shared run RNG keeps the whole
    /// run — schedule, faults, everything — a pure function of the seed.
    pub fn random<R: Rng>(rng: &mut R, items: usize, workers: usize) -> Self {
        let count = match rng.gen_range(0u32..4) {
            0 => 0,
            1 | 2 => 1,
            _ => 2,
        };
        let mut faults = Vec::new();
        for _ in 0..count {
            faults.push(match rng.gen_range(0u32..4) {
                0 => Fault::PanicOnItem {
                    item: rng.gen_range(0..items.max(1)),
                },
                1 => Fault::SlowWorker {
                    worker: rng.gen_range(0..workers.max(1)),
                },
                2 => Fault::Starvation {
                    worker: rng.gen_range(0..workers.max(1)),
                },
                _ => Fault::SinkWriteFail {
                    row: rng.gen_range(0..items.max(1)),
                },
            });
        }
        FaultPlan::new(faults)
    }

    /// The workers deprioritized by `slow:` faults.
    pub fn slow_workers(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::SlowWorker { worker } => Some(*worker),
            _ => None,
        })
    }

    /// The first worker (if any) that a `starve:` fault lets hog the
    /// scheduler.
    pub fn starving_worker(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::Starvation { worker } => Some(*worker),
            _ => None,
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "none");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// A cheap-clone handle the code under test consults for payload
/// faults (`panic@`, `sink-fail@`). Scheduling faults are interpreted
/// by the [`crate::SimExecutor`] instead and never reach the workload.
#[derive(Debug, Clone)]
pub struct FaultContext {
    plan: Arc<FaultPlan>,
}

impl FaultContext {
    /// A context over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultContext {
            plan: Arc::new(plan),
        }
    }

    /// The plan this context serves.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether a `panic@item` fault is armed for this input index.
    pub fn panics_on(&self, item: usize) -> bool {
        self.plan
            .faults
            .iter()
            .any(|f| matches!(f, Fault::PanicOnItem { item: k } if *k == item))
    }

    /// Panics with a recognizable payload if a `panic@item` fault is
    /// armed for this input index; otherwise does nothing. Call from
    /// the mapped closure (or a faulty workload wrapper) with the index
    /// of the item being processed.
    pub fn maybe_panic(&self, item: usize) {
        if self.panics_on(item) {
            panic!("dst: injected panic at item {item}");
        }
    }

    /// The sink gate: `Err` exactly when a `sink-fail@row` fault is
    /// armed for this row index. Feed to `GuardedSink` so artifact
    /// flushing fails at a controlled row boundary.
    pub fn sink_write(&self, row: usize) -> Result<(), String> {
        if self
            .plan
            .faults
            .iter()
            .any(|f| matches!(f, Fault::SinkWriteFail { row: r } if *r == row))
        {
            Err(format!("dst: injected sink write failure at row {row}"))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_prng::Xoshiro256StarStar;

    #[test]
    fn display_parse_roundtrip() {
        let plan = FaultPlan::new(vec![
            Fault::PanicOnItem { item: 7 },
            Fault::SlowWorker { worker: 2 },
            Fault::Starvation { worker: 0 },
            Fault::SinkWriteFail { row: 3 },
        ]);
        let text = plan.to_string();
        assert_eq!(text, "panic@7,slow:2,starve:0,sink-fail@3");
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn empty_plan_roundtrip() {
        assert_eq!(FaultPlan::none().to_string(), "none");
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("  ").unwrap(), FaultPlan::none());
    }

    #[test]
    fn whitespace_between_clauses_is_tolerated() {
        let plan = FaultPlan::parse(" panic@1 , slow:0 ").unwrap();
        assert_eq!(
            plan.faults(),
            &[
                Fault::PanicOnItem { item: 1 },
                Fault::SlowWorker { worker: 0 }
            ]
        );
    }

    #[test]
    fn bad_clauses_are_rejected_with_the_clause() {
        for bad in [
            "panic@",
            "panic@x",
            "slow@1",
            "starve",
            "sink-fail:2",
            "boom",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.to_string().contains("bad fault clause"), "{err}");
        }
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_bounded() {
        let draw = |seed: u64| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            FaultPlan::random(&mut rng, 20, 4)
        };
        let mut empties = 0;
        for seed in 0..200u64 {
            let plan = draw(seed);
            assert_eq!(plan, draw(seed), "seed {seed} not deterministic");
            assert!(plan.faults().len() <= 2);
            if plan.is_empty() {
                empties += 1;
            }
            for fault in plan.faults() {
                match *fault {
                    Fault::PanicOnItem { item } => assert!(item < 20),
                    Fault::SlowWorker { worker } | Fault::Starvation { worker } => {
                        assert!(worker < 4)
                    }
                    Fault::SinkWriteFail { row } => assert!(row < 20),
                }
            }
        }
        // ~25% of plans should be empty; demand the baseline is present.
        assert!(empties > 20, "only {empties}/200 fault-free plans");
    }

    #[test]
    fn context_answers_payload_faults() {
        let ctx = FaultContext::new(FaultPlan::parse("panic@2,sink-fail@1").unwrap());
        assert!(ctx.panics_on(2));
        assert!(!ctx.panics_on(1));
        ctx.maybe_panic(0); // no-op
        let err = std::panic::catch_unwind(|| ctx.maybe_panic(2)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "dst: injected panic at item 2");
        assert!(ctx.sink_write(0).is_ok());
        assert!(ctx.sink_write(1).unwrap_err().contains("row 1"));
    }

    #[test]
    fn scheduling_fault_accessors() {
        let plan = FaultPlan::parse("slow:3,starve:1,slow:0").unwrap();
        assert_eq!(plan.slow_workers().collect::<Vec<_>>(), vec![3, 0]);
        assert_eq!(plan.starving_worker(), Some(1));
        assert_eq!(FaultPlan::none().starving_worker(), None);
    }
}
