//! The executor seam: who runs the work-queue protocol's steps.
//!
//! The protocol itself (shared queue, abort flag, parked panic payload)
//! lives in `streamsim_core::runner`; it is expressed as a *step
//! function* so that scheduling is fully separated from the work. A
//! step advances one worker's state machine by exactly one phase —
//! publish a finished result, run the closure on a claimed item, or
//! poll the queue — and reports whether that worker has more to do.
//! An [`Executor`] decides which worker steps next: real threads let
//! the OS decide, the DST scheduler ([`crate::SimExecutor`]) decides
//! from a seed.

use std::panic::resume_unwind;

/// What one protocol step of one worker reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The worker made progress and must be stepped again.
    Progress,
    /// The worker is finished (queue drained or run aborted) and must
    /// not be stepped again.
    Done,
}

/// A pool of simulated or real workers that drives a step function to
/// completion.
///
/// The contract, which both implementations and every caller rely on:
///
/// * `drive` calls `step(w)` only for `w < workers`, and never again
///   for a worker once its step returned [`StepOutcome::Done`];
/// * `drive` returns only after every worker has reported `Done`;
/// * `step` may be called from multiple threads concurrently, but never
///   concurrently *for the same worker index*.
pub trait Executor {
    /// How many workers this executor simulates or spawns.
    fn workers(&self) -> usize;

    /// Runs every worker's step loop to completion.
    fn drive(&self, workers: usize, step: &(dyn Fn(usize) -> StepOutcome + Sync));
}

/// The production executor: one scoped OS thread per worker, each
/// looping its own step function until it reports `Done`.
///
/// Scheduling between workers is whatever the host OS does — exactly
/// the behavior the engine had before the executor seam existed.
#[derive(Debug, Clone, Copy)]
pub struct ThreadExecutor {
    threads: usize,
}

impl ThreadExecutor {
    /// An executor with an explicit thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ThreadExecutor {
            threads: threads.max(1),
        }
    }

    /// An executor sized to the machine (`available_parallelism`).
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ThreadExecutor::new(threads)
    }
}

impl Executor for ThreadExecutor {
    fn workers(&self) -> usize {
        self.threads
    }

    fn drive(&self, workers: usize, step: &(dyn Fn(usize) -> StepOutcome + Sync)) {
        if workers == 0 {
            return;
        }
        if workers == 1 {
            // No concurrency to schedule; run the lone worker inline.
            while step(0) == StepOutcome::Progress {}
            return;
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || while step(w) == StepOutcome::Progress {}))
                .collect();
            for handle in handles {
                // Panics in the mapped closure are caught inside the
                // step function; this backstop covers a panic outside
                // it (e.g. allocation failure in the step machinery).
                handle
                    .join()
                    .unwrap_or_else(|payload| resume_unwind(payload));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn thread_executor_steps_every_worker_to_done() {
        let exec = ThreadExecutor::new(3);
        assert_eq!(exec.workers(), 3);
        let budgets = [
            AtomicUsize::new(2),
            AtomicUsize::new(5),
            AtomicUsize::new(1),
        ];
        let steps = AtomicUsize::new(0);
        exec.drive(3, &|w| {
            steps.fetch_add(1, Ordering::Relaxed);
            match budgets[w]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            {
                Ok(_) => StepOutcome::Progress,
                Err(_) => StepOutcome::Done,
            }
        });
        // Each worker is stepped budget+... times: budget Progress steps
        // then the step that observes 0 and reports Done.
        assert_eq!(steps.load(Ordering::Relaxed), 2 + 5 + 1 + 3);
        for b in &budgets {
            assert_eq!(b.load(Ordering::Relaxed), 0, "worker stepped past Done");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadExecutor::new(0).workers(), 1);
    }

    #[test]
    fn single_worker_runs_inline() {
        let exec = ThreadExecutor::new(1);
        let count = AtomicUsize::new(0);
        exec.drive(1, &|_| {
            if count.fetch_add(1, Ordering::Relaxed) < 4 {
                StepOutcome::Progress
            } else {
                StepOutcome::Done
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }
}
