//! Deterministic simulation testing (DST) for streamsim's concurrent
//! engine.
//!
//! The experiment engine spreads independent (workload × configuration)
//! cells over worker threads with a shared work queue
//! (`streamsim_core::parallel_map`). Real threads exercise only the
//! interleavings the host scheduler happens to produce, so concurrency
//! bugs — masked panic payloads, ignored abort flags, torn artifacts —
//! hide until an unlucky run in CI. This crate substitutes a cheap,
//! controllable model for the expensive real scheduler:
//!
//! * [`Executor`] — the seam the work-queue protocol is generic over: a
//!   pool of `workers()` that each repeatedly run one protocol *step*
//!   until it reports [`StepOutcome::Done`];
//! * [`ThreadExecutor`] — the production implementation: one scoped OS
//!   thread per worker, behavior identical to the pre-seam engine;
//! * [`SimExecutor`] — the DST implementation: a single-threaded virtual
//!   scheduler that interleaves worker steps in a seeded, xoshiro-driven
//!   order, records the schedule it chose, and replays it exactly from
//!   the same seed;
//! * [`FaultPlan`] / [`Fault`] — a tiny fault DSL (worker panic at item
//!   *k*, slow worker, queue starvation, sink write failure) that a seed
//!   expands into via [`FaultPlan::random`], so *one* integer reproduces
//!   both the interleaving and the injected faults;
//! * [`sweep`] — the test harness: runs a property over a few hundred
//!   derived seeds and prints `STREAMSIM_DST_SEED=<n>` on the first
//!   failure for one-command replay.
//!
//! Everything is hermetic: the only dependency is the in-tree
//! `streamsim-prng`, no wall clock is consulted, and a given seed
//! produces the same schedule on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod fault;
mod sim;
mod sweep;

pub use executor::{Executor, StepOutcome, ThreadExecutor};
pub use fault::{Fault, FaultContext, FaultPlan, FaultPlanParseError};
pub use sim::{SimExecutor, DRIVE_BOUNDARY};
pub use sweep::{replay_seed, sweep, sweep_with, DEFAULT_SWEEP_SEEDS};
