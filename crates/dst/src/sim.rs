//! The DST virtual scheduler.
//!
//! [`SimExecutor`] drives the work-queue protocol on *one* OS thread,
//! interleaving the simulated workers' steps in an order drawn from the
//! in-tree xoshiro generator. Because every scheduling decision comes
//! from a seeded PRNG — and the protocol's step granularity puts a
//! yield point between claiming an item, computing it and publishing
//! the result — a seed reproduces an entire concurrent execution
//! exactly: the same workers claim the same items in the same order and
//! abort at the same step. The chosen order is recorded and exposed via
//! [`SimExecutor::schedule`], which is how tests assert "same
//! interleaving" rather than merely "same answer".

use std::sync::Mutex;

use streamsim_prng::{Rng, SplitMix64, Xoshiro256StarStar};

use crate::executor::{Executor, StepOutcome};
use crate::fault::{FaultContext, FaultPlan};

/// Separator pushed into the recorded schedule between two `drive`
/// calls on the same executor (drivers run several `parallel_map`
/// fan-outs per experiment).
pub const DRIVE_BOUNDARY: u32 = u32::MAX;

/// A seeded single-threaded scheduler over a pool of simulated workers.
#[derive(Debug)]
pub struct SimExecutor {
    seed: u64,
    workers: usize,
    plan: FaultPlan,
    context: FaultContext,
    drives: Mutex<u64>,
    schedule: Mutex<Vec<u32>>,
}

impl SimExecutor {
    /// A fault-free scheduler with `workers` simulated workers.
    pub fn new(seed: u64, workers: usize) -> Self {
        SimExecutor::with_plan(seed, workers, FaultPlan::none())
    }

    /// A scheduler that also interprets `plan`'s scheduling faults and
    /// serves its payload faults through [`SimExecutor::context`].
    pub fn with_plan(seed: u64, workers: usize, plan: FaultPlan) -> Self {
        SimExecutor {
            seed,
            workers: workers.max(1),
            context: FaultContext::new(plan.clone()),
            plan,
            drives: Mutex::new(0),
            schedule: Mutex::new(Vec::new()),
        }
    }

    /// Expands a whole run configuration from one seed: a worker count
    /// in `2..=5` and a [`FaultPlan::random`] sized for `items` input
    /// items. This is the sweep harness's constructor — the printed
    /// `STREAMSIM_DST_SEED` rebuilds schedule and faults alike.
    pub fn from_seed(seed: u64, items: usize) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from_u64(SplitMix64::new(seed).next());
        let workers = rng.gen_range(2usize..=5);
        let plan = FaultPlan::random(&mut rng, items, workers);
        SimExecutor::with_plan(seed, workers, plan)
    }

    /// The seed every scheduling decision derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault plan this scheduler interprets.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The payload-fault handle for the code under test (panic and
    /// sink-write faults).
    pub fn context(&self) -> FaultContext {
        self.context.clone()
    }

    /// The worker-step order chosen so far, with [`DRIVE_BOUNDARY`]
    /// separating successive `drive` calls. Two runs from the same seed
    /// over the same work produce identical schedules — byte-for-byte.
    pub fn schedule(&self) -> Vec<u32> {
        self.schedule
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Picks the next worker to step among the still-live ones,
    /// honoring `starve:`/`slow:` faults.
    fn choose(&self, rng: &mut Xoshiro256StarStar, live: &[bool]) -> usize {
        if let Some(hog) = self.plan.starving_worker() {
            if live.get(hog).copied().unwrap_or(false) {
                return hog;
            }
        }
        let runnable: Vec<usize> = (0..live.len()).filter(|&w| live[w]).collect();
        let eager: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&w| !self.plan.slow_workers().any(|s| s == w))
            .collect();
        // A slow worker runs only when nothing else can (it still must
        // run eventually or its claimed item would be lost).
        let pool = if eager.is_empty() { &runnable } else { &eager };
        *rng.choose(pool).expect("at least one live worker")
    }
}

impl Executor for SimExecutor {
    fn workers(&self) -> usize {
        self.workers
    }

    fn drive(&self, workers: usize, step: &(dyn Fn(usize) -> StepOutcome + Sync)) {
        if workers == 0 {
            return;
        }
        // Each drive call on this executor gets its own derived stream
        // so successive fan-outs in one experiment see fresh (but still
        // seed-determined) interleavings.
        let drive_index = {
            let mut drives = self.drives.lock().unwrap_or_else(|e| e.into_inner());
            let i = *drives;
            *drives += 1;
            i
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(
            SplitMix64::new(self.seed.wrapping_add(drive_index)).next(),
        );
        let mut live = vec![true; workers];
        let mut remaining = workers;
        let mut trace = Vec::with_capacity(workers * 4);
        // When timeline export is active, remember when each step began
        // so the chosen schedule renders as per-worker slices on the
        // same timeline as the engine spans. One relaxed load when off.
        let tracing = streamsim_obs::trace_active();
        let mut step_marks: Vec<f64> = Vec::new();
        while remaining > 0 {
            let w = self.choose(&mut rng, &live);
            trace.push(w as u32);
            if tracing {
                step_marks.push(streamsim_obs::trace_epoch_us());
            }
            if step(w) == StepOutcome::Done {
                live[w] = false;
                remaining -= 1;
            }
        }
        if tracing {
            // Run-length encode the schedule: each maximal run of one
            // worker becomes a single `X` slice on that worker's lane.
            let end = streamsim_obs::trace_epoch_us();
            let mut i = 0;
            while i < trace.len() {
                let w = trace[i];
                let mut j = i + 1;
                while j < trace.len() && trace[j] == w {
                    j += 1;
                }
                let begin = step_marks[i];
                let until = if j < trace.len() { step_marks[j] } else { end };
                streamsim_obs::trace_slice(
                    w,
                    &format!("w{w}"),
                    begin,
                    (until - begin).max(0.0),
                    &[("drive", drive_index), ("steps", (j - i) as u64)],
                );
                i = j;
            }
        }
        let mut schedule = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
        if !schedule.is_empty() {
            schedule.push(DRIVE_BOUNDARY);
        }
        schedule.extend(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A step function that gives each worker a fixed budget of
    /// Progress steps, checking the executor contract along the way.
    fn budgeted(budgets: Vec<usize>) -> (Vec<AtomicUsize>, impl Fn(usize) -> StepOutcome) {
        let counts: Vec<AtomicUsize> = budgets.iter().map(|_| AtomicUsize::new(0)).collect();
        let shadow: Vec<AtomicUsize> = counts.iter().map(|_| AtomicUsize::new(0)).collect();
        let step = move |w: usize| {
            let stepped = shadow[w].fetch_add(1, Ordering::Relaxed);
            assert!(stepped <= budgets[w], "worker {w} stepped after Done");
            if stepped == budgets[w] {
                StepOutcome::Done
            } else {
                StepOutcome::Progress
            }
        };
        (counts, step)
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let exec = SimExecutor::new(0xD57, 4);
            let (_, step) = budgeted(vec![3, 1, 4, 2]);
            exec.drive(exec.workers(), &step);
            exec.schedule()
        };
        let first = run();
        assert_eq!(first, run());
        // Sanity: the schedule interleaves (not a single worker's run),
        // and every worker appears.
        for w in 0..4u32 {
            assert!(first.contains(&w), "worker {w} never scheduled");
        }
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let run = |seed| {
            let exec = SimExecutor::new(seed, 3);
            let (_, step) = budgeted(vec![5, 5, 5]);
            exec.drive(exec.workers(), &step);
            exec.schedule()
        };
        let baseline = run(1);
        assert!(
            (2..40).any(|seed| run(seed) != baseline),
            "39 seeds all produced one interleaving"
        );
    }

    #[test]
    fn starvation_hogs_the_scheduler() {
        let exec = SimExecutor::with_plan(9, 3, FaultPlan::parse("starve:1").unwrap());
        let (_, step) = budgeted(vec![2, 6, 2]);
        exec.drive(exec.workers(), &step);
        let schedule = exec.schedule();
        // Worker 1 must occupy a full prefix (its budget + its Done step).
        assert_eq!(&schedule[..7], &[1u32; 7], "schedule: {schedule:?}");
    }

    #[test]
    fn slow_worker_runs_only_when_alone() {
        let exec = SimExecutor::with_plan(11, 2, FaultPlan::parse("slow:1").unwrap());
        let (_, step) = budgeted(vec![3, 3]);
        exec.drive(exec.workers(), &step);
        let schedule = exec.schedule();
        // With worker 0 live, worker 1 is never chosen: all of 0's
        // steps come first, then all of 1's.
        assert_eq!(schedule, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn successive_drives_are_separated_and_derived() {
        let exec = SimExecutor::new(21, 2);
        for _ in 0..2 {
            let (_, step) = budgeted(vec![2, 2]);
            exec.drive(exec.workers(), &step);
        }
        let schedule = exec.schedule();
        let boundaries = schedule.iter().filter(|&&w| w == DRIVE_BOUNDARY).count();
        assert_eq!(boundaries, 1, "schedule: {schedule:?}");
    }

    #[test]
    fn from_seed_is_reproducible_and_bounded() {
        for seed in 0..64u64 {
            let a = SimExecutor::from_seed(seed, 16);
            let b = SimExecutor::from_seed(seed, 16);
            assert_eq!(a.workers(), b.workers());
            assert_eq!(a.plan(), b.plan());
            assert!((2..=5).contains(&a.workers()));
        }
    }

    #[test]
    fn workers_clamp_to_one() {
        assert_eq!(SimExecutor::new(0, 0).workers(), 1);
    }
}
