//! The seed-sweep harness: run a DST property over many seeds, report
//! the failing seed for one-command replay.
//!
//! This mirrors the `streamsim-quickcheck` workflow (the two share a
//! philosophy: deterministic generation makes shrinking unnecessary),
//! but with its own environment variables so a DST replay does not
//! perturb ordinary property tests running in the same process tree:
//!
//! * `STREAMSIM_DST_SEED=<hex or dec>` — run every sweep once, with
//!   exactly that seed and no panic catching (failure replay);
//! * `STREAMSIM_DST_SEEDS=<n>` — override the number of seeds swept.
//!
//! A failing sweep prints
//!
//! ```text
//! [streamsim-dst] sweep 'panic_payload_never_masked' failed on seed 17
//!     of 200 (seed 0x4f3a...); replay with STREAMSIM_DST_SEED=0x4f3a...
//! ```
//!
//! and re-raises the original panic payload.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use streamsim_prng::SplitMix64;

/// Seeds swept per property unless overridden — "a few hundred", kept
/// small enough that the full DST suite stays in tier-1 time budget.
pub const DEFAULT_SWEEP_SEEDS: u64 = 200;

/// Runs `case` over [`DEFAULT_SWEEP_SEEDS`] derived seeds (see
/// [`sweep_with`]).
pub fn sweep(name: &str, case: impl FnMut(u64)) {
    sweep_with(name, DEFAULT_SWEEP_SEEDS, case);
}

/// Runs `case` once per derived seed, reporting the failing seed on the
/// first panic and re-raising it.
///
/// The seed passed to `case` is the *replay* seed: running with
/// `STREAMSIM_DST_SEED` set to the printed value calls `case` exactly
/// once with that value, so a case must derive everything (worker
/// count, fault plan, schedule) from its argument alone — which is
/// precisely what [`crate::SimExecutor::from_seed`] does.
pub fn sweep_with(name: &str, seeds: u64, mut case: impl FnMut(u64)) {
    if let Some(seed) = replay_seed() {
        eprintln!("[streamsim-dst] replaying '{name}' with STREAMSIM_DST_SEED={seed:#x}");
        case(seed);
        return;
    }
    let seeds = seed_count().unwrap_or(seeds).max(1);

    // Mix the sweep name into the seed stream so two sweeps in one test
    // binary never see correlated runs (same scheme as quickcheck).
    let mut mix = SplitMix64::new(0xD57_5EED_u64);
    for b in name.bytes() {
        mix = SplitMix64::new(mix.next() ^ u64::from(b));
    }
    let base = mix.next();

    for i in 0..seeds {
        let seed = SplitMix64::new(base.wrapping_add(i)).next();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(seed))) {
            eprintln!(
                "[streamsim-dst] sweep '{name}' failed on seed {i} of {seeds} \
                 (seed {seed:#018x}); replay with STREAMSIM_DST_SEED={seed:#x}"
            );
            resume_unwind(payload);
        }
    }
}

/// The replay seed from `STREAMSIM_DST_SEED`, if set (hex with `0x`
/// prefix, or decimal).
pub fn replay_seed() -> Option<u64> {
    let raw = std::env::var("STREAMSIM_DST_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    Some(parsed.unwrap_or_else(|_| panic!("STREAMSIM_DST_SEED is not a valid u64: {raw:?}")))
}

fn seed_count() -> Option<u64> {
    let raw = std::env::var("STREAMSIM_DST_SEEDS").ok()?;
    Some(
        raw.trim()
            .parse()
            .unwrap_or_else(|_| panic!("STREAMSIM_DST_SEEDS is not a valid u64: {raw:?}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_the_requested_seed_count() {
        let mut runs = 0u64;
        sweep_with("count_probe", 37, |_| runs += 1);
        assert_eq!(runs, 37);
    }

    #[test]
    fn seeds_are_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            sweep_with("determinism_probe", 16, |seed| seen.push(seed));
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_sweeps_get_different_seed_streams() {
        let first = |name: &str| {
            let mut v = 0;
            sweep_with(name, 1, |seed| v = seed);
            v
        };
        assert_ne!(first("sweep_a"), first("sweep_b"));
    }

    #[test]
    fn failures_propagate_with_their_payload() {
        let result = catch_unwind(|| {
            sweep_with("always_fails", 8, |seed| {
                assert_ne!(seed, seed, "intentional failure");
            });
        });
        assert!(result.is_err());
    }
}
