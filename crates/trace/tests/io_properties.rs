//! Property-based tests for the trace formats and the time sampler,
//! on the in-tree `streamsim-quickcheck` harness.

use streamsim_prng::quickcheck::{check, Gen};
use streamsim_prng::Rng;

use streamsim_trace::io::{read_trace, read_trace_compressed, write_trace, write_trace_compressed};
use streamsim_trace::{Access, AccessKind, Addr, TimeSampler};

fn arbitrary_trace(g: &mut Gen, max_len: usize) -> Vec<Access> {
    g.vec(0..max_len, |g| {
        let addr = g.gen_range(0u64..1 << 62);
        let kind = g.pick(&[AccessKind::Load, AccessKind::Store, AccessKind::IFetch]);
        Access::new(Addr::new(addr), kind)
    })
}

/// The raw format round-trips any trace with addresses below 2^62.
#[test]
fn raw_round_trips() {
    check("raw_round_trips", |g| {
        let trace = arbitrary_trace(g, 200);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), trace);
    });
}

/// The compressed format round-trips any trace, including wild deltas
/// that need full-width varints.
#[test]
fn compressed_round_trips() {
    check("compressed_round_trips", |g| {
        let trace = arbitrary_trace(g, 200);
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        assert_eq!(read_trace_compressed(&buf[..]).unwrap(), trace);
    });
}

/// Compressed output is never catastrophically larger than raw: at most
/// 11 bytes per record (1 kind byte + a 10-byte varint) plus the header.
#[test]
fn compressed_size_is_bounded() {
    check("compressed_size_is_bounded", |g| {
        let trace = arbitrary_trace(g, 200);
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        assert!(buf.len() <= 16 + trace.len() * 11);
    });
}

/// Truncating a compressed stream anywhere after the header yields an
/// error, never a silently short trace.
#[test]
fn truncation_is_detected() {
    check("truncation_is_detected", |g| {
        let trace = arbitrary_trace(g, 100);
        g.assume(!trace.is_empty());
        let cut = g.gen_range(0usize..200);
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        let cut = 16 + cut % (buf.len() - 16);
        g.assume(cut < buf.len());
        buf.truncate(cut);
        assert!(read_trace_compressed(&buf[..]).is_err());
    });
}

/// The sampler keeps exactly the references whose position falls in an
/// "on" window, in order.
#[test]
fn sampler_matches_reference_model() {
    check("sampler_matches_reference_model", |g| {
        let trace = arbitrary_trace(g, 150);
        let on = g.gen_range(1u64..20);
        let off = g.gen_range(0u64..20);
        let sampled: Vec<Access> = TimeSampler::new(trace.iter().copied(), on, off).collect();
        let expected: Vec<Access> = trace
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64) % (on + off) < on)
            .map(|(_, &a)| a)
            .collect();
        assert_eq!(sampled, expected);
    });
}
