//! Property-based tests for the trace formats and the time sampler.

use proptest::prelude::*;

use streamsim_trace::io::{
    read_trace, read_trace_compressed, write_trace, write_trace_compressed,
};
use streamsim_trace::{Access, AccessKind, Addr, TimeSampler};

fn arbitrary_trace(max_len: usize) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (
            0u64..(1u64 << 62),
            prop_oneof![
                Just(AccessKind::Load),
                Just(AccessKind::Store),
                Just(AccessKind::IFetch)
            ],
        ),
        0..max_len,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(a, k)| Access::new(Addr::new(a), k))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The raw format round-trips any trace with addresses below 2^62.
    #[test]
    fn raw_round_trips(trace in arbitrary_trace(200)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        prop_assert_eq!(read_trace(&buf[..]).unwrap(), trace);
    }

    /// The compressed format round-trips any trace, including wild
    /// deltas that need full-width varints.
    #[test]
    fn compressed_round_trips(trace in arbitrary_trace(200)) {
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        prop_assert_eq!(read_trace_compressed(&buf[..]).unwrap(), trace);
    }

    /// Compressed output is never catastrophically larger than raw: at
    /// most 11 bytes per record (1 kind byte + a 10-byte varint) plus the
    /// header.
    #[test]
    fn compressed_size_is_bounded(trace in arbitrary_trace(200)) {
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        prop_assert!(buf.len() <= 16 + trace.len() * 11);
    }

    /// Truncating a compressed stream anywhere after the header yields an
    /// error, never a silently short trace.
    #[test]
    fn truncation_is_detected(trace in arbitrary_trace(100), cut in 0usize..200) {
        prop_assume!(!trace.is_empty());
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        let cut = 16 + cut % (buf.len() - 16);
        prop_assume!(cut < buf.len());
        buf.truncate(cut);
        prop_assert!(read_trace_compressed(&buf[..]).is_err());
    }

    /// The sampler keeps exactly the references whose position falls in
    /// an "on" window, in order.
    #[test]
    fn sampler_matches_reference_model(
        trace in arbitrary_trace(150),
        on in 1u64..20,
        off in 0u64..20,
    ) {
        let sampled: Vec<Access> =
            TimeSampler::new(trace.iter().copied(), on, off).collect();
        let expected: Vec<Access> = trace
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64) % (on + off) < on)
            .map(|(_, &a)| a)
            .collect();
        prop_assert_eq!(sampled, expected);
    }
}
