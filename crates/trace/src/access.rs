//! Memory references: the unit items of a trace.

use std::fmt;

use crate::Addr;

/// The kind of a memory reference.
///
/// The paper's stream buffers are *unified*: instruction fetches and data
/// references share the same set of streams (§5). The simulators still need
/// to distinguish the kinds to route references to the split L1
/// instruction/data caches and to mark lines dirty on stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A data load.
    #[default]
    Load,
    /// A data store.
    Store,
    /// An instruction fetch.
    IFetch,
}

impl AccessKind {
    /// Returns `true` for data references (loads and stores).
    pub const fn is_data(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }

    /// Returns `true` for stores.
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// All kinds, in a fixed order usable for indexing per-kind counters.
    pub const ALL: [AccessKind; 3] = [AccessKind::Load, AccessKind::Store, AccessKind::IFetch];

    /// A stable small integer for this kind (index into [`AccessKind::ALL`]).
    pub const fn as_index(self) -> usize {
        match self {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::IFetch => 2,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::IFetch => "ifetch",
        };
        f.write_str(s)
    }
}

/// One memory reference: an address plus the kind of access.
///
/// # Example
///
/// ```
/// use streamsim_trace::{Access, AccessKind, Addr};
///
/// let a = Access::store(Addr::new(0x40));
/// assert_eq!(a.kind, AccessKind::Store);
/// assert!(a.kind.is_data());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Access {
    /// The byte address referenced.
    pub addr: Addr,
    /// Load, store or instruction fetch.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a reference of the given kind.
    pub const fn new(addr: Addr, kind: AccessKind) -> Self {
        Access { addr, kind }
    }

    /// Creates a data load reference.
    pub const fn load(addr: Addr) -> Self {
        Access::new(addr, AccessKind::Load)
    }

    /// Creates a data store reference.
    pub const fn store(addr: Addr) -> Self {
        Access::new(addr, AccessKind::Store)
    }

    /// Creates an instruction fetch reference.
    pub const fn ifetch(addr: Addr) -> Self {
        Access::new(addr, AccessKind::IFetch)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Access::load(Addr::new(1)).kind, AccessKind::Load);
        assert_eq!(Access::store(Addr::new(1)).kind, AccessKind::Store);
        assert_eq!(Access::ifetch(Addr::new(1)).kind, AccessKind::IFetch);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
        assert!(!AccessKind::IFetch.is_data());
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Load.is_store());
    }

    #[test]
    fn kind_indexing_matches_all() {
        for (i, k) in AccessKind::ALL.iter().enumerate() {
            assert_eq!(k.as_index(), i);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Access::load(Addr::new(16)).to_string(), "load 0x10");
        assert_eq!(Access::ifetch(Addr::new(0)).to_string(), "ifetch 0x0");
    }
}
