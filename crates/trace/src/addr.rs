//! Byte, word and cache-block address types.
//!
//! The paper's hardware operates on three granularities: the processor
//! issues *byte* addresses, the non-unit-stride ("czone") detection logic
//! operates on *word* addresses, and caches and stream buffers track *cache
//! blocks*. Keeping the three as distinct newtypes prevents the classic
//! simulator bug of mixing granularities in arithmetic.

use std::fmt;

/// A 64-bit byte address in the simulated physical address space.
///
/// `Addr` is a plain newtype over `u64`; use [`Addr::block`] and
/// [`Addr::word`] to convert to coarser granularities.
///
/// # Example
///
/// ```
/// use streamsim_trace::{Addr, BlockSize};
///
/// let block = BlockSize::new(64)?;
/// let a = Addr::new(0x1004);
/// assert_eq!(a.block(block).index(), 0x1000 / 64);
/// assert_eq!(a.offset_in_block(block), 4);
/// # Ok::<(), streamsim_trace::GranularityError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache block this byte address falls in.
    pub const fn block(self, size: BlockSize) -> BlockAddr {
        BlockAddr(self.0 >> size.log2())
    }

    /// Returns the machine word this byte address falls in.
    pub const fn word(self, size: WordSize) -> WordAddr {
        WordAddr(self.0 >> size.log2())
    }

    /// Returns the byte offset of this address within its cache block.
    pub const fn offset_in_block(self, size: BlockSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Returns the address advanced by `delta` bytes (signed), saturating at
    /// the ends of the address space.
    pub const fn offset(self, delta: i64) -> Addr {
        Addr(self.0.saturating_add_signed(delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A cache-block-granular address: the byte address shifted right by
/// `log2(block size)`.
///
/// Consecutive `BlockAddr` indices denote consecutive cache blocks, so the
/// unit-stride stream buffer logic is simply `block.next()`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block index.
    pub const fn from_index(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Returns the raw block index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this block.
    pub const fn base_addr(self, size: BlockSize) -> Addr {
        Addr(self.0 << size.log2())
    }

    /// Returns the immediately following cache block.
    pub const fn next(self) -> BlockAddr {
        BlockAddr(self.0 + 1)
    }

    /// Returns the block advanced by `delta` blocks (signed), saturating.
    pub const fn offset(self, delta: i64) -> BlockAddr {
        BlockAddr(self.0.saturating_add_signed(delta))
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {:#x}", self.0)
    }
}

/// A word-granular address, used by the czone stride-detection logic
/// exactly as in the paper ("we partition each word address into two
/// parts").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordAddr(u64);

impl WordAddr {
    /// Creates a word address from a raw word index.
    pub const fn from_index(index: u64) -> Self {
        WordAddr(index)
    }

    /// Returns the raw word index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this word.
    pub const fn base_addr(self, size: WordSize) -> Addr {
        Addr(self.0 << size.log2())
    }

    /// Returns the high-order "tag" bits above a czone of `czone_bits` bits.
    ///
    /// Two word addresses with equal tags fall in the same czone partition.
    pub const fn czone_tag(self, czone_bits: u32) -> u64 {
        if czone_bits >= 64 {
            0
        } else {
            self.0 >> czone_bits
        }
    }

    /// Returns the signed distance in words from `other` to `self`.
    pub const fn delta(self, other: WordAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word {:#x}", self.0)
    }
}

/// Error returned when constructing a [`BlockSize`] or [`WordSize`] from a
/// value that is not a power of two within the supported range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GranularityError {
    value: u64,
    what: &'static str,
}

impl fmt::Display for GranularityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} {}: must be a power of two between 1 and 2^32",
            self.what, self.value
        )
    }
}

impl std::error::Error for GranularityError {}

macro_rules! granularity {
    ($(#[$doc:meta])* $name:ident, $what:expr, $default:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name {
            log2: u32,
        }

        impl $name {
            /// Creates a granularity of `bytes` bytes.
            ///
            /// # Errors
            ///
            /// Returns [`GranularityError`] if `bytes` is not a power of two
            /// between 1 and 2^32.
            pub const fn new(bytes: u64) -> Result<Self, GranularityError> {
                if bytes.is_power_of_two() && bytes <= (1 << 32) {
                    Ok(Self {
                        log2: bytes.trailing_zeros(),
                    })
                } else {
                    Err(GranularityError { value: bytes, what: $what })
                }
            }

            /// Creates a granularity of `2^log2` bytes.
            pub const fn from_log2(log2: u32) -> Self {
                assert!(log2 <= 32);
                Self { log2 }
            }

            /// Size in bytes.
            pub const fn bytes(self) -> u64 {
                1 << self.log2
            }

            /// Base-2 logarithm of the size in bytes.
            pub const fn log2(self) -> u32 {
                self.log2
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::from_log2($default)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} B", self.bytes())
            }
        }
    };
}

granularity!(
    /// A validated power-of-two cache block size.
    ///
    /// Defaults to 32 bytes, the primary-cache block size used throughout
    /// the reproduction (the paper's L2 comparison also uses 64- and
    /// 128-byte blocks).
    BlockSize,
    "block size",
    5
);

granularity!(
    /// A validated power-of-two machine word size.
    ///
    /// Defaults to 4 bytes, matching the 32-bit-era machines the paper
    /// simulated; the czone stride detector measures strides in words.
    WordSize,
    "word size",
    2
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_rejects_non_powers() {
        assert!(BlockSize::new(0).is_err());
        assert!(BlockSize::new(3).is_err());
        assert!(BlockSize::new(48).is_err());
        assert!(BlockSize::new(1 << 33).is_err());
        assert_eq!(BlockSize::new(64).unwrap().log2(), 6);
    }

    #[test]
    fn granularity_error_displays() {
        let err = BlockSize::new(3).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("block size"), "{msg}");
        assert!(msg.contains('3'), "{msg}");
    }

    #[test]
    fn addr_block_mapping() {
        let b32 = BlockSize::new(32).unwrap();
        assert_eq!(Addr::new(0).block(b32).index(), 0);
        assert_eq!(Addr::new(31).block(b32).index(), 0);
        assert_eq!(Addr::new(32).block(b32).index(), 1);
        assert_eq!(Addr::new(0x1_0000).block(b32).index(), 0x1_0000 / 32);
        assert_eq!(Addr::new(33).offset_in_block(b32), 1);
    }

    #[test]
    fn addr_word_mapping() {
        let w = WordSize::new(4).unwrap();
        assert_eq!(Addr::new(7).word(w).index(), 1);
        assert_eq!(Addr::new(8).word(w).index(), 2);
        assert_eq!(WordAddr::from_index(2).base_addr(w), Addr::new(8));
    }

    #[test]
    fn addr_offset_saturates() {
        assert_eq!(Addr::new(4).offset(-8), Addr::new(0));
        assert_eq!(Addr::new(u64::MAX).offset(2), Addr::new(u64::MAX));
        assert_eq!(Addr::new(100).offset(-36), Addr::new(64));
    }

    #[test]
    fn block_addr_navigation() {
        let b = BlockAddr::from_index(10);
        assert_eq!(b.next().index(), 11);
        assert_eq!(b.offset(-3).index(), 7);
        assert_eq!(b.offset(-30).index(), 0);
        let b64 = BlockSize::new(64).unwrap();
        assert_eq!(b.base_addr(b64), Addr::new(640));
    }

    #[test]
    fn czone_tag_partitions_words() {
        let a = WordAddr::from_index(0x12345);
        let b = WordAddr::from_index(0x12399);
        // Same high bits above an 8-bit czone? 0x123 vs 0x123.
        assert_eq!(a.czone_tag(8), b.czone_tag(8));
        assert_ne!(a.czone_tag(4), b.czone_tag(4));
        assert_eq!(a.czone_tag(64), 0);
    }

    #[test]
    fn word_delta_is_signed() {
        let a = WordAddr::from_index(100);
        let b = WordAddr::from_index(140);
        assert_eq!(b.delta(a), 40);
        assert_eq!(a.delta(b), -40);
        assert_eq!(a.delta(a), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:X}", Addr::new(255)), "FF");
        assert_eq!(BlockSize::default().to_string(), "32 B");
        assert_eq!(WordSize::default().to_string(), "4 B");
        assert_eq!(BlockAddr::from_index(1).to_string(), "block 0x1");
        assert_eq!(WordAddr::from_index(1).to_string(), "word 0x1");
    }

    #[test]
    fn default_granularities() {
        assert_eq!(BlockSize::default().bytes(), 32);
        assert_eq!(WordSize::default().bytes(), 4);
    }
}
