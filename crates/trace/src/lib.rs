//! Memory reference traces: addresses, accesses, sampling and trace statistics.
//!
//! This crate is the foundation of the `streamsim` workspace, a trace-driven
//! reproduction of Palacharla & Kessler, *Evaluating Stream Buffers as a
//! Secondary Cache Replacement* (ISCA 1994). Everything the simulators
//! consume is expressed in terms of the types defined here:
//!
//! * [`Addr`] — a 64-bit byte address,
//! * [`BlockAddr`] — a cache-block-granular address,
//! * [`Access`] — one memory reference (load, store or instruction fetch),
//! * [`BlockSize`] / [`WordSize`] — validated power-of-two granularities,
//! * [`TimeSampler`] — the paper's 10 000-on / 90 000-off time-sampling
//!   scheme as a reusable adaptor,
//! * [`TraceStats`] — descriptive statistics over a reference stream,
//! * [`io`] — a compact binary trace format for storing reference streams.
//!
//! # Example
//!
//! ```
//! use streamsim_trace::{Access, Addr, BlockSize, TimeSampler};
//!
//! let block = BlockSize::new(32)?;
//! let trace = (0..8u64).map(|i| Access::load(Addr::new(i * 8)));
//!
//! // Sample 2 references on, 2 off.
//! let sampled: Vec<Access> = TimeSampler::new(trace, 2, 2).collect();
//! assert_eq!(sampled.len(), 4);
//! assert_eq!(sampled[0].addr.block(block).index(), 0);
//! # Ok::<(), streamsim_trace::GranularityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod addr;
pub mod io;
mod sample;
mod stats;

pub use access::{Access, AccessKind};
pub use addr::{Addr, BlockAddr, BlockSize, GranularityError, WordAddr, WordSize};
pub use sample::{sampling_sink, ChunkSampler, TimeSampler};
pub use stats::{StrideClass, StrideHistogram, TraceStats};
