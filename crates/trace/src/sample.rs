//! Time sampling of reference traces.
//!
//! The paper reduced trace sizes by *time sampling* (Kessler, Hill & Wood
//! [11]): tracing is switched on for 10 000 references, then off for
//! 90 000, so 10 % of the full trace is observed. [`TimeSampler`] implements
//! the same scheme as an iterator adaptor so it can wrap any reference
//! source.

use crate::Access;

/// Iterator adaptor that passes through `on` references, then drops `off`
/// references, repeating.
///
/// The paper's configuration is `TimeSampler::new(trace, 10_000, 90_000)`.
/// `off == 0` passes everything through.
///
/// # Example
///
/// ```
/// use streamsim_trace::{Access, Addr, TimeSampler};
///
/// let refs = (0..10u64).map(|i| Access::load(Addr::new(i)));
/// let kept: Vec<u64> = TimeSampler::new(refs, 2, 3).map(|a| a.addr.raw()).collect();
/// assert_eq!(kept, [0, 1, 5, 6]);
/// ```
#[derive(Clone, Debug)]
pub struct TimeSampler<I> {
    inner: I,
    on: u64,
    off: u64,
    /// How many more references remain in the current "on" window;
    /// when it reaches zero we skip `off` references and reset.
    remaining_on: u64,
}

impl<I> TimeSampler<I> {
    /// Creates a sampler that keeps `on` references then skips `off`,
    /// repeating for the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if `on == 0` (the sampler would produce nothing forever).
    pub fn new(inner: I, on: u64, off: u64) -> Self {
        assert!(on > 0, "sampling window must keep at least one reference");
        TimeSampler {
            inner,
            on,
            off,
            remaining_on: on,
        }
    }

    /// Creates the paper's 10 000-on / 90 000-off (10 %) sampler.
    pub fn paper_default(inner: I) -> Self {
        TimeSampler::new(inner, 10_000, 90_000)
    }

    /// The fraction of references kept, in `(0, 1]`.
    pub fn sampling_fraction(&self) -> f64 {
        self.on as f64 / (self.on + self.off) as f64
    }

    /// Consumes the sampler, returning the underlying iterator.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: Iterator<Item = Access>> Iterator for TimeSampler<I> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining_on == 0 {
            for _ in 0..self.off {
                self.inner.next()?;
            }
            self.remaining_on = self.on;
        }
        let item = self.inner.next()?;
        self.remaining_on -= 1;
        Some(item)
    }
}

/// A sampling *sink* wrapper for push-style trace generation.
///
/// The workload kernels in `streamsim-workloads` push references into a
/// sink closure rather than materialising iterators; `SamplingSink` applies
/// the same on/off windowing in push direction.
///
/// # Example
///
/// ```
/// use streamsim_trace::{Access, Addr};
/// use streamsim_trace::sampling_sink;
///
/// let mut kept = Vec::new();
/// {
///     let mut sink = sampling_sink(2, 3, |a: Access| kept.push(a.addr.raw()));
///     for i in 0..10u64 {
///         sink(Access::load(Addr::new(i)));
///     }
/// }
/// assert_eq!(kept, [0, 1, 5, 6]);
/// ```
pub fn sampling_sink<F: FnMut(Access)>(on: u64, off: u64, mut inner: F) -> impl FnMut(Access) {
    assert!(on > 0, "sampling window must keep at least one reference");
    let period = on + off;
    let mut phase: u64 = 0;
    move |access| {
        if phase < on {
            inner(access);
        }
        phase += 1;
        if phase == period {
            phase = 0;
        }
    }
}

/// On/off time-sampling over *chunks* of references.
///
/// The chunked recording path hands whole slices to the consumer, so
/// per-reference windowing would re-introduce a branch per reference.
/// `ChunkSampler` instead splits each incoming chunk into kept and
/// skipped sub-slices by range arithmetic — the kept sub-slices are
/// exactly the references [`sampling_sink`] with the same `(on, off)`
/// would have passed through (pinned by a property test).
///
/// # Example
///
/// ```
/// use streamsim_trace::{Access, Addr, ChunkSampler};
///
/// let refs: Vec<Access> = (0..10u64).map(|i| Access::load(Addr::new(i))).collect();
/// let mut kept = Vec::new();
/// let mut s = ChunkSampler::new(2, 3);
/// s.sample(&refs, &mut |keep| kept.extend(keep.iter().map(|a| a.addr.raw())));
/// assert_eq!(kept, [0, 1, 5, 6]);
/// ```
#[derive(Clone, Debug)]
pub struct ChunkSampler {
    on: u64,
    period: u64,
    /// Position within the current on+off period (0 ≤ phase < period).
    phase: u64,
}

impl ChunkSampler {
    /// Creates a sampler that keeps `on` references then skips `off`,
    /// repeating — the same windowing as [`sampling_sink`].
    ///
    /// # Panics
    ///
    /// Panics if `on == 0` (the sampler would keep nothing forever).
    pub fn new(on: u64, off: u64) -> Self {
        assert!(on > 0, "sampling window must keep at least one reference");
        ChunkSampler {
            on,
            period: on + off,
            phase: 0,
        }
    }

    /// Feeds one chunk through the sampling window, handing every kept
    /// sub-slice to `keep` in order. The window position persists across
    /// chunks, so chunk boundaries never affect which references survive.
    pub fn sample(&mut self, chunk: &[Access], keep: &mut dyn FnMut(&[Access])) {
        let mut pos = 0usize;
        let len = chunk.len();
        while pos < len {
            let remaining = (len - pos) as u64;
            if self.phase < self.on {
                let take = (self.on - self.phase).min(remaining) as usize;
                keep(&chunk[pos..pos + take]);
                pos += take;
                self.phase += take as u64;
            } else {
                let skip = (self.period - self.phase).min(remaining) as usize;
                pos += skip;
                self.phase += skip as u64;
            }
            if self.phase == self.period {
                self.phase = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn seq(n: u64) -> impl Iterator<Item = Access> {
        (0..n).map(|i| Access::load(Addr::new(i)))
    }

    #[test]
    fn keeps_on_window_and_skips_off() {
        let kept: Vec<u64> = TimeSampler::new(seq(20), 3, 2)
            .map(|a| a.addr.raw())
            .collect();
        assert_eq!(kept, [0, 1, 2, 5, 6, 7, 10, 11, 12, 15, 16, 17]);
    }

    #[test]
    fn off_zero_passes_everything() {
        let kept: Vec<Access> = TimeSampler::new(seq(7), 4, 0).collect();
        assert_eq!(kept.len(), 7);
    }

    #[test]
    fn stops_when_inner_exhausted_mid_skip() {
        // 5 kept of the first window, inner ends during the skip.
        let kept: Vec<Access> = TimeSampler::new(seq(8), 5, 10).collect();
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn paper_default_is_ten_percent() {
        let s = TimeSampler::paper_default(seq(0));
        assert!((s.sampling_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one reference")]
    fn zero_on_window_panics() {
        let _ = TimeSampler::new(seq(1), 0, 5);
    }

    #[test]
    fn sink_matches_iterator_semantics() {
        for (on, off) in [(1, 1), (3, 2), (10, 90), (4, 0)] {
            let via_iter: Vec<u64> = TimeSampler::new(seq(100), on, off)
                .map(|a| a.addr.raw())
                .collect();
            let mut via_sink = Vec::new();
            {
                let mut sink = sampling_sink(on, off, |a: Access| via_sink.push(a.addr.raw()));
                for a in seq(100) {
                    sink(a);
                }
            }
            assert_eq!(via_iter, via_sink, "on={on} off={off}");
        }
    }

    #[test]
    fn chunk_sampler_matches_sink_across_chunk_boundaries() {
        for (on, off) in [(1u64, 1u64), (3, 2), (10, 90), (4, 0), (7, 13)] {
            let refs: Vec<Access> = seq(500).collect();
            let mut via_sink = Vec::new();
            {
                let mut sink = sampling_sink(on, off, |a: Access| via_sink.push(a.addr.raw()));
                for &a in &refs {
                    sink(a);
                }
            }
            for chunk_size in [1usize, 3, 7, 64, 500, 1000] {
                let mut via_chunks = Vec::new();
                let mut s = ChunkSampler::new(on, off);
                for chunk in refs.chunks(chunk_size) {
                    s.sample(chunk, &mut |keep| {
                        via_chunks.extend(keep.iter().map(|a| a.addr.raw()))
                    });
                }
                assert_eq!(via_sink, via_chunks, "on={on} off={off} chunk={chunk_size}");
            }
        }
    }

    #[test]
    fn chunk_sampler_ignores_empty_chunks() {
        let mut s = ChunkSampler::new(2, 2);
        let mut calls = 0;
        s.sample(&[], &mut |_| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    #[should_panic(expected = "at least one reference")]
    fn chunk_sampler_zero_on_panics() {
        let _ = ChunkSampler::new(0, 5);
    }

    #[test]
    fn into_inner_returns_rest() {
        let mut s = TimeSampler::new(seq(10), 1, 0);
        let _ = s.next();
        let rest: Vec<Access> = s.into_inner().collect();
        assert_eq!(rest.len(), 9);
    }
}
