//! A compact binary on-disk format for reference traces.
//!
//! The paper generated traces with Shade and stored sampled trace files;
//! this module plays the same role for our synthetic traces so expensive
//! workload generation can be done once and replayed many times.
//!
//! Two formats are provided:
//!
//! * **Raw (v1)**: a 16-byte header (`b"SSTR"` magic, `u32` version,
//!   `u64` record count, little-endian) followed by one `u64` per
//!   reference with the [`AccessKind`] packed into the top two bits
//!   ([`write_trace`] / [`read_trace`]). Addresses are limited to 62
//!   bits, far beyond any simulated footprint.
//! * **Delta-compressed (v2)**: the same header (version 2) followed by
//!   one varint-encoded record per reference: the kind plus the
//!   zigzag-encoded address delta from the previous reference of that
//!   kind ([`write_trace_compressed`] / [`read_trace_compressed`]).
//!   Reference streams are dominated by small per-kind strides, so this
//!   typically shrinks traces 3–6× with no loss.
//!
//! Readers and writers take `R: Read` / `W: Write` by value; pass `&mut r`
//! to keep using the underlying stream afterwards.
//!
//! # Example
//!
//! ```
//! use streamsim_trace::{Access, Addr};
//! use streamsim_trace::io::{read_trace, write_trace};
//!
//! # fn main() -> std::io::Result<()> {
//! let trace = vec![Access::load(Addr::new(64)), Access::store(Addr::new(96))];
//! let mut buf = Vec::new();
//! write_trace(&mut buf, &trace)?;
//! assert_eq!(read_trace(&buf[..])?, trace);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

use crate::{Access, AccessKind, Addr};

const MAGIC: [u8; 4] = *b"SSTR";
const VERSION: u32 = 1;
const KIND_SHIFT: u32 = 62;
const ADDR_MASK: u64 = (1 << KIND_SHIFT) - 1;

fn encode(access: Access) -> u64 {
    let kind = access.kind.as_index() as u64;
    (kind << KIND_SHIFT) | (access.addr.raw() & ADDR_MASK)
}

fn decode(word: u64) -> io::Result<Access> {
    let kind = match word >> KIND_SHIFT {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::IFetch,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid access kind tag {other}"),
            ))
        }
    };
    Ok(Access::new(Addr::new(word & ADDR_MASK), kind))
}

/// Writes a trace to `writer` in the `SSTR` binary format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer. Addresses above
/// 2^62 − 1 are rejected with [`io::ErrorKind::InvalidInput`].
pub fn write_trace<W: Write>(mut writer: W, trace: &[Access]) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for &access in trace {
        if access.addr.raw() > ADDR_MASK {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address {} exceeds the 62-bit trace format", access.addr),
            ));
        }
        writer.write_all(&encode(access).to_le_bytes())?;
    }
    writer.flush()
}

/// Reads a complete trace from `reader`.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] if the magic, version or a record
/// is malformed, or if the stream ends before `count` records are read, and
/// propagates underlying I/O errors.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Vec<Access>> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a streamsim trace (bad magic)",
        ));
    }
    let mut version = [0u8; 4];
    reader.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let mut count = [0u8; 8];
    reader.read_exact(&mut count)?;
    let count = u64::from_le_bytes(count);
    let mut trace = Vec::with_capacity(usize::try_from(count).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "trace too large for this platform",
        )
    })?);
    let mut word = [0u8; 8];
    for _ in 0..count {
        reader.read_exact(&mut word)?;
        trace.push(decode(u64::from_le_bytes(word))?);
    }
    Ok(trace)
}

const VERSION_COMPRESSED: u32 = 2;

/// Zigzag-encodes a signed delta into an unsigned varint payload.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint<W: Write>(writer: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return writer.write_all(&[byte]);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint longer than 64 bits",
            ));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Writes a trace in the delta-compressed (v2) format.
///
/// Each record is one byte of kind tag followed by the zigzag-varint
/// delta from the previous address *of the same kind* — instruction
/// fetches and data references compress independently, since each is
/// near-sequential on its own.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace_compressed<W: Write>(mut writer: W, trace: &[Access]) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION_COMPRESSED.to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut last = [0u64; 3];
    for &access in trace {
        let kind = access.kind.as_index();
        let delta = access.addr.raw().wrapping_sub(last[kind]) as i64;
        last[kind] = access.addr.raw();
        writer.write_all(&[kind as u8])?;
        write_varint(&mut writer, zigzag(delta))?;
    }
    writer.flush()
}

/// Reads a delta-compressed (v2) trace.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a bad magic, version or
/// kind tag, and propagates underlying I/O errors.
pub fn read_trace_compressed<R: Read>(mut reader: R) -> io::Result<Vec<Access>> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a streamsim trace (bad magic)",
        ));
    }
    let mut version = [0u8; 4];
    reader.read_exact(&mut version)?;
    if u32::from_le_bytes(version) != VERSION_COMPRESSED {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a compressed (v2) streamsim trace",
        ));
    }
    let mut count = [0u8; 8];
    reader.read_exact(&mut count)?;
    let count = u64::from_le_bytes(count);
    let mut trace = Vec::with_capacity(usize::try_from(count).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "trace too large for this platform",
        )
    })?);
    let mut last = [0u64; 3];
    for _ in 0..count {
        let mut tag = [0u8; 1];
        reader.read_exact(&mut tag)?;
        let kind = match tag[0] {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            2 => AccessKind::IFetch,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("invalid access kind tag {other}"),
                ))
            }
        };
        let delta = unzigzag(read_varint(&mut reader)?);
        let addr = last[kind.as_index()].wrapping_add(delta as u64);
        last[kind.as_index()] = addr;
        trace.push(Access::new(Addr::new(addr), kind));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<Access> {
        vec![
            Access::load(Addr::new(0)),
            Access::store(Addr::new(0xdead_beef)),
            Access::ifetch(Addr::new(0x4000)),
            Access::load(Addr::new(ADDR_MASK)),
        ]
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), trace);
    }

    #[test]
    fn roundtrip_empty() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), Vec::<Access>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_records() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn rejects_oversized_address() {
        let trace = [Access::load(Addr::new(ADDR_MASK + 1))];
        let err = write_trace(Vec::new(), &trace).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn rejects_invalid_kind_tag() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[Access::load(Addr::new(1))]).unwrap();
        // Overwrite the record's top byte so the kind tag is 3 (invalid).
        let last = buf.len() - 1;
        buf[last] = 0xC0;
        let err = read_trace(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn compressed_roundtrip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &trace).unwrap();
        assert_eq!(read_trace_compressed(&buf[..]).unwrap(), trace);
    }

    #[test]
    fn compressed_roundtrip_empty() {
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &[]).unwrap();
        assert_eq!(
            read_trace_compressed(&buf[..]).unwrap(),
            Vec::<Access>::new()
        );
    }

    #[test]
    fn compression_shrinks_sequential_traces() {
        let trace: Vec<Access> = (0..10_000u64)
            .map(|i| Access::load(Addr::new(0x1000_0000 + i * 8)))
            .collect();
        let mut raw = Vec::new();
        write_trace(&mut raw, &trace).unwrap();
        let mut compressed = Vec::new();
        write_trace_compressed(&mut compressed, &trace).unwrap();
        assert!(
            compressed.len() * 3 < raw.len(),
            "compressed {} vs raw {}",
            compressed.len(),
            raw.len()
        );
        assert_eq!(read_trace_compressed(&compressed[..]).unwrap(), trace);
    }

    #[test]
    fn per_kind_deltas_keep_interleaved_streams_small() {
        // Interleave ifetches with data: per-kind deltas stay tiny even
        // though the combined stream jumps between segments.
        let mut trace = Vec::new();
        for i in 0..5_000u64 {
            trace.push(Access::load(Addr::new(0x1000_0000 + i * 8)));
            trace.push(Access::ifetch(Addr::new(0x40_0000 + (i % 64) * 32)));
        }
        let mut compressed = Vec::new();
        write_trace_compressed(&mut compressed, &trace).unwrap();
        assert!(compressed.len() < trace.len() * 3, "{}", compressed.len());
        assert_eq!(read_trace_compressed(&compressed[..]).unwrap(), trace);
    }

    #[test]
    fn compressed_rejects_raw_and_vice_versa() {
        let trace = sample_trace();
        let mut raw = Vec::new();
        write_trace(&mut raw, &trace).unwrap();
        assert!(read_trace_compressed(&raw[..]).is_err());
        let mut compressed = Vec::new();
        write_trace_compressed(&mut compressed, &trace).unwrap();
        assert!(read_trace(&compressed[..]).is_err());
    }

    #[test]
    fn compressed_rejects_bad_kind_tag() {
        let mut buf = Vec::new();
        write_trace_compressed(&mut buf, &[Access::load(Addr::new(8))]).unwrap();
        buf[16] = 7; // corrupt the kind byte
        assert!(read_trace_compressed(&buf[..]).is_err());
    }

    #[test]
    fn zigzag_is_involutive() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
    }

    #[test]
    fn header_is_sixteen_bytes() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 16);
    }
}
