//! Descriptive statistics over reference traces.
//!
//! These statistics characterise a workload's address stream *before* any
//! cache is simulated: reference counts by kind, touched-footprint size, and
//! the distribution of strides between successive data references. The
//! workload crate uses them in tests to assert that each synthetic kernel
//! has the access-pattern mix its paper counterpart is documented to have
//! (e.g. `fftpde` is dominated by large power-of-two strides, `adm` by
//! irregular gathers).

use std::collections::BTreeMap;
use std::fmt;

use crate::{Access, AccessKind, Addr, BlockSize};

/// Histogram of strides (in bytes) between successive *data* references.
///
/// Strides are bucketed by their magnitude class: zero, unit-block
/// (magnitude smaller than one cache block, i.e. spatially local),
/// small (within 8 blocks), large power-of-two, and irregular.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrideHistogram {
    /// Exact stride counts, capped to the most common strides.
    counts: BTreeMap<i64, u64>,
    /// Total strides observed.
    total: u64,
}

/// Magnitude class of a stride; see [`StrideHistogram::class_fractions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StrideClass {
    /// Stride of exactly zero bytes (re-reference).
    Zero,
    /// Magnitude below one cache block: sequential/spatially-local.
    WithinBlock,
    /// Magnitude within 8 blocks: short-range.
    Near,
    /// Larger magnitude but a multiple of the block size — a candidate for
    /// the paper's non-unit-stride detection.
    LargeStrided,
    /// Anything else: irregular (gathers, pointer chasing).
    Irregular,
}

impl StrideHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the stride from the previous data address to `addr`.
    pub fn record(&mut self, stride: i64) {
        *self.counts.entry(stride).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of strides recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct stride values seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `n` most common strides with their counts, most common first.
    pub fn top(&self, n: usize) -> Vec<(i64, u64)> {
        let mut v: Vec<(i64, u64)> = self.counts.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Classifies a stride relative to a cache block size.
    pub fn classify(stride: i64, block: BlockSize) -> StrideClass {
        let mag = stride.unsigned_abs();
        let block_bytes = block.bytes();
        if stride == 0 {
            StrideClass::Zero
        } else if mag < block_bytes {
            StrideClass::WithinBlock
        } else if mag <= 8 * block_bytes {
            StrideClass::Near
        } else if mag.is_multiple_of(block_bytes) {
            StrideClass::LargeStrided
        } else {
            StrideClass::Irregular
        }
    }

    /// Fraction of strides falling in each class, keyed by class.
    pub fn class_fractions(&self, block: BlockSize) -> BTreeMap<StrideClass, f64> {
        let mut fractions = BTreeMap::new();
        if self.total == 0 {
            return fractions;
        }
        for (&stride, &count) in &self.counts {
            *fractions
                .entry(Self::classify(stride, block))
                .or_insert(0.0) += count as f64;
        }
        for v in fractions.values_mut() {
            *v /= self.total as f64;
        }
        fractions
    }

    /// Fraction of strides in a single class (0.0 if none recorded).
    pub fn class_fraction(&self, class: StrideClass, block: BlockSize) -> f64 {
        self.class_fractions(block)
            .get(&class)
            .copied()
            .unwrap_or(0.0)
    }
}

/// Aggregate statistics over a reference stream.
///
/// # Example
///
/// ```
/// use streamsim_trace::{Access, Addr, TraceStats};
///
/// let mut stats = TraceStats::new();
/// for i in 0..100u64 {
///     stats.observe(Access::load(Addr::new(i * 8)));
/// }
/// assert_eq!(stats.total(), 100);
/// assert_eq!(stats.data_refs(), 100);
/// // 8-byte stride is within a 32-byte block: highly sequential.
/// assert!(stats.strides().class_fraction(
///     streamsim_trace::StrideClass::WithinBlock,
///     Default::default()) > 0.9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    counts: [u64; 3],
    strides: StrideHistogram,
    last_data_addr: Option<Addr>,
    min_addr: Option<Addr>,
    max_addr: Option<Addr>,
}

impl TraceStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one reference.
    pub fn observe(&mut self, access: Access) {
        self.counts[access.kind.as_index()] += 1;
        self.min_addr = Some(self.min_addr.map_or(access.addr, |m| m.min(access.addr)));
        self.max_addr = Some(self.max_addr.map_or(access.addr, |m| m.max(access.addr)));
        if access.kind.is_data() {
            if let Some(prev) = self.last_data_addr {
                self.strides
                    .record(access.addr.raw().wrapping_sub(prev.raw()) as i64);
            }
            self.last_data_addr = Some(access.addr);
        }
    }

    /// Builds statistics from an iterator of references.
    pub fn from_trace<I: IntoIterator<Item = Access>>(trace: I) -> Self {
        let mut stats = Self::new();
        for a in trace {
            stats.observe(a);
        }
        stats
    }

    /// Count of references of `kind`.
    pub fn count(&self, kind: AccessKind) -> u64 {
        self.counts[kind.as_index()]
    }

    /// Total references of all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total data references (loads + stores).
    pub fn data_refs(&self) -> u64 {
        self.count(AccessKind::Load) + self.count(AccessKind::Store)
    }

    /// Fraction of data references that are stores (0.0 if no data refs).
    pub fn store_fraction(&self) -> f64 {
        let data = self.data_refs();
        if data == 0 {
            0.0
        } else {
            self.count(AccessKind::Store) as f64 / data as f64
        }
    }

    /// The stride histogram over successive data references.
    pub fn strides(&self) -> &StrideHistogram {
        &self.strides
    }

    /// The span of the touched address range in bytes (max − min), or 0.
    pub fn address_span(&self) -> u64 {
        match (self.min_addr, self.max_addr) {
            (Some(lo), Some(hi)) => hi.raw() - lo.raw(),
            _ => 0,
        }
    }

    /// Lowest address observed, if any.
    pub fn min_addr(&self) -> Option<Addr> {
        self.min_addr
    }

    /// Highest address observed, if any.
    pub fn max_addr(&self) -> Option<Addr> {
        self.max_addr
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refs ({} loads, {} stores, {} ifetches), span {} bytes",
            self.total(),
            self.count(AccessKind::Load),
            self.count(AccessKind::Store),
            self.count(AccessKind::IFetch),
            self.address_span()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut s = TraceStats::new();
        s.observe(Access::load(Addr::new(0)));
        s.observe(Access::store(Addr::new(8)));
        s.observe(Access::ifetch(Addr::new(4096)));
        assert_eq!(s.count(AccessKind::Load), 1);
        assert_eq!(s.count(AccessKind::Store), 1);
        assert_eq!(s.count(AccessKind::IFetch), 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.data_refs(), 2);
        assert!((s.store_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strides_ignore_ifetches() {
        let mut s = TraceStats::new();
        s.observe(Access::load(Addr::new(0)));
        s.observe(Access::ifetch(Addr::new(1_000_000)));
        s.observe(Access::load(Addr::new(8)));
        assert_eq!(s.strides().total(), 1);
        assert_eq!(s.strides().top(1), vec![(8, 1)]);
    }

    #[test]
    fn address_span_tracks_extremes() {
        let mut s = TraceStats::new();
        assert_eq!(s.address_span(), 0);
        s.observe(Access::load(Addr::new(100)));
        s.observe(Access::load(Addr::new(40)));
        s.observe(Access::load(Addr::new(400)));
        assert_eq!(s.address_span(), 360);
        assert_eq!(s.min_addr(), Some(Addr::new(40)));
        assert_eq!(s.max_addr(), Some(Addr::new(400)));
    }

    #[test]
    fn stride_classification() {
        let b = BlockSize::new(32).unwrap();
        assert_eq!(StrideHistogram::classify(0, b), StrideClass::Zero);
        assert_eq!(StrideHistogram::classify(8, b), StrideClass::WithinBlock);
        assert_eq!(StrideHistogram::classify(-8, b), StrideClass::WithinBlock);
        assert_eq!(StrideHistogram::classify(64, b), StrideClass::Near);
        assert_eq!(StrideHistogram::classify(-256, b), StrideClass::Near);
        assert_eq!(
            StrideHistogram::classify(4096, b),
            StrideClass::LargeStrided
        );
        assert_eq!(StrideHistogram::classify(4097, b), StrideClass::Irregular);
    }

    #[test]
    fn class_fractions_sum_to_one() {
        let b = BlockSize::default();
        let mut h = StrideHistogram::new();
        for s in [0, 4, 8, 64, 4096, 12345, -4, 8, 8] {
            h.record(s);
        }
        let sum: f64 = h.class_fractions(b).values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.total(), 9);
        assert_eq!(h.distinct(), 7);
    }

    #[test]
    fn top_sorts_by_count_then_value() {
        let mut h = StrideHistogram::new();
        for s in [8, 8, 8, 4, 4, 16, 16] {
            h.record(s);
        }
        assert_eq!(h.top(2), vec![(8, 3), (4, 2)]);
    }

    #[test]
    fn from_trace_collects() {
        let refs = (0..10u64).map(|i| Access::load(Addr::new(i * 4)));
        let s = TraceStats::from_trace(refs);
        assert_eq!(s.total(), 10);
        assert_eq!(s.strides().total(), 9);
    }

    #[test]
    fn display_is_informative() {
        let s = TraceStats::from_trace([Access::load(Addr::new(0)), Access::store(Addr::new(64))]);
        let msg = s.to_string();
        assert!(msg.contains("2 refs"), "{msg}");
        assert!(msg.contains("span 64"), "{msg}");
    }
}
