//! Property-based tests for the record-once/replay-many engine: the
//! shared [`TraceStore`] and the multi-observer [`replay`] pass, via the
//! public API, on the in-tree `streamsim-quickcheck` harness.

use streamsim_prng::quickcheck::{check_with, Gen};
use streamsim_prng::Rng;

use streamsim_cache::{CacheConfig, Replacement, SetSampling};
use streamsim_core::{
    record_miss_trace, replay, replay_chunked, replay_l2, replay_streams, run_l2, run_streams,
    FusedStreamObserver, L2Observer, MissEvent, MissObserver, RecordOptions, StreamObserver,
    TraceStore,
};
use streamsim_streams::StreamConfig;
use streamsim_trace::{Access, AccessKind, Addr, BlockSize, WordSize};
use streamsim_workloads::combinators::RecordedTrace;

fn tiny_l1() -> RecordOptions {
    let cfg = CacheConfig::new(4 * 1024, 2, BlockSize::new(32).unwrap())
        .unwrap()
        .with_replacement(Replacement::Lru);
    RecordOptions {
        icache: cfg,
        dcache: cfg,
        sampling: None,
    }
}

fn accesses(g: &mut Gen, max_len: usize) -> Vec<Access> {
    g.vec(1..max_len, |g| {
        let addr = g.gen_range(0u64..1 << 18);
        let kind = g.pick_weighted(&[
            (3, AccessKind::Load),
            (1, AccessKind::Store),
            (1, AccessKind::IFetch),
        ]);
        Access::new(Addr::new(addr), kind)
    })
}

fn stream_configs(g: &mut Gen) -> Vec<StreamConfig> {
    g.vec(1usize..5, |g| {
        let buffers = g.gen_range(1usize..8);
        let depth = g.gen_range(1usize..5);
        match g.gen_range(0u32..3) {
            0 => StreamConfig::paper_basic(buffers).unwrap(),
            1 => StreamConfig::paper_filtered(buffers).unwrap(),
            _ => StreamConfig::new(buffers, depth, streamsim_streams::Allocation::OnMiss).unwrap(),
        }
    })
}

/// A trace served from the store equals a fresh recording of the same
/// workload — caching never changes results.
#[test]
fn cached_traces_equal_fresh_recordings() {
    check_with("cached_traces_equal_fresh_recordings", 32, |g| {
        let trace = accesses(g, 400);
        let w = RecordedTrace::new("prop", trace);
        let options = tiny_l1();
        let store = TraceStore::default();
        let warm = store.record(&w, &options).unwrap();
        let cached = store.record(&w, &options).unwrap();
        let fresh = record_miss_trace(&w, &options).unwrap();
        assert_eq!(*warm, fresh);
        assert_eq!(*cached, fresh);
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits(), 1);
    });
}

/// One replay pass over N stream configurations produces exactly the
/// statistics of N independent single-config passes.
#[test]
fn multi_config_replay_equals_independent_passes() {
    check_with("multi_config_replay_equals_independent_passes", 32, |g| {
        let trace = accesses(g, 400);
        let w = RecordedTrace::new("prop", trace);
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
        let configs = stream_configs(g);

        let shared = replay_streams(&rec, &configs);
        let independent: Vec<_> = configs.iter().map(|&c| run_streams(&rec, c)).collect();
        assert_eq!(shared, independent);
    });
}

/// The same holds for L2 observers, with and without set sampling.
#[test]
fn multi_l2_replay_equals_independent_passes() {
    check_with("multi_l2_replay_equals_independent_passes", 32, |g| {
        let trace = accesses(g, 400);
        let w = RecordedTrace::new("prop", trace);
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();

        let cells: Vec<(CacheConfig, Option<SetSampling>)> = g.vec(1usize..4, |g| {
            let kib = 1u64 << g.gen_range(4u32..8);
            let assoc = 1u32 << g.gen_range(0u32..3);
            let cfg = CacheConfig::new(kib * 1024, assoc, BlockSize::new(32).unwrap()).unwrap();
            let sampling = if g.gen_bool(0.5) {
                Some(SetSampling::new(2, 1))
            } else {
                None
            };
            (cfg, sampling)
        });

        let shared = replay_l2(&rec, &cells).unwrap();
        let independent: Vec<_> = cells
            .iter()
            .map(|&(cfg, sampling)| run_l2(&rec, cfg, sampling).unwrap())
            .collect();
        assert_eq!(shared, independent);
    });
}

/// A family of stream configurations sharing one randomized geometry —
/// the shape [`FusedStreamObserver`] accepts — covering every allocation
/// policy and both match policies.
fn shared_geometry_family(g: &mut Gen) -> Vec<StreamConfig> {
    use streamsim_streams::{Allocation, MatchPolicy};
    let block = BlockSize::new(g.pick(&[16u64, 32, 64])).unwrap();
    let word = WordSize::new(g.pick(&[4u64, 8])).unwrap();
    g.vec(1usize..6, |g| {
        let allocation = match g.gen_range(0u32..4) {
            0 => Allocation::OnMiss,
            1 => Allocation::UnitFilter {
                entries: g.gen_range(1usize..12),
            },
            2 => Allocation::UnitAndStrideFilters {
                unit_entries: g.gen_range(1usize..12),
                stride_entries: g.gen_range(1usize..12),
                czone_bits: g.gen_range(8u32..24),
            },
            _ => Allocation::MinDelta {
                entries: g.gen_range(1usize..8),
                max_stride_words: g.gen_range(1i64..(1 << 16)),
            },
        };
        let policy = if g.gen_bool(0.5) {
            MatchPolicy::HeadOnly
        } else {
            MatchPolicy::AnyEntry
        };
        StreamConfig::new(g.gen_range(1usize..8), g.gen_range(1usize..5), allocation)
            .expect("parameters drawn from valid ranges")
            .with_block(block)
            .with_word(word)
            .with_match_policy(policy)
    })
}

/// Replays `trace` into one observer per config, delivering events one at
/// a time — the unfused, unbatched reference semantics.
fn per_event_stream_passes(
    trace: &streamsim_core::MissTrace,
    configs: &[StreamConfig],
) -> Vec<streamsim_core::StreamStats> {
    configs
        .iter()
        .map(|&c| {
            let mut o = StreamObserver::new(c);
            for event in trace.events() {
                match *event {
                    MissEvent::Fetch { addr, kind } => o.on_fetch(addr, kind),
                    MissEvent::Writeback { base } => o.on_writeback(base),
                }
            }
            o.finish();
            o.stats()
        })
        .collect()
}

/// A fused family replayed in arbitrary (often misaligned) chunk sizes is
/// byte-identical to independent per-event observers: both the fusion and
/// the batching are pure delivery mechanics.
#[test]
fn fused_replay_matches_independent_observers_at_any_chunk_size() {
    check_with(
        "fused_replay_matches_independent_observers_at_any_chunk_size",
        32,
        |g| {
            let trace = accesses(g, 400);
            let w = RecordedTrace::new("prop", trace);
            let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
            let configs = shared_geometry_family(g);

            let mut fused = FusedStreamObserver::new(&configs).expect("one shared geometry");
            let chunk = g.gen_range(1usize..80);
            replay_chunked(&rec, &mut [&mut fused], chunk);

            assert_eq!(fused.stats(), per_event_stream_passes(&rec, &configs));
        },
    );
}

/// Two fused replays of the same family at different chunk sizes agree
/// exactly: no observable state leaks across chunk boundaries.
#[test]
fn chunk_boundaries_are_invisible_to_fused_families() {
    check_with(
        "chunk_boundaries_are_invisible_to_fused_families",
        32,
        |g| {
            let trace = accesses(g, 400);
            let w = RecordedTrace::new("prop", trace);
            let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
            let configs = shared_geometry_family(g);

            let mut coarse = FusedStreamObserver::new(&configs).unwrap();
            let mut fine = FusedStreamObserver::new(&configs).unwrap();
            replay_chunked(&rec, &mut [&mut coarse], g.gen_range(100usize..500));
            replay_chunked(&rec, &mut [&mut fine], g.gen_range(1usize..10));
            assert_eq!(coarse.stats(), fine.stats());
        },
    );
}

/// A family with mismatched geometries cannot fuse; [`replay_streams`]
/// must fall back to independent observers with identical results.
#[test]
fn mixed_geometry_families_fall_back_without_changing_results() {
    check_with(
        "mixed_geometry_families_fall_back_without_changing_results",
        32,
        |g| {
            let trace = accesses(g, 400);
            let w = RecordedTrace::new("prop", trace);
            let rec = record_miss_trace(&w, &tiny_l1()).unwrap();

            let mut configs = shared_geometry_family(g);
            // Force a geometry mismatch: no family member uses 256-byte
            // blocks.
            let odd = StreamConfig::paper_basic(g.gen_range(1usize..5))
                .unwrap()
                .with_block(BlockSize::new(256).unwrap());
            configs.push(odd);

            assert!(FusedStreamObserver::new(&configs).is_err());
            assert_eq!(
                replay_streams(&rec, &configs),
                per_event_stream_passes(&rec, &configs)
            );
        },
    );
}

/// Mixing stream and L2 observers in one pass changes nothing either:
/// observers are fully independent of each other.
#[test]
fn mixed_observers_do_not_interact() {
    check_with("mixed_observers_do_not_interact", 32, |g| {
        let trace = accesses(g, 400);
        let w = RecordedTrace::new("prop", trace);
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();

        let scfg = StreamConfig::paper_filtered(4).unwrap();
        let l2cfg = CacheConfig::new(64 * 1024, 2, BlockSize::new(32).unwrap()).unwrap();
        let mut streams = StreamObserver::new(scfg);
        let mut l2 = L2Observer::new(l2cfg, None).unwrap();
        replay(&rec, &mut [&mut streams, &mut l2]);

        assert_eq!(streams.stats(), run_streams(&rec, scfg));
        assert_eq!(l2.stats(), run_l2(&rec, l2cfg, None).unwrap());
    });
}
