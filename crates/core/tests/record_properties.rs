//! Property-based tests for miss-trace recording, via the public API,
//! on the in-tree `streamsim-quickcheck` harness.

use streamsim_prng::quickcheck::{check_with, Gen};
use streamsim_prng::Rng;

use streamsim_cache::{CacheConfig, Replacement};
use streamsim_core::{record_miss_trace, run_l2, run_streams, MissEvent, RecordOptions};
use streamsim_streams::StreamConfig;
use streamsim_trace::{Access, AccessKind, Addr, BlockSize};
use streamsim_workloads::combinators::RecordedTrace;

fn tiny_l1() -> RecordOptions {
    let cfg = CacheConfig::new(4 * 1024, 2, BlockSize::new(32).unwrap())
        .unwrap()
        .with_replacement(Replacement::Lru);
    RecordOptions {
        icache: cfg,
        dcache: cfg,
        sampling: None,
    }
}

fn accesses(g: &mut Gen, max_len: usize) -> Vec<Access> {
    g.vec(1..max_len, |g| {
        let addr = g.gen_range(0u64..1 << 18);
        let kind = g.pick_weighted(&[
            (3, AccessKind::Load),
            (1, AccessKind::Store),
            (1, AccessKind::IFetch),
        ]);
        Access::new(Addr::new(addr), kind)
    })
}

/// The recorded fetch count equals the L1's miss count, and every
/// write-back event corresponds to a counted cache write-back.
#[test]
fn fetches_equal_l1_misses() {
    check_with("fetches_equal_l1_misses", 48, |g| {
        let trace = accesses(g, 400);
        let w = RecordedTrace::new("prop", trace);
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
        assert_eq!(
            rec.fetches(),
            rec.l1().icache.misses() + rec.l1().dcache.misses()
        );
        assert_eq!(
            rec.writebacks(),
            rec.l1().icache.writebacks + rec.l1().dcache.writebacks
        );
    });
}

/// Fetch events preserve program order of the missing references:
/// filtering the input to its missing subset reproduces the events.
#[test]
fn events_are_in_program_order() {
    check_with("events_are_in_program_order", 48, |g| {
        let trace = accesses(g, 300);
        let w = RecordedTrace::new("prop", trace.clone());
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
        let fetched: Vec<(u64, AccessKind)> = rec
            .events()
            .iter()
            .filter_map(|e| match *e {
                MissEvent::Fetch { addr, kind } => Some((addr.raw(), kind)),
                MissEvent::Writeback { .. } => None,
            })
            .collect();
        // Each fetch must appear in the input, in order (subsequence).
        let mut it = trace.iter();
        for (addr, kind) in &fetched {
            let found = it.any(|a| a.addr.raw() == *addr && a.kind == *kind);
            assert!(found, "fetch ({addr:#x}, {kind:?}) out of order");
        }
    });
}

/// A read-only reference stream never produces write-backs.
#[test]
fn loads_never_write_back() {
    check_with("loads_never_write_back", 48, |g| {
        let raw = g.vec(1usize..300, |g| g.gen_range(0u64..1 << 18));
        let trace: Vec<Access> = raw
            .into_iter()
            .map(|a| Access::load(Addr::new(a)))
            .collect();
        let w = RecordedTrace::new("ro", trace);
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
        assert_eq!(rec.writebacks(), 0);
    });
}

/// Replaying the same miss trace through streams and an L2 is
/// deterministic, and the stream lookup count equals the fetches.
#[test]
fn replays_are_deterministic_and_complete() {
    check_with("replays_are_deterministic_and_complete", 48, |g| {
        let trace = accesses(g, 300);
        let w = RecordedTrace::new("prop", trace);
        let rec = record_miss_trace(&w, &tiny_l1()).unwrap();
        let cfg = StreamConfig::paper_filtered(4).unwrap();
        let s1 = run_streams(&rec, cfg);
        let s2 = run_streams(&rec, cfg);
        assert_eq!(s1, s2);
        assert_eq!(s1.lookups, rec.fetches());
        assert!(s1.prefetch_accounting_balances());

        let l2cfg = CacheConfig::new(64 * 1024, 2, BlockSize::new(32).unwrap()).unwrap();
        let l2a = run_l2(&rec, l2cfg, None).unwrap();
        let l2b = run_l2(&rec, l2cfg, None).unwrap();
        assert_eq!(l2a, l2b);
        assert_eq!(l2a.accesses(), rec.fetches() + rec.writebacks());
    });
}

/// Time sampling can only shrink the trace, never grow it.
#[test]
fn sampling_shrinks_recordings() {
    check_with("sampling_shrinks_recordings", 48, |g| {
        let trace = accesses(g, 400);
        let w = RecordedTrace::new("prop", trace);
        let full = record_miss_trace(&w, &tiny_l1()).unwrap();
        let sampled = record_miss_trace(
            &w,
            &RecordOptions {
                sampling: Some((50, 150)),
                ..tiny_l1()
            },
        )
        .unwrap();
        // LRU is a stack algorithm over cache sizes, not over trace
        // subsetting, so sampling can add a bounded number of cold-start
        // misses at window boundaries — but it must not inflate the
        // trace wholesale.
        assert!(
            sampled.fetches() <= full.fetches() + 64,
            "sampling grew the miss trace: {} vs {}",
            sampled.fetches(),
            full.fetches()
        );
        assert!(sampled.l1().refs() <= full.l1().refs());
    });
}
