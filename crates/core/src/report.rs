//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table: a header row plus data rows.
///
/// # Example
///
/// ```
/// use streamsim_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench", "hit %"]);
/// t.row(vec!["mgrid".into(), "78.0".into()]);
/// let s = t.to_string();
/// assert!(s.contains("mgrid"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Short rows are padded with empty cells; extra
    /// cells are kept (the column count grows).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = !cell.is_empty()
                    && cell
                        .chars()
                        .all(|c| c.is_ascii_digit() || ".%-+<>~".contains(c));
                if numeric {
                    write!(f, "{cell:>width$}")?;
                } else {
                    write!(f, "{cell:<width$}")?;
                }
            }
            writeln!(f)
        };

        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a byte count as a human-readable cache size ("64 KB", "2 MB").
pub fn size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{} MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer-name".into(), "12.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width (headers padded).
        assert!(lines[1].starts_with("---"));
        assert!(s.contains("longer-name"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let s = t.to_string();
        assert!(s.contains('x'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = TextTable::new(vec!["n", "v"]);
        t.row(vec!["aa".into(), "7".into()]);
        t.row(vec!["b".into(), "123".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].contains("  7"), "{s}");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.5), "50.0");
        assert_eq!(size(64 << 10), "64 KB");
        assert_eq!(size(2 << 20), "2 MB");
        assert_eq!(size(100), "100 B");
        assert_eq!(size(1536), "1 KB");
    }
}
