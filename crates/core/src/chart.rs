//! ASCII line/bar charts for figure-style experiment output.
//!
//! The paper's Figures 3 and 9 are line plots; the tables the drivers
//! print carry the same data, but a quick visual of the *shape* (the
//! plateau, the detection window) is worth having in terminal output.
//! [`AsciiChart`] renders one or more named series over a shared x-axis
//! as a fixed-height character grid.

use std::fmt;

/// Height of the plot area in character rows.
const HEIGHT: usize = 12;

/// A multi-series ASCII chart over a shared categorical x-axis.
///
/// Values are expected in `0..=1` (fractions); the y-axis is labelled in
/// percent. Each series is drawn with its own marker character.
///
/// # Example
///
/// ```
/// use streamsim_core::chart::AsciiChart;
///
/// let mut chart = AsciiChart::new(vec!["1", "2", "4", "8"]);
/// chart.series("mgrid", vec![0.04, 0.38, 0.75, 0.83]);
/// let drawing = chart.to_string();
/// assert!(drawing.contains("mgrid"));
/// assert!(drawing.contains("100%") || drawing.contains(" 90%"));
/// ```
#[derive(Clone, Debug)]
pub struct AsciiChart {
    x_labels: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

/// Markers assigned to series in order.
const MARKERS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates a chart with the given x-axis labels.
    pub fn new<S: Into<String>>(x_labels: Vec<S>) -> Self {
        AsciiChart {
            x_labels: x_labels.into_iter().map(Into::into).collect(),
            series: Vec::new(),
        }
    }

    /// Adds a named series. Values beyond the x-axis length are ignored;
    /// missing values leave gaps.
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.series.push((name.into(), values));
        self
    }

    /// Number of series added.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the chart has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self.x_labels.len();
        // Column width: widest x label + 1, at least 3.
        let col_width = self
            .x_labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(1)
            .max(2)
            + 1;

        // Grid of plot characters.
        let mut grid = vec![vec![' '; columns * col_width]; HEIGHT];
        for (s, (_, values)) in self.series.iter().enumerate() {
            let marker = MARKERS[s % MARKERS.len()];
            for (i, &v) in values.iter().take(columns).enumerate() {
                let clamped = v.clamp(0.0, 1.0);
                // Row 0 is the top (100%); HEIGHT-1 the bottom (0%).
                let row = ((1.0 - clamped) * (HEIGHT - 1) as f64).round() as usize;
                let col = i * col_width + col_width / 2;
                // Later series overwrite earlier ones at collisions.
                grid[row][col] = marker;
            }
        }

        // Render with a y-axis label every few rows.
        for (row, line) in grid.iter().enumerate() {
            let pct = 100.0 * (1.0 - row as f64 / (HEIGHT - 1) as f64);
            if row % 3 == 0 || row == HEIGHT - 1 {
                write!(f, "{pct:>4.0}% |")?;
            } else {
                write!(f, "      |")?;
            }
            let text: String = line.iter().collect();
            writeln!(f, "{}", text.trim_end())?;
        }
        // X axis.
        write!(f, "      +")?;
        writeln!(f, "{}", "-".repeat(columns * col_width))?;
        write!(f, "       ")?;
        for label in &self.x_labels {
            write!(f, "{label:^col_width$}")?;
        }
        writeln!(f)?;
        // Legend.
        write!(f, "       ")?;
        for (s, (name, _)) in self.series.iter().enumerate() {
            if s > 0 {
                write!(f, "   ")?;
            }
            write!(f, "{} {}", MARKERS[s % MARKERS.len()], name)?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_axes_and_legend() {
        let mut c = AsciiChart::new(vec!["a", "b", "c"]);
        c.series("one", vec![0.0, 0.5, 1.0]);
        c.series("two", vec![1.0, 0.5, 0.0]);
        let s = c.to_string();
        assert!(s.contains("100% |"), "{s}");
        assert!(s.contains("   0% |"), "{s}");
        assert!(s.contains("* one"), "{s}");
        assert!(s.contains("o two"), "{s}");
        assert!(s.contains("+---"), "{s}");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn high_values_plot_near_the_top() {
        let mut c = AsciiChart::new(vec!["x"]);
        c.series("hi", vec![1.0]);
        let s = c.to_string();
        let first_plot_line = s.lines().next().unwrap();
        assert!(first_plot_line.contains('*'), "{s}");
    }

    #[test]
    fn values_are_clamped() {
        let mut c = AsciiChart::new(vec!["x", "y"]);
        c.series("wild", vec![-3.0, 42.0]);
        let s = c.to_string();
        // Bottom row holds the clamped −3; top row the clamped 42.
        assert!(s.lines().next().unwrap().contains('*'));
        let bottom = s.lines().nth(HEIGHT - 1).unwrap();
        assert!(bottom.contains('*'), "{s}");
    }

    #[test]
    fn missing_values_leave_gaps() {
        let mut c = AsciiChart::new(vec!["a", "b", "c", "d"]);
        c.series("short", vec![0.5]);
        let s = c.to_string();
        let marks = s.matches('*').count();
        assert_eq!(marks, 2, "one data point + one legend marker: {s}");
    }
}
