//! A shared, memoizing store of recorded miss traces.
//!
//! The paper's methodology (§4) records the primary-cache miss stream
//! once per benchmark and replays it against every configuration of
//! interest. The experiment drivers, however, are independent programs:
//! left to themselves each re-records the same (workload, L1) traces.
//! [`TraceStore`] is the shared cache that restores the paper's
//! record-once discipline across drivers — every [`MissTrace`] is keyed
//! by the workload's [`fingerprint`](streamsim_workloads::Workload::fingerprint)
//! plus the full [`RecordOptions`] (L1 geometry, replacement policy and
//! time sampling), so a full sweep simulates each L1 exactly once no
//! matter how many drivers ask for it.
//!
//! The store is a cheap clone-able handle (`Arc` inside); experiment
//! workers on different threads share one underlying map. Recording
//! happens outside the lock, so a miss never serialises the other
//! workers behind a multi-second L1 simulation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use streamsim_cache::CacheConfigError;
use streamsim_workloads::Workload;

use crate::{record_miss_trace, MissTrace, RecordOptions};

/// A memoizing cache of [`MissTrace`]s shared across experiment drivers.
///
/// # Example
///
/// ```
/// use streamsim_core::{RecordOptions, TraceStore};
/// use streamsim_workloads::generators::SequentialSweep;
///
/// let store = TraceStore::new();
/// let w = SequentialSweep::default();
/// let first = store.record(&w, &RecordOptions::default())?;
/// let second = store.record(&w, &RecordOptions::default())?;
/// // The second request is served from the store: same allocation.
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!(store.misses(), 1);
/// assert_eq!(store.hits(), 1);
/// # Ok::<(), streamsim_cache::CacheConfigError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceStore {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    traces: Mutex<BTreeMap<String, Arc<MissTrace>>>,
    /// Locality profiles, keyed like `traces`: one extra recording-time
    /// pass per (workload, L1) cell serves every model query after it.
    profiles: Mutex<BTreeMap<String, Arc<streamsim_model::LocalityProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// The memoisation key for a (workload, record options) cell.
    fn key(workload: &dyn Workload, options: &RecordOptions) -> String {
        format!("{}|{:?}", workload.fingerprint(), options)
    }

    /// Records `workload`'s miss trace under `options`, or returns the
    /// stored trace if an identical recording already exists.
    ///
    /// Recording runs outside the store's lock; if two threads race on
    /// the same cold key both simulate and one result wins, which is
    /// harmless because recording is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if either cache configuration in
    /// `options` is invalid.
    pub fn record(
        &self,
        workload: &dyn Workload,
        options: &RecordOptions,
    ) -> Result<Arc<MissTrace>, CacheConfigError> {
        let key = Self::key(workload, options);
        if let Some(trace) = self.inner.traces.lock().expect("store lock").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            streamsim_obs::count(streamsim_obs::Counter::TraceStoreHits, 1);
            return Ok(Arc::clone(trace));
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        streamsim_obs::count(streamsim_obs::Counter::TraceStoreMisses, 1);
        let trace = Arc::new(record_miss_trace(workload, options)?);
        let mut map = self.inner.traces.lock().expect("store lock");
        Ok(Arc::clone(map.entry(key).or_insert(trace)))
    }

    /// Records every missing `(workload, options)` cell in parallel and
    /// returns the traces in workload order.
    ///
    /// This is the bulk front door drivers use before running: cells
    /// already in the store are returned as-is (and counted as hits),
    /// cold cells are simulated concurrently on the
    /// [`parallel_map`](crate::parallel_map) worker pool instead of one
    /// at a time on first use. Because recording is deterministic, the
    /// result is byte-identical to recording each cell serially.
    ///
    /// # Errors
    ///
    /// Returns the first [`CacheConfigError`] (in workload order) if
    /// `options` holds an invalid cache configuration.
    pub fn prefill(
        &self,
        workloads: &[Box<dyn Workload>],
        options: &RecordOptions,
    ) -> Result<Vec<Arc<MissTrace>>, CacheConfigError> {
        self.prefill_on(workloads, options, &streamsim_dst::ThreadExecutor::auto())
    }

    /// [`TraceStore::prefill`] on an explicit executor.
    ///
    /// This is the DST seam: tests hand in a seeded
    /// [`streamsim_dst::SimExecutor`] so the concurrent recording of
    /// cold cells — including a panic injected mid-`prefill` — replays
    /// under one reproducible interleaving. Production callers go
    /// through [`TraceStore::prefill`], which supplies the real thread
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns the first [`CacheConfigError`] (in workload order) if
    /// `options` holds an invalid cache configuration.
    pub fn prefill_on(
        &self,
        workloads: &[Box<dyn Workload>],
        options: &RecordOptions,
        exec: &dyn streamsim_dst::Executor,
    ) -> Result<Vec<Arc<MissTrace>>, CacheConfigError> {
        streamsim_obs::count(
            streamsim_obs::Counter::TraceStorePrefills,
            workloads.len() as u64,
        );
        let refs: Vec<&dyn Workload> = workloads.iter().map(Box::as_ref).collect();
        let _span = streamsim_obs::span("prefill");
        crate::parallel_map_on(exec, refs, |w: &dyn Workload| self.record(w, options))
            .into_iter()
            .collect()
    }

    /// The locality profile of `workload`'s miss trace under `options`,
    /// computed (and memoized) on first request.
    ///
    /// The trace itself comes from [`TraceStore::record`], so the first
    /// profile request for a cold cell records and then profiles; every
    /// later request — any driver or pre-screened sweep holding this
    /// store — returns the stored `Arc` without touching the trace.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if either cache configuration in
    /// `options` is invalid.
    pub fn profile(
        &self,
        workload: &dyn Workload,
        options: &RecordOptions,
    ) -> Result<Arc<streamsim_model::LocalityProfile>, CacheConfigError> {
        let key = Self::key(workload, options);
        if let Some(profile) = self.inner.profiles.lock().expect("store lock").get(&key) {
            return Ok(Arc::clone(profile));
        }
        // Profiling runs outside the lock (it walks the whole trace);
        // racing threads both profile and one result wins, harmlessly,
        // because profiling is deterministic.
        let trace = self.record(workload, options)?;
        let profile = Arc::new(crate::locality::profile_trace(&trace));
        let mut map = self.inner.profiles.lock().expect("store lock");
        Ok(Arc::clone(map.entry(key).or_insert(profile)))
    }

    /// Profiles every `(workload, options)` cell in parallel on an
    /// explicit executor, returning profiles in workload order.
    ///
    /// Like [`TraceStore::prefill_on`], this is a DST seam: the
    /// pre-screened sweep goes through it with the run's executor, and
    /// the determinism property tests swap in a seeded
    /// [`streamsim_dst::SimExecutor`] to pin that profiles are
    /// byte-identical under any interleaving.
    ///
    /// # Errors
    ///
    /// Returns the first [`CacheConfigError`] (in workload order) if
    /// `options` holds an invalid cache configuration.
    pub fn profiles_on(
        &self,
        workloads: &[Box<dyn Workload>],
        options: &RecordOptions,
        exec: &dyn streamsim_dst::Executor,
    ) -> Result<Vec<Arc<streamsim_model::LocalityProfile>>, CacheConfigError> {
        let refs: Vec<&dyn Workload> = workloads.iter().map(Box::as_ref).collect();
        let _span = streamsim_obs::span("profile_pass");
        crate::parallel_map_on(exec, refs, |w: &dyn Workload| self.profile(w, options))
            .into_iter()
            .collect()
    }

    /// Number of distinct traces currently stored.
    pub fn len(&self) -> usize {
        self.inner.traces.lock().expect("store lock").len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many [`TraceStore::record`] calls were served from the store.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// How many [`TraceStore::record`] calls had to simulate an L1.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Drops every stored trace and profile (counters are kept).
    pub fn clear(&self) {
        self.inner.traces.lock().expect("store lock").clear();
        self.inner.profiles.lock().expect("store lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_workloads::generators::{RandomGather, SequentialSweep};

    #[test]
    fn identical_requests_share_one_recording() {
        let store = TraceStore::new();
        let w = SequentialSweep::default();
        let opts = RecordOptions::default();
        let a = store.record(&w, &opts).unwrap();
        let b = store.record(&w, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
        assert_eq!((store.misses(), store.hits()), (1, 1));
    }

    #[test]
    fn cached_trace_equals_a_fresh_recording() {
        let store = TraceStore::new();
        let w = RandomGather {
            footprint: 1 << 16,
            count: 5_000,
            seed: 7,
        };
        let opts = RecordOptions::default();
        let cached = store.record(&w, &opts).unwrap();
        let fresh = record_miss_trace(&w, &opts).unwrap();
        assert_eq!(*cached, fresh);
    }

    #[test]
    fn distinct_options_are_distinct_entries() {
        let store = TraceStore::new();
        let w = SequentialSweep::default();
        let plain = RecordOptions::default();
        let sampled = RecordOptions::default().with_paper_sampling();
        let a = store.record(&w, &plain).unwrap();
        let b = store.record(&w, &sampled).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.fetches(), b.fetches());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn distinct_workload_parameters_are_distinct_entries() {
        // Same name and footprint, different trace: the fingerprint must
        // tell them apart.
        let store = TraceStore::new();
        // The array must exceed the 64 KB L1 so a second pass misses
        // again instead of hitting the lines the first pass loaded.
        let one_pass = SequentialSweep {
            arrays: 1,
            bytes_per_array: 256 * 1024,
            passes: 1,
            elem: 8,
        };
        let two_passes = SequentialSweep {
            passes: 2,
            ..one_pass
        };
        let opts = RecordOptions::default();
        let a = store.record(&one_pass, &opts).unwrap();
        let b = store.record(&two_passes, &opts).unwrap();
        assert_eq!(store.len(), 2);
        assert!(a.fetches() < b.fetches());
    }

    #[test]
    fn prefill_records_each_cell_once_and_in_order() {
        let store = TraceStore::new();
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(SequentialSweep::default()),
            Box::new(RandomGather {
                footprint: 1 << 16,
                count: 5_000,
                seed: 7,
            }),
        ];
        let opts = RecordOptions::default();
        let traces = store.prefill(&workloads, &opts).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(store.len(), 2);
        for (w, t) in workloads.iter().zip(&traces) {
            assert_eq!(
                **t,
                record_miss_trace(w.as_ref(), &opts).unwrap(),
                "{}: prefilled trace differs from a serial recording",
                w.name()
            );
        }
        // A second prefill is all hits and returns the same allocations.
        let again = store.prefill(&workloads, &opts).unwrap();
        for (a, b) in traces.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 2);
    }

    #[test]
    fn profiles_are_memoized_alongside_traces() {
        let store = TraceStore::new();
        let w = SequentialSweep::default();
        let opts = RecordOptions::default();
        let a = store.profile(&w, &opts).unwrap();
        let b = store.profile(&w, &opts).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second request is served from the store"
        );
        // The underlying trace was recorded exactly once and profiling
        // matches a fresh pass over it.
        assert_eq!(store.misses(), 1);
        let trace = store.record(&w, &opts).unwrap();
        assert_eq!(*a, crate::locality::profile_trace(&trace));
    }

    #[test]
    fn profiles_on_matches_serial_profiling() {
        let store = TraceStore::new();
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(SequentialSweep::default()),
            Box::new(RandomGather {
                footprint: 1 << 16,
                count: 5_000,
                seed: 7,
            }),
        ];
        let opts = RecordOptions::default();
        let profiles = store
            .profiles_on(&workloads, &opts, &streamsim_dst::ThreadExecutor::auto())
            .unwrap();
        assert_eq!(profiles.len(), 2);
        for (w, p) in workloads.iter().zip(&profiles) {
            let serial = store.profile(w.as_ref(), &opts).unwrap();
            assert!(Arc::ptr_eq(p, &serial), "{}", w.name());
        }
    }

    #[test]
    fn clear_empties_the_store() {
        let store = TraceStore::new();
        store
            .record(&SequentialSweep::default(), &RecordOptions::default())
            .unwrap();
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        store
            .record(&SequentialSweep::default(), &RecordOptions::default())
            .unwrap();
        assert_eq!(store.misses(), 2, "cleared entries re-record");
    }
}
