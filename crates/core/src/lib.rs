//! Memory-system composition and the paper's experiment drivers.
//!
//! This crate ties the workspace together:
//!
//! * [`MemorySystem`] — a complete simulated memory hierarchy (split L1,
//!   optional unified or partitioned stream buffers, optional secondary
//!   cache observer) driven one [`Access`] at a time.
//! * [`MissTrace`] — the key performance lever for the paper's sweeps:
//!   the L1 miss stream does not depend on what sits behind the L1, so it
//!   is recorded once per workload ([`record_miss_trace`]) and replayed
//!   against any number of stream-buffer or secondary-cache
//!   configurations at a tiny fraction of the full simulation cost.
//! * [`TraceStore`] — memoizes recorded traces per (workload, L1
//!   geometry, sampling) key; drivers sharing a store via
//!   [`experiments::ExperimentOptions`] simulate each L1 exactly once.
//! * [`replay`] — drives any number of [`MissObserver`]s
//!   ([`StreamObserver`], [`L2Observer`], or custom) over one recorded
//!   trace in a single pass ([`replay_streams`], [`replay_l2`];
//!   [`run_streams`] and [`run_l2`] are the one-observer wrappers).
//! * [`experiments`] — one driver per table and figure in the paper's
//!   evaluation (Tables 1–4, Figures 3, 5, 8, 9) plus the ablation suite,
//!   each printing measured results next to the paper's reported values.
//! * [`paper`] — the paper's reported numbers, transcribed.
//! * [`sink`] — structured result emission: every driver implements
//!   [`Artifact`] and renders through an [`ArtifactSink`] as aligned
//!   text tables ([`TextSink`]) or one flat JSON object per row
//!   ([`JsonLinesSink`]), which is what `streamsim-report --json` and
//!   `--diff` build on.
//! * [`report::TextTable`] — plain-text table rendering underneath the
//!   text sink.
//!
//! # Example
//!
//! ```
//! use streamsim_core::{record_miss_trace, run_streams, RecordOptions};
//! use streamsim_streams::StreamConfig;
//! use streamsim_workloads::generators::SequentialSweep;
//!
//! let trace = record_miss_trace(&SequentialSweep::default(), &RecordOptions::default())?;
//! let stats = run_streams(&trace, StreamConfig::paper_basic(4)?);
//! assert!(stats.hit_rate() > 0.9, "sequential sweeps stream perfectly");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chart;
pub mod experiments;
pub mod locality;
mod miss_trace;
pub mod paper;
mod profile;
pub mod replay;
pub mod report;
mod runner;
pub mod sink;
mod system;
mod trace_store;

pub use locality::{l2_geometry, profile_trace, stream_geometry};
pub use miss_trace::{record_miss_trace, run_l2, run_streams, MissEvent, MissTrace, RecordOptions};
pub use profile::{ProfileArtifact, ProfilePhase};
pub use replay::{
    replay, replay_chunked, replay_l2, replay_streams, FusedStreamObserver, L2Observer,
    MissObserver, MixedGeometry, StreamObserver, REPLAY_CHUNK_EVENTS,
};
pub use runner::{parallel_map, parallel_map_on, parallel_map_with_threads, ExecutorHandle};
pub use sink::{
    parse_flat_json_line, render_json_lines, render_text, Artifact, ArtifactSink, Cell,
    GuardedSink, JsonLinesSink, JsonValue, MultiSink, TextSink, Value,
};
pub use system::{L1Summary, MemorySystem, MemorySystemBuilder, SimReport, StreamTopology};
pub use trace_store::TraceStore;

// Re-export the workspace's key types so downstream users need only this
// crate (plus the facade) for common tasks.
pub use streamsim_cache::{CacheConfig, CacheStats, SetSampling};
pub use streamsim_streams::{StreamConfig, StreamStats};
pub use streamsim_trace::Access;
pub use streamsim_workloads::Workload;
