//! One-pass simulation of a complete memory hierarchy.

use streamsim_cache::{
    AccessOutcome, CacheConfig, CacheConfigError, CacheStats, SetAssocCache, SplitL1,
};
use streamsim_streams::{StreamConfig, StreamStats, StreamSystem};
use streamsim_trace::{Access, AccessKind, BlockSize};
use streamsim_workloads::Workload;

/// L1 statistics captured by a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1Summary {
    /// Instruction-cache counters.
    pub icache: CacheStats,
    /// Data-cache counters.
    pub dcache: CacheStats,
}

impl L1Summary {
    pub(crate) fn from_split(l1: &SplitL1) -> Self {
        L1Summary {
            icache: *l1.icache().stats(),
            dcache: *l1.dcache().stats(),
        }
    }

    /// Total references.
    pub fn refs(&self) -> u64 {
        self.icache.accesses() + self.dcache.accesses()
    }

    /// Total L1 misses (the unified miss stream length).
    pub fn misses(&self) -> u64 {
        self.icache.misses() + self.dcache.misses()
    }

    /// Data miss rate — the paper's Table 1 metric.
    pub fn data_miss_rate(&self) -> f64 {
        self.dcache.data_miss_rate()
    }

    /// Misses per instruction — Table 1's "MPI", with instruction fetches
    /// standing in for the instruction count. Returns 0.0 with no
    /// ifetches (ifetch emission disabled).
    pub fn mpi(&self) -> f64 {
        let instr = self.icache.accesses_of(AccessKind::IFetch);
        if instr == 0 {
            0.0
        } else {
            self.misses() as f64 / instr as f64
        }
    }
}

/// Where the stream buffers sit relative to the instruction/data split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamTopology {
    /// One set of streams serves instruction and data misses — the
    /// paper's configuration ("the stream buffers are unified").
    Unified(StreamConfig),
    /// Separate instruction and data streams — the MacroTek variant the
    /// paper mentions, evaluated as an ablation.
    Partitioned {
        /// Streams serving instruction misses.
        instruction: StreamConfig,
        /// Streams serving data misses.
        data: StreamConfig,
    },
}

/// Builder for [`MemorySystem`].
///
/// # Example
///
/// ```
/// use streamsim_core::MemorySystemBuilder;
/// use streamsim_streams::StreamConfig;
///
/// let system = MemorySystemBuilder::paper_l1()
///     .streams(StreamConfig::paper_filtered(10)?)
///     .build()?;
/// # let _ = system;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystemBuilder {
    icache: CacheConfig,
    dcache: CacheConfig,
    streams: Option<StreamTopology>,
    l2: Option<CacheConfig>,
}

impl MemorySystemBuilder {
    /// Starts from the paper's 64K I + 64K D 4-way primary caches.
    pub fn paper_l1() -> Self {
        let cfg = CacheConfig::paper_l1().expect("paper L1 config is valid");
        MemorySystemBuilder {
            icache: cfg,
            dcache: cfg,
            streams: None,
            l2: None,
        }
    }

    /// Starts from explicit primary-cache configurations.
    pub fn with_l1(icache: CacheConfig, dcache: CacheConfig) -> Self {
        MemorySystemBuilder {
            icache,
            dcache,
            streams: None,
            l2: None,
        }
    }

    /// Adds unified stream buffers behind the primary cache.
    #[must_use]
    pub fn streams(mut self, config: StreamConfig) -> Self {
        self.streams = Some(StreamTopology::Unified(config));
        self
    }

    /// Adds partitioned instruction/data stream buffers.
    #[must_use]
    pub fn partitioned_streams(mut self, instruction: StreamConfig, data: StreamConfig) -> Self {
        self.streams = Some(StreamTopology::Partitioned { instruction, data });
        self
    }

    /// Adds a secondary cache observing the same miss stream. The L2 is
    /// an independent *observer* (as in the paper's comparison): it sees
    /// every L1 miss regardless of stream outcomes, so streams and cache
    /// can be compared on one run.
    #[must_use]
    pub fn l2(mut self, config: CacheConfig) -> Self {
        self.l2 = Some(config);
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] for invalid cache configurations.
    pub fn build(self) -> Result<MemorySystem, CacheConfigError> {
        let streams = match self.streams {
            None => StreamsImpl::None,
            Some(StreamTopology::Unified(cfg)) => {
                StreamsImpl::Unified(Box::new(StreamSystem::new(cfg)))
            }
            Some(StreamTopology::Partitioned { instruction, data }) => StreamsImpl::Partitioned {
                instruction: Box::new(StreamSystem::new(instruction)),
                data: Box::new(StreamSystem::new(data)),
            },
        };
        Ok(MemorySystem {
            l1: SplitL1::new(self.icache, self.dcache)?,
            l1_block: self.dcache.block(),
            streams,
            l2: match self.l2 {
                Some(cfg) => Some(SetAssocCache::new(cfg)?),
                None => None,
            },
        })
    }
}

#[derive(Clone, Debug)]
enum StreamsImpl {
    None,
    Unified(Box<StreamSystem>),
    Partitioned {
        instruction: Box<StreamSystem>,
        data: Box<StreamSystem>,
    },
}

/// A complete memory hierarchy simulated in one pass: split L1 backed by
/// stream buffers and/or a secondary-cache observer (Figure 1's system).
///
/// Feed it references with [`MemorySystem::access`] (or a whole workload
/// with [`MemorySystem::run`]) and collect a [`SimReport`] with
/// [`MemorySystem::finish`].
#[derive(Clone, Debug)]
pub struct MemorySystem {
    l1: SplitL1,
    l1_block: BlockSize,
    streams: StreamsImpl,
    l2: Option<SetAssocCache>,
}

impl MemorySystem {
    /// Processes one reference through the hierarchy.
    pub fn access(&mut self, access: Access) {
        match self.l1.access(access) {
            AccessOutcome::Hit | AccessOutcome::Bypassed => {}
            AccessOutcome::Miss { writeback } => {
                match &mut self.streams {
                    StreamsImpl::None => {}
                    StreamsImpl::Unified(sys) => {
                        sys.on_l1_miss(access.addr);
                    }
                    StreamsImpl::Partitioned { instruction, data } => {
                        let sys = if access.kind == AccessKind::IFetch {
                            instruction
                        } else {
                            data
                        };
                        sys.on_l1_miss(access.addr);
                    }
                }
                if let Some(l2) = &mut self.l2 {
                    l2.access(access.addr, access.kind);
                }
                if let Some(victim) = writeback {
                    let base = victim.base_addr(self.l1_block);
                    match &mut self.streams {
                        StreamsImpl::None => {}
                        StreamsImpl::Unified(sys) => {
                            sys.on_writeback(base.block(sys.config().block()));
                        }
                        StreamsImpl::Partitioned { instruction, data } => {
                            // Writebacks are broadcast to BOTH partitions:
                            // stream buffers snoop the bus by address and a
                            // dirty block's address says nothing about which
                            // partition may have prefetched it. Each system
                            // snoops at its own block granularity. The replay
                            // path (ablations::PartitionedObserver) must match
                            // this exactly.
                            instruction.on_writeback(base.block(instruction.config().block()));
                            data.on_writeback(base.block(data.config().block()));
                        }
                    }
                    if let Some(l2) = &mut self.l2 {
                        l2.access(base, AccessKind::Store);
                    }
                }
            }
        }
    }

    /// Runs an entire workload through the system via the chunked
    /// emission path (one indirect call per batch of references).
    pub fn run(&mut self, workload: &dyn Workload) {
        let mut batch = Vec::new();
        workload.generate_chunks(&mut batch, &mut |chunk| {
            for &a in chunk {
                self.access(a);
            }
        });
    }

    /// Finalizes the streams and returns the report.
    pub fn finish(mut self) -> SimReport {
        let (streams, istreams, dstreams) = match &mut self.streams {
            StreamsImpl::None => (None, None, None),
            StreamsImpl::Unified(sys) => {
                sys.finalize();
                (Some(sys.stats()), None, None)
            }
            StreamsImpl::Partitioned { instruction, data } => {
                instruction.finalize();
                data.finalize();
                (None, Some(instruction.stats()), Some(data.stats()))
            }
        };
        SimReport {
            l1: L1Summary::from_split(&self.l1),
            streams,
            instruction_streams: istreams,
            data_streams: dstreams,
            l2: self.l2.map(|c| *c.stats()),
        }
    }
}

/// Results of a [`MemorySystem`] run.
#[derive(Clone, Copy, Debug)]
pub struct SimReport {
    /// Primary-cache statistics.
    pub l1: L1Summary,
    /// Unified stream statistics, if unified streams were configured.
    pub streams: Option<StreamStats>,
    /// Instruction-stream statistics, if partitioned.
    pub instruction_streams: Option<StreamStats>,
    /// Data-stream statistics, if partitioned.
    pub data_streams: Option<StreamStats>,
    /// Secondary-cache statistics, if an L2 observer was configured.
    pub l2: Option<CacheStats>,
}

impl SimReport {
    /// The overall stream hit rate, combining partitions when present.
    pub fn stream_hit_rate(&self) -> Option<f64> {
        match (self.streams, self.instruction_streams, self.data_streams) {
            (Some(s), _, _) => Some(s.hit_rate()),
            (None, Some(i), Some(d)) => {
                let lookups = i.lookups + d.lookups;
                if lookups == 0 {
                    Some(0.0)
                } else {
                    Some((i.hits + d.hits) as f64 / lookups as f64)
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_workloads::generators::SequentialSweep;

    fn sweep() -> SequentialSweep {
        SequentialSweep {
            arrays: 2,
            bytes_per_array: 256 * 1024,
            passes: 2,
            elem: 8,
        }
    }

    #[test]
    fn one_pass_matches_record_and_replay() {
        let w = sweep();
        let mut sys = MemorySystemBuilder::paper_l1()
            .streams(StreamConfig::paper_basic(4).unwrap())
            .build()
            .unwrap();
        sys.run(&w);
        let report = sys.finish();

        let trace = crate::record_miss_trace(&w, &crate::RecordOptions::default()).unwrap();
        let replayed = crate::run_streams(&trace, StreamConfig::paper_basic(4).unwrap());

        let direct = report.streams.unwrap();
        assert_eq!(direct.lookups, replayed.lookups);
        assert_eq!(direct.hits, replayed.hits);
        assert_eq!(direct.prefetches_issued, replayed.prefetches_issued);
    }

    #[test]
    fn l2_observer_sees_every_miss() {
        let w = sweep();
        let mut sys = MemorySystemBuilder::paper_l1()
            .streams(StreamConfig::paper_basic(4).unwrap())
            .l2(CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap())
            .build()
            .unwrap();
        sys.run(&w);
        let report = sys.finish();
        let l2 = report.l2.unwrap();
        let streams = report.streams.unwrap();
        // The L2 observes fetches plus write-backs; with a read-only sweep
        // there are no write-backs, so accesses == stream lookups.
        assert_eq!(l2.accesses(), streams.lookups);
    }

    #[test]
    fn partitioned_streams_split_the_miss_stream() {
        let w = sweep();
        let cfg = StreamConfig::paper_basic(4).unwrap();
        let mut sys = MemorySystemBuilder::paper_l1()
            .partitioned_streams(cfg, cfg)
            .build()
            .unwrap();
        sys.run(&w);
        let report = sys.finish();
        let i = report.instruction_streams.unwrap();
        let d = report.data_streams.unwrap();
        assert!(d.lookups > 0);
        assert_eq!(i.lookups + d.lookups, report.l1.misses());
        assert!(report.stream_hit_rate().unwrap() > 0.8);
    }

    #[test]
    fn no_streams_reports_none() {
        let mut sys = MemorySystemBuilder::paper_l1().build().unwrap();
        sys.run(&sweep());
        let report = sys.finish();
        assert!(report.streams.is_none());
        assert!(report.stream_hit_rate().is_none());
        assert!(report.l1.refs() > 0);
    }

    #[test]
    fn mpi_uses_instruction_fetches() {
        let mut sys = MemorySystemBuilder::paper_l1().build().unwrap();
        sys.run(&sweep());
        let report = sys.finish();
        assert!(report.l1.mpi() > 0.0);
        assert!(report.l1.data_miss_rate() > 0.0);
    }
}
