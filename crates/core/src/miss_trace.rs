//! Recording and replaying the primary-cache miss stream.
//!
//! Everything the paper evaluates — stream buffers of any configuration
//! and secondary caches of any geometry — sits *behind* the primary cache
//! and observes only its miss and write-back stream. That stream does not
//! depend on the observer, so we record it once per workload and replay
//! it against every configuration of interest. A multi-million-reference
//! workload typically produces a miss trace two orders of magnitude
//! smaller, which is what makes the paper's parameter sweeps (ten stream
//! counts × fifteen benchmarks, dozens of L2 geometries) cheap.

use streamsim_cache::{AccessOutcome, CacheConfig, CacheConfigError, SetSampling, SplitL1};
use streamsim_streams::{StreamConfig, StreamStats};
use streamsim_trace::{Access, AccessKind, Addr, BlockSize, ChunkSampler};
use streamsim_workloads::Workload;

use crate::L1Summary;

/// One event in the primary cache's external traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissEvent {
    /// A primary-cache miss: a demand fetch of the block containing
    /// `addr` (kept at full byte precision — stride detection needs it).
    Fetch {
        /// The missing reference's byte address.
        addr: Addr,
        /// Load, store or instruction fetch.
        kind: AccessKind,
    },
    /// A dirty block written back to memory; `base` is the block's base
    /// byte address.
    Writeback {
        /// Base byte address of the evicted block.
        base: Addr,
    },
}

/// Options for [`record_miss_trace`].
#[derive(Clone, Copy, Debug)]
pub struct RecordOptions {
    /// Instruction-cache configuration.
    pub icache: CacheConfig,
    /// Data-cache configuration.
    pub dcache: CacheConfig,
    /// Optional time sampling `(on, off)` applied to the reference stream
    /// before the cache — the paper samples 10 000 on / 90 000 off.
    pub sampling: Option<(u64, u64)>,
}

impl Default for RecordOptions {
    /// The paper's configuration: 64 KB I + 64 KB D, 4-way, random
    /// replacement, no time sampling.
    fn default() -> Self {
        let cfg = CacheConfig::paper_l1().expect("paper L1 config is valid");
        RecordOptions {
            icache: cfg,
            dcache: cfg,
            sampling: None,
        }
    }
}

impl RecordOptions {
    /// Enables the paper's 10 % time sampling.
    #[must_use]
    pub fn with_paper_sampling(mut self) -> Self {
        self.sampling = Some((10_000, 90_000));
        self
    }
}

/// A recorded primary-cache miss stream plus the L1 statistics that
/// produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissTrace {
    events: Vec<MissEvent>,
    summary: L1Summary,
    l1_block: BlockSize,
}

impl MissTrace {
    /// The events, in program order.
    pub fn events(&self) -> &[MissEvent] {
        &self.events
    }

    /// Number of demand fetches (primary-cache misses).
    pub fn fetches(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, MissEvent::Fetch { .. }))
            .count() as u64
    }

    /// Number of write-backs.
    pub fn writebacks(&self) -> u64 {
        self.events.len() as u64 - self.fetches()
    }

    /// The primary-cache statistics observed while recording.
    pub fn l1(&self) -> &L1Summary {
        &self.summary
    }

    /// The primary cache's block size (the granularity of fetches).
    pub fn l1_block(&self) -> BlockSize {
        self.l1_block
    }
}

/// Runs `workload` through a split L1 and records its miss stream.
///
/// # Errors
///
/// Returns [`CacheConfigError`] if either cache configuration is invalid.
pub fn record_miss_trace(
    workload: &dyn Workload,
    options: &RecordOptions,
) -> Result<MissTrace, CacheConfigError> {
    let mut span = streamsim_obs::span("record");
    let mut l1 = SplitL1::new(options.icache, options.dcache)?;
    let block = options.dcache.block();
    // Miss traces run 10^4-10^5 events at quick scale; starting with a
    // real allocation skips the long tail of doubling reallocations the
    // hot loop would otherwise absorb.
    let mut events = Vec::with_capacity(1 << 15);
    let mut batch = Vec::new();

    // Workloads emit chunks (one indirect call per ~4096 refs); the L1
    // pass runs over contiguous slices.
    {
        let mut consume = |chunk: &[Access]| {
            // One relaxed load per ~4096-ref chunk when disabled; the
            // chunk-size distribution is workload-derived, so it is
            // deterministic across runs and thread counts.
            streamsim_obs::record_hist(streamsim_obs::HistId::RecordChunkRefs, chunk.len() as u64);
            for &access in chunk {
                match l1.access(access) {
                    AccessOutcome::Hit | AccessOutcome::Bypassed => {}
                    AccessOutcome::Miss { writeback } => {
                        events.push(MissEvent::Fetch {
                            addr: access.addr,
                            kind: access.kind,
                        });
                        if let Some(victim) = writeback {
                            events.push(MissEvent::Writeback {
                                base: victim.base_addr(block),
                            });
                        }
                    }
                }
            }
        };
        match options.sampling {
            Some((on, off)) => {
                // Time sampling splits each chunk into kept sub-slices
                // by range arithmetic instead of a per-ref branch.
                let mut sampler = ChunkSampler::new(on, off);
                workload.generate_chunks(&mut batch, &mut |chunk| {
                    sampler.sample(chunk, &mut consume);
                });
            }
            None => workload.generate_chunks(&mut batch, &mut consume),
        }
    }

    let summary = L1Summary::from_split(&l1);
    span.items(summary.icache.accesses() + summary.dcache.accesses());
    Ok(MissTrace {
        events,
        summary,
        l1_block: block,
    })
}

/// Replays a miss trace against a stream-buffer configuration and returns
/// the finalized statistics.
///
/// A one-observer convenience over [`crate::replay`]; use
/// [`crate::replay_streams`] to sweep several configurations in a single
/// pass over the trace.
pub fn run_streams(trace: &MissTrace, config: StreamConfig) -> StreamStats {
    let mut observer = crate::replay::StreamObserver::new(config);
    crate::replay(trace, &mut [&mut observer]);
    observer.stats()
}

/// Replays a miss trace against a secondary cache (optionally
/// set-sampled) and returns its statistics. The cache's hit rate over the
/// replay is the paper's *local hit rate* — hits per primary-cache miss.
///
/// # Errors
///
/// Returns [`CacheConfigError`] if the configuration or sampling is
/// invalid.
pub fn run_l2(
    trace: &MissTrace,
    config: CacheConfig,
    sampling: Option<SetSampling>,
) -> Result<streamsim_cache::CacheStats, CacheConfigError> {
    let mut observer = crate::replay::L2Observer::new(config, sampling)?;
    crate::replay(trace, &mut [&mut observer]);
    Ok(observer.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim_workloads::generators::{RandomGather, SequentialSweep, StridedSweep};

    fn small_l1() -> RecordOptions {
        let cfg = CacheConfig::new(8 * 1024, 4, BlockSize::new(32).unwrap()).unwrap();
        RecordOptions {
            icache: cfg,
            dcache: cfg,
            sampling: None,
        }
    }

    #[test]
    fn sequential_sweep_misses_once_per_block() {
        let w = SequentialSweep {
            arrays: 1,
            bytes_per_array: 64 * 1024,
            passes: 1,
            elem: 8,
        };
        let trace = record_miss_trace(&w, &small_l1()).unwrap();
        // 64 KB / 32 B = 2048 data misses (plus a few ifetch misses).
        let fetches = trace.fetches();
        assert!((2048..2200).contains(&fetches), "fetches = {fetches}");
        assert_eq!(trace.writebacks(), 0, "read-only sweep");
    }

    #[test]
    fn stores_generate_writebacks() {
        let w = SequentialSweep {
            arrays: 1,
            bytes_per_array: 64 * 1024,
            passes: 2,
            elem: 8,
        };
        // All-store variant via a custom workload would be more direct;
        // reuse the sweep and check the plumbing with the L1 stats.
        let trace = record_miss_trace(&w, &small_l1()).unwrap();
        assert_eq!(trace.l1().dcache.writebacks, trace.writebacks());
    }

    #[test]
    fn sampling_shrinks_the_trace() {
        let w = SequentialSweep::default();
        let full = record_miss_trace(&w, &RecordOptions::default()).unwrap();
        let sampled = record_miss_trace(
            &w,
            &RecordOptions {
                sampling: Some((1_000, 9_000)),
                ..RecordOptions::default()
            },
        )
        .unwrap();
        let ratio = sampled.fetches() as f64 / full.fetches() as f64;
        assert!((0.05..0.25).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn streams_ace_sequential_misses() {
        let trace =
            record_miss_trace(&SequentialSweep::default(), &RecordOptions::default()).unwrap();
        let stats = run_streams(&trace, StreamConfig::paper_basic(4).unwrap());
        assert!(stats.hit_rate() > 0.9, "hit rate {}", stats.hit_rate());
        assert!(stats.prefetch_accounting_balances());
    }

    #[test]
    fn streams_fail_random_misses() {
        let trace = record_miss_trace(&RandomGather::default(), &RecordOptions::default()).unwrap();
        let stats = run_streams(&trace, StreamConfig::paper_basic(10).unwrap());
        assert!(stats.hit_rate() < 0.05, "hit rate {}", stats.hit_rate());
        // Unfiltered random misses waste ~depth prefetches per miss.
        assert!(stats.extra_bandwidth() > 1.0);
    }

    #[test]
    fn filter_slashes_random_bandwidth() {
        let trace = record_miss_trace(&RandomGather::default(), &RecordOptions::default()).unwrap();
        let plain = run_streams(&trace, StreamConfig::paper_basic(10).unwrap());
        let filtered = run_streams(&trace, StreamConfig::paper_filtered(10).unwrap());
        assert!(filtered.extra_bandwidth() < plain.extra_bandwidth() / 5.0);
    }

    #[test]
    fn czone_catches_strided_misses() {
        let w = StridedSweep {
            stride_bytes: 4096,
            count: 2048,
            repeats: 2,
        };
        let trace = record_miss_trace(&w, &RecordOptions::default()).unwrap();
        let unit = run_streams(&trace, StreamConfig::paper_filtered(10).unwrap());
        let strided = run_streams(&trace, StreamConfig::paper_strided(10, 16).unwrap());
        assert!(unit.hit_rate() < 0.1, "unit {}", unit.hit_rate());
        assert!(strided.hit_rate() > 0.7, "strided {}", strided.hit_rate());
    }

    #[test]
    fn l2_local_hit_rate_on_repeated_sweeps() {
        let w = SequentialSweep {
            arrays: 1,
            bytes_per_array: 256 * 1024,
            passes: 4,
            elem: 8,
        };
        let trace = record_miss_trace(&w, &RecordOptions::default()).unwrap();
        // A 1 MB L2 holds the whole array: every miss after the first
        // pass hits.
        let big = run_l2(
            &trace,
            CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
            None,
        )
        .unwrap();
        assert!(big.hit_rate() > 0.6, "hit rate {}", big.hit_rate());
        // A 64 KB L2 thrashes.
        let small = run_l2(
            &trace,
            CacheConfig::new(64 << 10, 2, BlockSize::new(64).unwrap()).unwrap(),
            None,
        )
        .unwrap();
        assert!(small.hit_rate() < big.hit_rate());
    }

    #[test]
    fn sampled_l2_estimates_full_l2() {
        let w = SequentialSweep {
            arrays: 2,
            bytes_per_array: 256 * 1024,
            passes: 3,
            elem: 8,
        };
        let trace = record_miss_trace(&w, &RecordOptions::default()).unwrap();
        let cfg = CacheConfig::new(512 << 10, 2, BlockSize::new(64).unwrap()).unwrap();
        let full = run_l2(&trace, cfg, None).unwrap();
        let sampled = run_l2(&trace, cfg, Some(SetSampling::new(2, 1))).unwrap();
        assert!(
            (full.hit_rate() - sampled.hit_rate()).abs() < 0.05,
            "full {} vs sampled {}",
            full.hit_rate(),
            sampled.hit_rate()
        );
    }

    #[test]
    fn trace_accessors_are_consistent() {
        let trace =
            record_miss_trace(&SequentialSweep::default(), &RecordOptions::default()).unwrap();
        assert_eq!(
            trace.events().len() as u64,
            trace.fetches() + trace.writebacks()
        );
        assert_eq!(trace.l1_block().bytes(), 32);
        assert_eq!(
            trace.fetches(),
            trace.l1().icache.misses() + trace.l1().dcache.misses()
        );
    }
}
