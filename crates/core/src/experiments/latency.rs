//! Timing extension — quantifying the paper's §8 caveat.
//!
//! The paper compares streams and caches by hit *ratio* while conceding
//! that "a stream buffer entry may have been prefetched but the data
//! hasn't returned from memory yet … The probability of this situation
//! depends highly on the particular memory system design." This
//! experiment quantifies that probability: every stream hit records its
//! *lead time* — how many stream lookups before the hit its prefetch was
//! issued. If the main-memory latency spans `R` inter-miss intervals,
//! only hits with lead > `R` have their data waiting; the rest are
//! partial (the processor stalls for the residue).
//!
//! The sweep reports, per benchmark and per `R ∈ {1, 2, 4, 8}`, the
//! *covered hit rate* — the fraction of all primary-cache misses fully
//! serviced from a stream buffer — next to the raw hit rate the paper
//! reports. The paper's judgement that "in many realistic system designs
//! the depth of the streams will be sufficient" corresponds to the small
//! gap at low `R`; the deep-buffer ablation shows how depth recovers the
//! gap at high `R`.

use std::fmt;

use streamsim_streams::{Allocation, StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::replay_streams;
use crate::sink::{col, Artifact, ArtifactSink, Cell};

/// Memory latencies swept, in units of the mean inter-miss interval.
pub const LATENCY_RATIOS: [u64; 4] = [1, 2, 4, 8];

/// One benchmark's timing profile.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Depth-2 (paper) stream statistics with lead-time histogram.
    pub depth2: StreamStats,
    /// Depth-8 statistics, showing how depth buys latency tolerance.
    pub depth8: StreamStats,
}

impl Row {
    /// Covered hit rate at latency ratio `r` with the paper's depth-2
    /// buffers: hits whose prefetch had at least `r` lookups of lead,
    /// as a fraction of all misses.
    pub fn covered_hit_rate(&self, r: u64) -> f64 {
        self.depth2.hit_rate() * self.depth2.leads.coverage(r)
    }
}

/// Results of the latency extension.
#[derive(Clone, Debug)]
pub struct Latency {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Latency {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment. Both depths share one replay pass per benchmark.
pub fn run(options: &ExperimentOptions) -> Latency {
    let configs = [
        StreamConfig::new(10, 2, Allocation::OnMiss).expect("valid"),
        StreamConfig::new(10, 8, Allocation::OnMiss).expect("valid"),
    ];
    let rows = miss_traces(options)
        .into_iter()
        .map(|(name, trace)| {
            let mut stats = replay_streams(&trace, &configs).into_iter();
            Row {
                name,
                depth2: stats.next().expect("two configs"),
                depth8: stats.next().expect("two configs"),
            }
        })
        .collect();
    Latency { rows }
}

impl Artifact for Latency {
    fn artifact(&self) -> &'static str {
        "latency"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let mut columns = vec![col("bench", "bench"), col("raw hit", "raw_hit_pct")];
        columns.extend(
            LATENCY_RATIOS
                .iter()
                .map(|r| col(format!("R={r} (d=2)"), format!("covered_pct_r{r}_d2"))),
        );
        columns.push(col("R=8 (d=8)", "covered_pct_r8_d8"));
        sink.begin_table(
            self.artifact(),
            "covered_hit_rate",
            "Timing extension (§8): covered hit rate (%) vs memory latency R (in inter-miss intervals)",
            &columns,
        );
        for r in &self.rows {
            let raw = r.depth2.hit_rate() * 100.0;
            let mut cells = vec![
                Cell::text(r.name.clone()),
                Cell::num(raw, format!("{raw:.0}")),
            ];
            cells.extend(LATENCY_RATIOS.iter().map(|&ratio| {
                let covered = r.covered_hit_rate(ratio) * 100.0;
                Cell::num(covered, format!("{covered:.0}"))
            }));
            let deep = r.depth8.hit_rate() * r.depth8.leads.coverage(8) * 100.0;
            cells.push(Cell::num(deep, format!("{deep:.0}")));
            sink.row(&cells);
        }
        sink.note(
            "depth 2 covers short latencies (the paper's assumption); depth 8 restores\n\
             coverage when memory latency spans many inter-miss intervals",
        );
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_decreases_with_latency() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            let mut prev = f64::INFINITY;
            for &ratio in &LATENCY_RATIOS {
                let covered = r.covered_hit_rate(ratio);
                assert!(covered <= prev + 1e-12, "{}", r.name);
                assert!(covered <= r.depth2.hit_rate() + 1e-12, "{}", r.name);
                prev = covered;
            }
        }
    }

    #[test]
    fn depth_buys_latency_tolerance_for_streaming_codes() {
        let result = run(&ExperimentOptions::quick());
        let embar = result.row("embar").unwrap();
        let d2_at8 = embar.depth2.hit_rate() * embar.depth2.leads.coverage(8);
        let d8_at8 = embar.depth8.hit_rate() * embar.depth8.leads.coverage(8);
        assert!(
            d8_at8 > d2_at8 + 0.2,
            "depth 8 ({d8_at8}) should far exceed depth 2 ({d2_at8}) at R=8"
        );
    }

    #[test]
    fn display_renders_sweep() {
        let result = run(&ExperimentOptions::quick());
        let text = result.to_string();
        assert!(text.contains("R=4"));
        assert!(text.contains("embar"));
    }
}
