//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Beyond the paper's headline figures, these sweeps probe each design
//! decision in isolation:
//!
//! * **depth** — the paper fixes stream depth at two "to make as few
//!   assumptions about the memory system as possible"; how much do
//!   deeper FIFOs matter for hit rate (they mostly cover latency, which
//!   hit rates do not see)?
//! * **match policy** — head-only comparators (the paper's hardware) vs
//!   a fully associative lookup over all entries.
//! * **filter size** — the paper states 8–10 entries suffice; sweep it.
//! * **stride scheme** — the czone partition filter vs the rejected
//!   minimum-delta scheme (§7).
//! * **partitioned streams** — the MacroTek variant with separate
//!   instruction/data streams vs the paper's unified streams.
//! * **victim buffer** — a direct-mapped L1 with Jouppi's victim cache,
//!   the configuration the paper sidesteps by simulating a 4-way L1.
//! * **L1 replacement policy** — the paper's L1 uses random replacement;
//!   random leaves *survivors* in a streamed-over set that punch gaps in
//!   the miss stream and break head-only streams, so LRU/PLRU L1s make
//!   streams look better. Quantified here.
//! * **set sampling** — the paper estimated Table 4's secondary-cache hit
//!   rates by set sampling [11]; this sweep validates the estimator
//!   against full simulation.

use std::fmt;

use streamsim_cache::{CacheConfig, Replacement, SetSampling, VictimL1, VictimL1Outcome};
use streamsim_streams::{Allocation, MatchPolicy, StreamConfig, StreamSystem};
use streamsim_trace::BlockSize;
use streamsim_workloads::Workload;

use crate::experiments::{workload_set, ExperimentOptions};
use crate::report::TextTable;
use crate::{run_l2, run_streams, MissTrace, RecordOptions};

/// The benchmarks used for ablations: one stream-friendly, one strided,
/// one short-burst, one irregular.
pub const ABLATION_BENCHMARKS: [&str; 4] = ["mgrid", "fftpde", "appbt", "adm"];

/// Results of the ablation suite.
#[derive(Clone, Debug)]
pub struct Ablations {
    /// Hit rate per (benchmark, depth) for depths [1, 2, 4, 8].
    pub depth: Vec<(String, Vec<f64>)>,
    /// Hit rate per (benchmark, [head-only, any-entry]).
    pub match_policy: Vec<(String, [f64; 2])>,
    /// (hit rate, EB) per (benchmark, filter entries) for [4, 8, 16, 32].
    pub filter_size: Vec<(String, Vec<(f64, f64)>)>,
    /// Hit rate per (benchmark, [czone, min-delta]).
    pub stride_scheme: Vec<(String, [f64; 2])>,
    /// Hit rate per (benchmark, [unified, partitioned]).
    pub topology: Vec<(String, [f64; 2])>,
    /// Per benchmark: (direct-mapped L1 data miss rate, fraction of those
    /// misses the 16-entry victim buffer recovers, and the stream hit
    /// rate over the surviving misses — Jouppi's full original front end).
    pub victim: Vec<(String, f64, f64, f64)>,
    /// Stream hit rate per (benchmark, [random, LRU, tree-PLRU] L1).
    pub l1_replacement: Vec<(String, [f64; 3])>,
    /// Per benchmark: (full L2 hit rate, 1/4-set-sampled estimate) for a
    /// 1 MB secondary cache.
    pub sampling: Vec<(String, f64, f64)>,
}

/// Stream depths swept.
pub const DEPTHS: [usize; 4] = [1, 2, 4, 8];
/// Filter sizes swept.
pub const FILTER_SIZES: [usize; 4] = [4, 8, 16, 32];

fn ablation_workloads(options: &ExperimentOptions) -> Vec<Box<dyn Workload>> {
    workload_set(options.scale)
        .into_iter()
        .filter(|w| ABLATION_BENCHMARKS.contains(&w.name()))
        .collect()
}

fn trace_of(w: &dyn Workload, options: &ExperimentOptions) -> MissTrace {
    crate::record_miss_trace(w, &options.record_options()).expect("valid L1")
}

/// Runs the ablation suite.
pub fn run(options: &ExperimentOptions) -> Ablations {
    let workloads = ablation_workloads(options);
    let traces: Vec<(String, MissTrace)> = crate::parallel_map(workloads, |w| {
        (w.name().to_owned(), trace_of(w.as_ref(), options))
    });

    let depth = traces
        .iter()
        .map(|(name, trace)| {
            let rates = DEPTHS
                .iter()
                .map(|&d| {
                    run_streams(
                        trace,
                        StreamConfig::new(10, d, Allocation::OnMiss).expect("valid"),
                    )
                    .hit_rate()
                })
                .collect();
            (name.clone(), rates)
        })
        .collect();

    let match_policy = traces
        .iter()
        .map(|(name, trace)| {
            let head = run_streams(trace, StreamConfig::paper_basic(10).expect("valid"));
            let any = run_streams(
                trace,
                StreamConfig::new(10, 4, Allocation::OnMiss)
                    .expect("valid")
                    .with_match_policy(MatchPolicy::AnyEntry),
            );
            (name.clone(), [head.hit_rate(), any.hit_rate()])
        })
        .collect();

    let filter_size = traces
        .iter()
        .map(|(name, trace)| {
            let cells = FILTER_SIZES
                .iter()
                .map(|&entries| {
                    let stats = run_streams(
                        trace,
                        StreamConfig::new(10, 2, Allocation::UnitFilter { entries })
                            .expect("valid"),
                    );
                    (stats.hit_rate(), stats.extra_bandwidth())
                })
                .collect();
            (name.clone(), cells)
        })
        .collect();

    let stride_scheme = traces
        .iter()
        .map(|(name, trace)| {
            let czone = run_streams(trace, StreamConfig::paper_strided(10, 16).expect("valid"));
            let min_delta = run_streams(
                trace,
                StreamConfig::new(
                    10,
                    2,
                    Allocation::MinDelta {
                        entries: 16,
                        max_stride_words: 1 << 20,
                    },
                )
                .expect("valid"),
            );
            (name.clone(), [czone.hit_rate(), min_delta.hit_rate()])
        })
        .collect();

    // Topology: replay the unified miss stream; the partitioned variant
    // routes instruction misses to a 2-stream system and data misses to
    // an 8-stream system (same total hardware).
    let topology = traces
        .iter()
        .map(|(name, trace)| {
            let unified = run_streams(trace, StreamConfig::paper_basic(10).expect("valid"));
            let mut isys = StreamSystem::new(StreamConfig::paper_basic(2).expect("valid"));
            let mut dsys = StreamSystem::new(StreamConfig::paper_basic(8).expect("valid"));
            for event in trace.events() {
                match *event {
                    crate::MissEvent::Fetch { addr, kind } => {
                        if kind == streamsim_trace::AccessKind::IFetch {
                            isys.on_l1_miss(addr);
                        } else {
                            dsys.on_l1_miss(addr);
                        }
                    }
                    crate::MissEvent::Writeback { base } => {
                        let block = base.block(BlockSize::default());
                        isys.on_writeback(block);
                        dsys.on_writeback(block);
                    }
                }
            }
            isys.finalize();
            dsys.finalize();
            let (i, d) = (isys.stats(), dsys.stats());
            let lookups = i.lookups + d.lookups;
            let part = if lookups == 0 {
                0.0
            } else {
                (i.hits + d.hits) as f64 / lookups as f64
            };
            (name.clone(), [unified.hit_rate(), part])
        })
        .collect();

    // L1 replacement policy: re-record each miss trace under random,
    // LRU and tree-PLRU primaries and compare stream hit rates.
    let l1_replacement = crate::parallel_map(ablation_workloads(options), |w| {
        let base = options.record_options();
        let rates = [
            Replacement::Random { seed: 0x5eed },
            Replacement::Lru,
            Replacement::TreePlru,
        ]
        .map(|policy| {
            let cfg = base.dcache.with_replacement(policy);
            let record = RecordOptions {
                icache: cfg,
                dcache: cfg,
                sampling: base.sampling,
            };
            let trace = crate::record_miss_trace(w.as_ref(), &record).expect("valid L1");
            run_streams(&trace, StreamConfig::paper_basic(10).expect("valid")).hit_rate()
        });
        (w.name().to_owned(), rates)
    });

    // Set-sampling validation: the paper's Table 4 estimator against
    // full simulation of a 1 MB L2.
    let sampling = traces
        .iter()
        .map(|(name, trace)| {
            let cfg = CacheConfig::new(1 << 20, 2, trace.l1_block()).expect("valid L2");
            let full = run_l2(trace, cfg, None).expect("valid").hit_rate();
            let est = run_l2(trace, cfg, Some(SetSampling::new(2, 1)))
                .expect("valid")
                .hit_rate();
            (name.clone(), full, est)
        })
        .collect();

    // Victim buffer: Jouppi's original front end — a direct-mapped data
    // cache with a 16-entry victim cache, backed by ten stream buffers
    // that see only the misses the victim buffer could not recover.
    let victim = crate::parallel_map(ablation_workloads(options), |w| {
        let l1_bytes = match options.scale {
            crate::experiments::Scale::Paper => 64 << 10,
            crate::experiments::Scale::Quick => 16 << 10,
        };
        let cfg = CacheConfig::new(l1_bytes, 1, BlockSize::default()).expect("valid");
        let mut l1 = VictimL1::new(cfg, 16).expect("valid");
        let mut streams = StreamSystem::new(StreamConfig::paper_basic(10).expect("valid"));
        w.generate(&mut |access| {
            if access.kind == streamsim_trace::AccessKind::IFetch {
                return;
            }
            if l1.access(access.addr, access.kind) == VictimL1Outcome::Miss {
                streams.on_l1_miss(access.addr);
            }
        });
        streams.finalize();
        (
            w.name().to_owned(),
            l1.cache_stats().data_miss_rate(),
            l1.recovery_rate(),
            streams.stats().hit_rate(),
        )
    });

    Ablations {
        depth,
        match_policy,
        filter_size,
        stride_scheme,
        topology,
        victim,
        l1_replacement,
        sampling,
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: hit rate (%) vs stream depth (10 streams, no filter)"
        )?;
        let mut headers: Vec<String> = vec!["bench".into()];
        headers.extend(DEPTHS.iter().map(|d| format!("depth {d}")));
        let mut t = TextTable::new(headers);
        for (name, rates) in &self.depth {
            let mut cells = vec![name.clone()];
            cells.extend(rates.iter().map(|h| format!("{:.0}", h * 100.0)));
            t.row(cells);
        }
        writeln!(f, "{t}")?;

        writeln!(f, "Ablation: match policy, hit rate (%)")?;
        let mut t = TextTable::new(vec!["bench", "head-only", "any-entry (depth 4)"]);
        for (name, [head, any]) in &self.match_policy {
            t.row(vec![
                name.clone(),
                format!("{:.0}", head * 100.0),
                format!("{:.0}", any * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(f, "Ablation: unit-filter size, hit % / EB %")?;
        let mut headers: Vec<String> = vec!["bench".into()];
        headers.extend(FILTER_SIZES.iter().map(|s| format!("{s} entries")));
        let mut t = TextTable::new(headers);
        for (name, cells) in &self.filter_size {
            let mut row = vec![name.clone()];
            row.extend(
                cells
                    .iter()
                    .map(|(h, eb)| format!("{:.0}/{:.0}", h * 100.0, eb * 100.0)),
            );
            t.row(row);
        }
        writeln!(f, "{t}")?;

        writeln!(f, "Ablation: stride-detection scheme, hit rate (%)")?;
        let mut t = TextTable::new(vec!["bench", "czone (16b)", "min-delta"]);
        for (name, [czone, min_delta]) in &self.stride_scheme {
            t.row(vec![
                name.clone(),
                format!("{:.0}", czone * 100.0),
                format!("{:.0}", min_delta * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(
            f,
            "Ablation: unified vs partitioned (2 I + 8 D) streams, hit rate (%)"
        )?;
        let mut t = TextTable::new(vec!["bench", "unified (10)", "partitioned"]);
        for (name, [unified, part]) in &self.topology {
            t.row(vec![
                name.clone(),
                format!("{:.0}", unified * 100.0),
                format!("{:.0}", part * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(
            f,
            "Ablation: Jouppi's front end — direct-mapped L1 + 16-entry victim buffer + streams"
        )?;
        let mut t = TextTable::new(vec![
            "bench",
            "DM miss %",
            "victim recovery %",
            "stream hit %",
        ]);
        for (name, miss, recovery, stream_hit) in &self.victim {
            t.row(vec![
                name.clone(),
                format!("{:.2}", miss * 100.0),
                format!("{:.0}", recovery * 100.0),
                format!("{:.0}", stream_hit * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(
            f,
            "Ablation: stream hit rate (%) vs L1 replacement policy (10 streams)"
        )?;
        let mut t = TextTable::new(vec!["bench", "random (paper)", "LRU", "tree-PLRU"]);
        for (name, [random, lru, plru]) in &self.l1_replacement {
            t.row(vec![
                name.clone(),
                format!("{:.0}", random * 100.0),
                format!("{:.0}", lru * 100.0),
                format!("{:.0}", plru * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(
            f,
            "Ablation: set-sampling estimator vs full simulation (1 MB L2 local hit %)"
        )?;
        let mut t = TextTable::new(vec!["bench", "full", "1/4 sampled"]);
        for (name, full, est) in &self.sampling {
            t.row(vec![
                name.clone(),
                format!("{:.1}", full * 100.0),
                format!("{:.1}", est * 100.0),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Ablations {
        run(&ExperimentOptions::quick())
    }

    #[test]
    fn covers_the_selected_benchmarks() {
        let a = quick();
        assert_eq!(a.depth.len(), ABLATION_BENCHMARKS.len());
        assert_eq!(a.victim.len(), ABLATION_BENCHMARKS.len());
        let text = a.to_string();
        assert!(text.contains("depth 8"));
        assert!(text.contains("min-delta"));
    }

    #[test]
    fn deeper_streams_do_not_hurt_sequential_codes() {
        let a = quick();
        let (_, rates) = a.depth.iter().find(|(n, _)| n == "mgrid").unwrap();
        assert!(
            rates[3] + 0.05 >= rates[0],
            "depth 8 ({}) vs depth 1 ({})",
            rates[3],
            rates[0]
        );
    }

    #[test]
    fn any_entry_matching_never_loses_to_head_only() {
        let a = quick();
        for (name, [head, any]) in &a.match_policy {
            assert!(any + 0.05 >= *head, "{name}: any {any} vs head {head}");
        }
    }

    #[test]
    fn victim_buffer_front_end_produces_sane_numbers() {
        let a = quick();
        for (name, miss, recovery, stream_hit) in &a.victim {
            assert!(*miss > 0.0, "{name} should miss sometimes");
            assert!((0.0..=1.0).contains(recovery), "{name}");
            assert!((0.0..=1.0).contains(stream_hit), "{name}");
        }
    }

    #[test]
    fn lru_l1_streams_at_least_as_well_as_random() {
        // Random replacement leaves survivors that break streams; LRU
        // evicts cleanly, so stream hit rates should not degrade.
        let a = quick();
        for (name, [random, lru, _]) in &a.l1_replacement {
            assert!(
                lru + 0.08 >= *random,
                "{name}: LRU {lru} vs random {random}"
            );
        }
    }

    #[test]
    fn set_sampling_estimates_track_full_simulation() {
        let a = quick();
        for (name, full, est) in &a.sampling {
            assert!(
                (full - est).abs() < 0.12,
                "{name}: full {full} vs estimate {est}"
            );
        }
    }
}
