//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Beyond the paper's headline figures, these sweeps probe each design
//! decision in isolation:
//!
//! * **depth** — the paper fixes stream depth at two "to make as few
//!   assumptions about the memory system as possible"; how much do
//!   deeper FIFOs matter for hit rate (they mostly cover latency, which
//!   hit rates do not see)?
//! * **match policy** — head-only comparators (the paper's hardware) vs
//!   a fully associative lookup over all entries.
//! * **filter size** — the paper states 8–10 entries suffice; sweep it.
//! * **stride scheme** — the czone partition filter vs the rejected
//!   minimum-delta scheme (§7).
//! * **partitioned streams** — the MacroTek variant with separate
//!   instruction/data streams vs the paper's unified streams.
//! * **victim buffer** — a direct-mapped L1 with Jouppi's victim cache,
//!   the configuration the paper sidesteps by simulating a 4-way L1.
//! * **L1 replacement policy** — the paper's L1 uses random replacement;
//!   random leaves *survivors* in a streamed-over set that punch gaps in
//!   the miss stream and break head-only streams, so LRU/PLRU L1s make
//!   streams look better. Quantified here.
//! * **set sampling** — the paper estimated Table 4's secondary-cache hit
//!   rates by set sampling [11]; this sweep validates the estimator
//!   against full simulation.

use std::fmt;
use std::sync::Arc;

use streamsim_cache::{CacheConfig, Replacement, SetSampling, VictimL1, VictimL1Outcome};
use streamsim_streams::{Allocation, MatchPolicy, StreamConfig, StreamSystem};
use streamsim_trace::{AccessKind, Addr, BlockSize};
use streamsim_workloads::Workload;

use crate::experiments::{workload_set, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{
    replay, replay_l2, replay_streams, run_streams, MissObserver, MissTrace, RecordOptions,
    StreamObserver,
};

/// The benchmarks used for ablations: one stream-friendly, one strided,
/// one short-burst, one irregular.
pub const ABLATION_BENCHMARKS: [&str; 4] = ["mgrid", "fftpde", "appbt", "adm"];

/// Results of the ablation suite.
#[derive(Clone, Debug)]
pub struct Ablations {
    /// Hit rate per (benchmark, depth) for depths [1, 2, 4, 8].
    pub depth: Vec<(String, Vec<f64>)>,
    /// Hit rate per (benchmark, [head-only, any-entry]).
    pub match_policy: Vec<(String, [f64; 2])>,
    /// (hit rate, EB) per (benchmark, filter entries) for [4, 8, 16, 32].
    pub filter_size: Vec<(String, Vec<(f64, f64)>)>,
    /// Hit rate per (benchmark, [czone, min-delta]).
    pub stride_scheme: Vec<(String, [f64; 2])>,
    /// Hit rate per (benchmark, [unified, partitioned]).
    pub topology: Vec<(String, [f64; 2])>,
    /// Per benchmark: (direct-mapped L1 data miss rate, fraction of those
    /// misses the 16-entry victim buffer recovers, and the stream hit
    /// rate over the surviving misses — Jouppi's full original front end).
    pub victim: Vec<(String, f64, f64, f64)>,
    /// Stream hit rate per (benchmark, [random, LRU, tree-PLRU] L1).
    pub l1_replacement: Vec<(String, [f64; 3])>,
    /// Per benchmark: (full L2 hit rate, 1/4-set-sampled estimate) for a
    /// 1 MB secondary cache.
    pub sampling: Vec<(String, f64, f64)>,
}

/// Stream depths swept.
pub const DEPTHS: [usize; 4] = [1, 2, 4, 8];
/// Filter sizes swept.
pub const FILTER_SIZES: [usize; 4] = [4, 8, 16, 32];

fn ablation_workloads(options: &ExperimentOptions) -> Vec<Box<dyn Workload>> {
    workload_set(options.scale)
        .into_iter()
        .filter(|w| ABLATION_BENCHMARKS.contains(&w.name()))
        .collect()
}

fn trace_of(w: &dyn Workload, options: &ExperimentOptions) -> Arc<MissTrace> {
    options
        .store
        .record(w, &options.record_options())
        .expect("valid L1")
}

/// Partitioned-stream observer: instruction misses feed a 2-stream
/// system, data misses an 8-stream system (same total hardware as the
/// unified ten).
struct PartitionedObserver {
    isys: StreamSystem,
    dsys: StreamSystem,
}

impl MissObserver for PartitionedObserver {
    fn on_fetch(&mut self, addr: Addr, kind: AccessKind) {
        if kind == AccessKind::IFetch {
            self.isys.on_l1_miss(addr);
        } else {
            self.dsys.on_l1_miss(addr);
        }
    }

    fn on_writeback(&mut self, base: Addr) {
        // Broadcast to both partitions at each system's own block
        // granularity — mirrors MemorySystem's one-pass Partitioned
        // branch exactly (see system.rs), which a regression test pins.
        self.isys
            .on_writeback(base.block(self.isys.config().block()));
        self.dsys
            .on_writeback(base.block(self.dsys.config().block()));
    }

    fn finish(&mut self) {
        self.isys.finalize();
        self.dsys.finalize();
    }
}

/// Runs the ablation suite.
pub fn run(options: &ExperimentOptions) -> Ablations {
    let workloads = ablation_workloads(options);
    let traces: Vec<(String, Arc<MissTrace>)> = options.parallel_map(workloads, |w| {
        (w.name().to_owned(), trace_of(w.as_ref(), options))
    });

    // Each family sweep replays one trace against a fused configuration
    // family; the per-benchmark fan-out runs under the Executor seam so
    // DST can drive its interleavings (tests/dst_engine.rs).
    let depth = options.parallel_map(traces.clone(), |(name, trace)| {
        let configs: Vec<StreamConfig> = DEPTHS
            .iter()
            .map(|&d| StreamConfig::new(10, d, Allocation::OnMiss).expect("valid"))
            .collect();
        let rates = replay_streams(&trace, &configs)
            .iter()
            .map(|s| s.hit_rate())
            .collect();
        (name, rates)
    });

    let match_policy = options.parallel_map(traces.clone(), |(name, trace)| {
        let configs = [
            StreamConfig::paper_basic(10).expect("valid"),
            StreamConfig::new(10, 4, Allocation::OnMiss)
                .expect("valid")
                .with_match_policy(MatchPolicy::AnyEntry),
        ];
        let stats = replay_streams(&trace, &configs);
        (name, [stats[0].hit_rate(), stats[1].hit_rate()])
    });

    let filter_size = options.parallel_map(traces.clone(), |(name, trace)| {
        let configs: Vec<StreamConfig> = FILTER_SIZES
            .iter()
            .map(|&entries| {
                StreamConfig::new(10, 2, Allocation::UnitFilter { entries }).expect("valid")
            })
            .collect();
        let cells = replay_streams(&trace, &configs)
            .iter()
            .map(|stats| (stats.hit_rate(), stats.extra_bandwidth()))
            .collect();
        (name, cells)
    });

    let stride_scheme = options.parallel_map(traces.clone(), |(name, trace)| {
        let configs = [
            StreamConfig::paper_strided(10, 16).expect("valid"),
            StreamConfig::new(
                10,
                2,
                Allocation::MinDelta {
                    entries: 16,
                    max_stride_words: 1 << 20,
                },
            )
            .expect("valid"),
        ];
        let stats = replay_streams(&trace, &configs);
        (name, [stats[0].hit_rate(), stats[1].hit_rate()])
    });

    // Topology: the unified system and the partitioned variant observe
    // the same replay pass over the unified miss stream.
    let topology = options.parallel_map(traces.clone(), |(name, trace)| {
        let mut unified = StreamObserver::new(StreamConfig::paper_basic(10).expect("valid"));
        let mut part = PartitionedObserver {
            isys: StreamSystem::new(StreamConfig::paper_basic(2).expect("valid")),
            dsys: StreamSystem::new(StreamConfig::paper_basic(8).expect("valid")),
        };
        replay(&trace, &mut [&mut unified, &mut part]);
        let (i, d) = (part.isys.stats(), part.dsys.stats());
        let lookups = i.lookups + d.lookups;
        let part_rate = if lookups == 0 {
            0.0
        } else {
            (i.hits + d.hits) as f64 / lookups as f64
        };
        (name, [unified.stats().hit_rate(), part_rate])
    });

    // L1 replacement policy: re-record each miss trace under random,
    // LRU and tree-PLRU primaries and compare stream hit rates. The
    // store keys on the full RecordOptions, so each policy gets its own
    // cached trace.
    let l1_replacement = options.parallel_map(ablation_workloads(options), |w| {
        let base = options.record_options();
        let rates = [
            Replacement::Random { seed: 0x5eed },
            Replacement::Lru,
            Replacement::TreePlru,
        ]
        .map(|policy| {
            let cfg = base.dcache.with_replacement(policy);
            let record = RecordOptions {
                icache: cfg,
                dcache: cfg,
                sampling: base.sampling,
            };
            let trace = options.store.record(w.as_ref(), &record).expect("valid L1");
            run_streams(&trace, StreamConfig::paper_basic(10).expect("valid")).hit_rate()
        });
        (w.name().to_owned(), rates)
    });

    // Set-sampling validation: the paper's Table 4 estimator against
    // full simulation of a 1 MB L2 — both observers share one pass.
    let sampling = options.parallel_map(traces, |(name, trace)| {
        let cfg = CacheConfig::new(1 << 20, 2, trace.l1_block()).expect("valid L2");
        let cells = [(cfg, None), (cfg, Some(SetSampling::new(2, 1)))];
        let stats = replay_l2(&trace, &cells).expect("valid");
        (name, stats[0].hit_rate(), stats[1].hit_rate())
    });

    // Victim buffer: Jouppi's original front end — a direct-mapped data
    // cache with a 16-entry victim cache, backed by ten stream buffers
    // that see only the misses the victim buffer could not recover.
    let victim = options.parallel_map(ablation_workloads(options), |w| {
        let l1_bytes = match options.scale {
            crate::experiments::Scale::Paper => 64 << 10,
            crate::experiments::Scale::Quick => 16 << 10,
        };
        let cfg = CacheConfig::new(l1_bytes, 1, BlockSize::default()).expect("valid");
        let mut l1 = VictimL1::new(cfg, 16).expect("valid");
        let mut streams = StreamSystem::new(StreamConfig::paper_basic(10).expect("valid"));
        w.generate(&mut |access| {
            if access.kind == streamsim_trace::AccessKind::IFetch {
                return;
            }
            if l1.access(access.addr, access.kind) == VictimL1Outcome::Miss {
                streams.on_l1_miss(access.addr);
            }
        });
        streams.finalize();
        (
            w.name().to_owned(),
            l1.cache_stats().data_miss_rate(),
            l1.recovery_rate(),
            streams.stats().hit_rate(),
        )
    });

    Ablations {
        depth,
        match_policy,
        filter_size,
        stride_scheme,
        topology,
        victim,
        l1_replacement,
        sampling,
    }
}

impl Artifact for Ablations {
    fn artifact(&self) -> &'static str {
        "ablations"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let pct = |v: f64| Cell::num(v * 100.0, format!("{:.0}", v * 100.0));

        let mut columns = vec![col("bench", "bench")];
        columns.extend(
            DEPTHS
                .iter()
                .map(|d| col(format!("depth {d}"), format!("hit_pct_depth{d}"))),
        );
        sink.begin_table(
            self.artifact(),
            "depth",
            "Ablation: hit rate (%) vs stream depth (10 streams, no filter)",
            &columns,
        );
        for (name, rates) in &self.depth {
            let mut cells = vec![Cell::text(name.clone())];
            cells.extend(rates.iter().map(|&h| pct(h)));
            sink.row(&cells);
        }

        sink.begin_table(
            self.artifact(),
            "match_policy",
            "Ablation: match policy, hit rate (%)",
            &[
                col("bench", "bench"),
                col("head-only", "head_only_hit_pct"),
                col("any-entry (depth 4)", "any_entry_hit_pct"),
            ],
        );
        for (name, [head, any]) in &self.match_policy {
            sink.row(&[Cell::text(name.clone()), pct(*head), pct(*any)]);
        }

        let mut columns = vec![col("bench", "bench")];
        columns.extend(
            FILTER_SIZES
                .iter()
                .map(|s| col(format!("{s} entries"), format!("hit_pct_f{s}"))),
        );
        sink.begin_table(
            self.artifact(),
            "filter_size",
            "Ablation: unit-filter size, hit % / EB %",
            &columns,
        );
        for (name, cells) in &self.filter_size {
            let mut row = vec![Cell::text(name.clone())];
            row.extend(cells.iter().map(|&(h, eb)| {
                Cell::num(h * 100.0, format!("{:.0}/{:.0}", h * 100.0, eb * 100.0))
            }));
            sink.row(&row);
        }

        sink.begin_table(
            self.artifact(),
            "stride_scheme",
            "Ablation: stride-detection scheme, hit rate (%)",
            &[
                col("bench", "bench"),
                col("czone (16b)", "czone_hit_pct"),
                col("min-delta", "min_delta_hit_pct"),
            ],
        );
        for (name, [czone, min_delta]) in &self.stride_scheme {
            sink.row(&[Cell::text(name.clone()), pct(*czone), pct(*min_delta)]);
        }

        sink.begin_table(
            self.artifact(),
            "topology",
            "Ablation: unified vs partitioned (2 I + 8 D) streams, hit rate (%)",
            &[
                col("bench", "bench"),
                col("unified (10)", "unified_hit_pct"),
                col("partitioned", "partitioned_hit_pct"),
            ],
        );
        for (name, [unified, part]) in &self.topology {
            sink.row(&[Cell::text(name.clone()), pct(*unified), pct(*part)]);
        }

        sink.begin_table(
            self.artifact(),
            "victim",
            "Ablation: Jouppi's front end — direct-mapped L1 + 16-entry victim buffer + streams",
            &[
                col("bench", "bench"),
                col("DM miss %", "dm_miss_pct"),
                col("victim recovery %", "victim_recovery_pct"),
                col("stream hit %", "stream_hit_pct"),
            ],
        );
        for (name, miss, recovery, stream_hit) in &self.victim {
            sink.row(&[
                Cell::text(name.clone()),
                Cell::num(miss * 100.0, format!("{:.2}", miss * 100.0)),
                pct(*recovery),
                pct(*stream_hit),
            ]);
        }

        sink.begin_table(
            self.artifact(),
            "l1_replacement",
            "Ablation: stream hit rate (%) vs L1 replacement policy (10 streams)",
            &[
                col("bench", "bench"),
                col("random (paper)", "random_hit_pct"),
                col("LRU", "lru_hit_pct"),
                col("tree-PLRU", "plru_hit_pct"),
            ],
        );
        for (name, [random, lru, plru]) in &self.l1_replacement {
            sink.row(&[
                Cell::text(name.clone()),
                pct(*random),
                pct(*lru),
                pct(*plru),
            ]);
        }

        sink.begin_table(
            self.artifact(),
            "sampling",
            "Ablation: set-sampling estimator vs full simulation (1 MB L2 local hit %)",
            &[
                col("bench", "bench"),
                col("full", "full_hit_pct"),
                col("1/4 sampled", "sampled_hit_pct"),
            ],
        );
        for (name, full, est) in &self.sampling {
            sink.row(&[
                Cell::text(name.clone()),
                Cell::num(full * 100.0, format!("{:.1}", full * 100.0)),
                Cell::num(est * 100.0, format!("{:.1}", est * 100.0)),
            ]);
        }
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Ablations {
        run(&ExperimentOptions::quick())
    }

    #[test]
    fn covers_the_selected_benchmarks() {
        let a = quick();
        assert_eq!(a.depth.len(), ABLATION_BENCHMARKS.len());
        assert_eq!(a.victim.len(), ABLATION_BENCHMARKS.len());
        let text = a.to_string();
        assert!(text.contains("depth 8"));
        assert!(text.contains("min-delta"));
    }

    #[test]
    fn deeper_streams_do_not_hurt_sequential_codes() {
        let a = quick();
        let (_, rates) = a.depth.iter().find(|(n, _)| n == "mgrid").unwrap();
        assert!(
            rates[3] + 0.05 >= rates[0],
            "depth 8 ({}) vs depth 1 ({})",
            rates[3],
            rates[0]
        );
    }

    #[test]
    fn any_entry_matching_never_loses_to_head_only() {
        let a = quick();
        for (name, [head, any]) in &a.match_policy {
            assert!(any + 0.05 >= *head, "{name}: any {any} vs head {head}");
        }
    }

    #[test]
    fn victim_buffer_front_end_produces_sane_numbers() {
        let a = quick();
        for (name, miss, recovery, stream_hit) in &a.victim {
            assert!(*miss > 0.0, "{name} should miss sometimes");
            assert!((0.0..=1.0).contains(recovery), "{name}");
            assert!((0.0..=1.0).contains(stream_hit), "{name}");
        }
    }

    #[test]
    fn lru_l1_streams_at_least_as_well_as_random() {
        // Random replacement leaves survivors that break streams; LRU
        // evicts cleanly, so stream hit rates should not degrade.
        let a = quick();
        for (name, [random, lru, _]) in &a.l1_replacement {
            assert!(
                lru + 0.08 >= *random,
                "{name}: LRU {lru} vs random {random}"
            );
        }
    }

    #[test]
    fn partitioned_observer_matches_the_one_pass_system() {
        // The replay-path PartitionedObserver and MemorySystem's
        // Partitioned branch must agree on writeback handling: both
        // broadcast every writeback to BOTH partitions at each system's
        // own block size. A store-heavy workload with a write-back L1
        // exercises the writeback path.
        let opts = ExperimentOptions::quick();
        let w = streamsim_workloads::kernels::Cgm {
            rows: 400,
            nnz: 12_000,
            bandwidth: Some(60),
            iters: 3,
            seed: 0xc6,
        };
        let record = opts.record_options();
        let (icfg, dcfg) = (
            StreamConfig::paper_basic(2).expect("valid"),
            StreamConfig::paper_basic(8).expect("valid"),
        );

        let mut system = crate::MemorySystemBuilder::with_l1(record.icache, record.dcache)
            .partitioned_streams(icfg, dcfg)
            .build()
            .expect("valid L1");
        system.run(&w);
        let report = system.finish();
        let trace = crate::record_miss_trace(&w, &record).expect("valid L1");
        assert!(trace.writebacks() > 0, "need a writeback-heavy workload");

        let mut part = PartitionedObserver {
            isys: StreamSystem::new(icfg),
            dsys: StreamSystem::new(dcfg),
        };
        replay(&trace, &mut [&mut part]);
        assert_eq!(
            report.instruction_streams.expect("partitioned"),
            part.isys.stats()
        );
        assert_eq!(report.data_streams.expect("partitioned"), part.dsys.stats());
    }

    #[test]
    fn set_sampling_estimates_track_full_simulation() {
        let a = quick();
        for (name, full, est) in &a.sampling {
            assert!(
                (full - est).abs() < 0.12,
                "{name}: full {full} vs estimate {est}"
            );
        }
    }
}
