//! Design-space sweep — stream-buffer configurations scored on the
//! (hit rate, extra bandwidth) plane, with an analytical fast path.
//!
//! The paper's figures each fix all but one axis of the stream-buffer
//! design space. This driver sweeps the whole space at once — stream
//! count × depth × allocation policy, [`cells`]` ≈ 1000` cells — and
//! reports each cell's mean hit rate and mean extra bandwidth across
//! the fifteen benchmarks, marking the Pareto frontier.
//!
//! Simulating every cell replays every trace against the full family.
//! With `prescreen` enabled ([`crate::experiments::ExperimentOptions`]),
//! the driver instead scores all cells in closed form from each
//! workload's [`streamsim_model::LocalityProfile`] (one extra pass per
//! trace, memoized in the shared store), keeps only the predicted
//! Pareto frontier plus a tolerance band ([`PRESCREEN_BAND`]), and
//! simulates just those survivors. The band is calibrated against
//! full-grid simulation (see `tests/model_validation.rs` at the
//! workspace root); the bench harness (`BENCH_model.json`) pins that
//! the pruned sweep reproduces the full sweep's frontier exactly while
//! simulating at most a quarter of the cells.

use std::fmt;
use std::sync::Arc;

use streamsim_model::{keep_with_band, Band, Objectives};
use streamsim_streams::{Allocation, StreamConfig};

use crate::experiments::{miss_traces, workload_set, ExperimentOptions};
use crate::locality::stream_geometry;
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{replay_streams, MissTrace};

/// Stream counts swept (the paper's 1–10 plus wider points).
pub const STREAM_COUNTS: [usize; 13] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16];

/// Buffer depths swept (the paper uses 2; 1–8 spans the design space).
pub const DEPTHS: [usize; 5] = [1, 2, 3, 4, 8];

/// Unit-filter sizes swept.
pub const FILTER_ENTRIES: [usize; 5] = [2, 4, 8, 16, 32];

/// Czone sizes swept for the stride-filtered policy (word-address bits).
pub const CZONE_BITS: [u32; 9] = [8, 10, 12, 14, 16, 18, 20, 22, 24];

/// The pruning band, calibrated against full-grid simulation (the
/// `print_model_errors` calibration aid in `tests/model_validation.rs`
/// reports survivors and frontier fidelity per candidate band): the
/// model's predicted frontier already contains every measured-frontier
/// cell, so even a 0.0025 band reproduces the frontier exactly; this
/// band keeps a 2x slack over that while pruning almost nine tenths of
/// the grid. The bench (`BENCH_model.json`) and the reduced-grid test
/// below re-assert exact frontier reproduction whenever the model or
/// the kernels change.
pub const PRESCREEN_BAND: Band = Band {
    hit: 0.005,
    eb: 0.005,
};

/// One swept configuration.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Stable label, e.g. `unit16 n=4 d=2` — the row key in reports.
    pub label: String,
    /// Allocation-policy label, e.g. `onmiss`, `unit16`, `czone12`.
    pub policy: String,
    /// Stream buffers.
    pub streams: usize,
    /// Entries per buffer.
    pub depth: usize,
    /// The simulator configuration.
    pub config: StreamConfig,
}

/// The full cell grid, in deterministic sweep order.
pub fn cells() -> Vec<SweepCell> {
    let mut policies: Vec<(String, Allocation)> = vec![("onmiss".to_owned(), Allocation::OnMiss)];
    for &entries in &FILTER_ENTRIES {
        policies.push((format!("unit{entries}"), Allocation::UnitFilter { entries }));
    }
    for &czone_bits in &CZONE_BITS {
        policies.push((
            format!("czone{czone_bits}"),
            Allocation::UnitAndStrideFilters {
                unit_entries: StreamConfig::PAPER_FILTER_ENTRIES,
                stride_entries: StreamConfig::PAPER_FILTER_ENTRIES,
                czone_bits,
            },
        ));
    }
    let mut grid = Vec::new();
    for (policy, alloc) in &policies {
        for &streams in &STREAM_COUNTS {
            for &depth in &DEPTHS {
                grid.push(SweepCell {
                    label: format!("{policy} n={streams} d={depth}"),
                    policy: policy.clone(),
                    streams,
                    depth,
                    config: StreamConfig::new(streams, depth, *alloc)
                        .expect("sweep grid parameters are valid"),
                });
            }
        }
    }
    grid
}

/// One scored cell in the results.
#[derive(Clone, Debug)]
pub struct Row {
    /// The swept configuration.
    pub cell: SweepCell,
    /// Mean stream hit rate across the benchmarks (fraction).
    pub hit: f64,
    /// Mean extra bandwidth across the benchmarks (paper closed form,
    /// fraction).
    pub eb: f64,
    /// Whether the cell is on the measured Pareto frontier.
    pub frontier: bool,
}

/// Results of the sweep.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Scored cells, in sweep order. Under pre-screening only the
    /// survivors appear (the pruned cells were never simulated).
    pub rows: Vec<Row>,
    /// Total cells in the grid.
    pub cells_total: usize,
    /// Cells actually simulated (equals `cells_total` without
    /// pre-screening).
    pub cells_simulated: usize,
    /// Whether the analytical pre-screen pruned the grid.
    pub prescreened: bool,
}

impl Sweep {
    /// The row for a cell label, if simulated.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.cell.label == label)
    }

    /// Labels of the measured Pareto-frontier cells, in sweep order.
    pub fn frontier_labels(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.frontier)
            .map(|r| r.cell.label.as_str())
            .collect()
    }
}

/// Simulates `grid` against every trace and returns each cell's mean
/// (hit, eb) in grid order. One fused replay pass per workload.
fn simulate(
    options: &ExperimentOptions,
    traces: Vec<(String, Arc<MissTrace>)>,
    grid: &[SweepCell],
) -> Vec<(f64, f64)> {
    let configs: Vec<StreamConfig> = grid.iter().map(|c| c.config).collect();
    let depths: Vec<usize> = grid.iter().map(|c| c.depth).collect();
    let per_workload = options.parallel_map(traces, move |(_, trace)| {
        replay_streams(&trace, &configs)
            .iter()
            .zip(&depths)
            .map(|(s, &depth)| (s.hit_rate(), s.extra_bandwidth_paper_formula(depth)))
            .collect::<Vec<(f64, f64)>>()
    });
    let workloads = per_workload.len().max(1) as f64;
    let mut means = vec![(0.0, 0.0); grid.len()];
    for row in &per_workload {
        for (mean, &(hit, eb)) in means.iter_mut().zip(row) {
            mean.0 += hit / workloads;
            mean.1 += eb / workloads;
        }
    }
    means
}

/// Marks the measured Pareto frontier over `scores` (maximize hit,
/// minimize eb).
fn frontier_flags(scores: &[(f64, f64)]) -> Vec<bool> {
    let objectives: Vec<Objectives> = scores
        .iter()
        .map(|&(hit, eb)| Objectives { hit, eb })
        .collect();
    streamsim_model::frontier(&objectives)
}

/// Runs the sweep: full simulation of the grid, or — with
/// `options.prescreen` — the model-pruned subset.
pub fn run(options: &ExperimentOptions) -> Sweep {
    run_grid(options, cells())
}

/// [`run`] over an explicit grid. Tests exercise the pre-screen
/// mechanics on a reduced grid (the full grid is release-bench
/// territory — see `crates/bench/benches/model.rs`).
fn run_grid(options: &ExperimentOptions, grid: Vec<SweepCell>) -> Sweep {
    let cells_total = grid.len();
    if !options.prescreen {
        let traces = miss_traces(options);
        let scores = simulate(options, traces, &grid);
        let flags = frontier_flags(&scores);
        let rows = grid
            .into_iter()
            .zip(scores)
            .zip(flags)
            .map(|((cell, (hit, eb)), frontier)| Row {
                cell,
                hit,
                eb,
                frontier,
            })
            .collect();
        return Sweep {
            rows,
            cells_total,
            cells_simulated: cells_total,
            prescreened: false,
        };
    }

    // Pre-screen: score every cell in closed form from the memoized
    // locality profiles, keep the predicted frontier plus the band.
    let workloads = workload_set(options.scale);
    let profiles = options
        .store
        .profiles_on(
            &workloads,
            &options.record_options(),
            options.executor.executor(),
        )
        .expect("paper L1 configuration is valid");
    let n = profiles.len().max(1) as f64;
    let predicted: Vec<Objectives> = grid
        .iter()
        .map(|cell| {
            let mut hit = 0.0;
            let mut eb = 0.0;
            for profile in &profiles {
                let geom = stream_geometry(profile, &cell.config)
                    .expect("every sweep-grid cell is modelled");
                let est = streamsim_model::predict_streams(profile, geom);
                hit += est.hit_rate / n;
                eb += est.extra_bandwidth / n;
            }
            Objectives { hit, eb }
        })
        .collect();
    let keep = keep_with_band(&predicted, PRESCREEN_BAND);
    let kept: Vec<SweepCell> = grid
        .into_iter()
        .zip(&keep)
        .filter_map(|(cell, &k)| k.then_some(cell))
        .collect();

    let traces = miss_traces(options);
    let scores = simulate(options, traces, &kept);
    let flags = frontier_flags(&scores);
    let rows: Vec<Row> = kept
        .into_iter()
        .zip(scores)
        .zip(flags)
        .map(|((cell, (hit, eb)), frontier)| Row {
            cell,
            hit,
            eb,
            frontier,
        })
        .collect();
    Sweep {
        cells_simulated: rows.len(),
        rows,
        cells_total,
        prescreened: true,
    }
}

impl Artifact for Sweep {
    fn artifact(&self) -> &'static str {
        "sweep"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "cells",
            "Design-space sweep: mean hit rate (%) and extra bandwidth (%) per stream configuration",
            &[
                col("cell", "cell"),
                col("policy", "policy"),
                col("n", "streams"),
                col("depth", "depth"),
                col("hit", "hit_pct"),
                col("EB", "eb_pct"),
                col("front", "frontier"),
            ],
        );
        for r in &self.rows {
            sink.row(&[
                Cell::text(r.cell.label.clone()),
                Cell::text(r.cell.policy.clone()),
                Cell::num(r.cell.streams as f64, r.cell.streams.to_string()),
                Cell::num(r.cell.depth as f64, r.cell.depth.to_string()),
                Cell::num(r.hit * 100.0, format!("{:.1}", r.hit * 100.0)),
                Cell::num(r.eb * 100.0, format!("{:.1}", r.eb * 100.0)),
                Cell::num(
                    if r.frontier { 1.0 } else { 0.0 },
                    if r.frontier { "*" } else { "" }.to_owned(),
                ),
            ]);
        }
        if self.prescreened {
            // The marker table `--diff` uses to tell "pruned by the
            // model" apart from "removed by a code change": rows absent
            // from a file whose artifact carries this marker were
            // skipped, not lost.
            sink.begin_table(
                self.artifact(),
                "prescreen",
                "Analytical pre-screen: cells simulated vs total",
                &[
                    col("mode", "mode"),
                    col("total", "cells_total"),
                    col("simulated", "cells_simulated"),
                    col("band_hit", "band_hit"),
                    col("band_eb", "band_eb"),
                ],
            );
            sink.row(&[
                Cell::text("prescreen"),
                Cell::num(self.cells_total as f64, self.cells_total.to_string()),
                Cell::num(
                    self.cells_simulated as f64,
                    self.cells_simulated.to_string(),
                ),
                Cell::num(PRESCREEN_BAND.hit, format!("{}", PRESCREEN_BAND.hit)),
                Cell::num(PRESCREEN_BAND.eb, format!("{}", PRESCREEN_BAND.eb)),
            ]);
        }
        sink.note(&format!(
            "{} of {} cells simulated ({}); * marks the measured Pareto frontier (max hit, min EB)",
            self.cells_simulated,
            self.cells_total,
            if self.prescreened {
                "model pre-screen kept the predicted frontier + band"
            } else {
                "full sweep"
            },
        ));
    }
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_documented_size() {
        let grid = cells();
        assert_eq!(
            grid.len(),
            STREAM_COUNTS.len() * DEPTHS.len() * (1 + FILTER_ENTRIES.len() + CZONE_BITS.len())
        );
        assert_eq!(grid.len(), 975);
        // Labels are unique — they are the report row keys.
        let mut labels: Vec<&str> = grid.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), grid.len());
    }

    /// A grid small enough for debug-mode tests: every policy family,
    /// but only a corner of the (streams, depth) plane. The full grid
    /// runs under the release bench and the CI model smoke.
    fn reduced_grid() -> Vec<SweepCell> {
        cells()
            .into_iter()
            .filter(|c| {
                matches!(c.policy.as_str(), "onmiss" | "unit16" | "czone12")
                    && matches!(c.streams, 1 | 2 | 4 | 8)
                    && matches!(c.depth, 1 | 2 | 8)
            })
            .collect()
    }

    #[test]
    fn prescreen_keeps_the_full_sweep_frontier() {
        let mut options = ExperimentOptions::quick();
        let full = run_grid(&options, reduced_grid());
        assert_eq!(full.cells_simulated, full.cells_total);
        options.prescreen = true;
        let pruned = run_grid(&options, reduced_grid());
        assert!(pruned.prescreened);
        assert!(
            pruned.cells_simulated < pruned.cells_total,
            "pre-screen must prune something"
        );
        // Every measured-frontier cell of the full sweep survives, with
        // identical measurements, and the frontier is reproduced
        // exactly.
        assert_eq!(full.frontier_labels(), pruned.frontier_labels());
        for label in full.frontier_labels() {
            let f = full.row(label).unwrap();
            let p = pruned.row(label).unwrap();
            assert_eq!((f.hit, f.eb), (p.hit, p.eb), "{label}");
        }
    }

    #[test]
    fn display_renders_cells_and_frontier() {
        let options = ExperimentOptions {
            prescreen: true,
            ..ExperimentOptions::quick()
        };
        let sweep = run_grid(&options, reduced_grid());
        let text = sweep.to_string();
        assert!(text.contains("onmiss"), "{text}");
        assert!(text.contains("prescreen"), "{text}");
        assert!(!sweep.frontier_labels().is_empty());
    }
}
