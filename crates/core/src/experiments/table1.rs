//! Table 1 — benchmark characteristics.
//!
//! For every benchmark: the modelled data-set size, the primary
//! data-cache miss rate and the misses-per-instruction ratio under the
//! paper's 64K+64K 4-way configuration, next to the values Table 1
//! reports for the original programs.

use std::fmt;

use crate::experiments::{workload_set, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, L1Summary};

/// One benchmark's measured characteristics.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Modelled data-set size in bytes.
    pub data_set_bytes: u64,
    /// L1 statistics of the recording run.
    pub l1: L1Summary,
}

/// Results of the Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Table1 {
    let record = options.record_options();
    let store = options.store.clone();
    let rows = options.parallel_map(workload_set(options.scale), move |w| {
        let trace = store
            .record(w.as_ref(), &record)
            .expect("paper L1 configuration is valid");
        Row {
            name: w.name().to_owned(),
            suite: w.suite().to_string(),
            data_set_bytes: w.data_set_bytes(),
            l1: *trace.l1(),
        }
    });
    Table1 { rows }
}

impl Artifact for Table1 {
    fn artifact(&self) -> &'static str {
        "table1"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "characteristics",
            "Table 1: benchmark characteristics (64K I + 64K D, 4-way, random repl.)",
            &[
                col("bench", "bench"),
                col("suite", "suite"),
                col("size MB", "size_mb"),
                col("paper MB", "paper_size_mb"),
                col("miss %", "miss_pct"),
                col("paper %", "paper_miss_pct"),
                col("MPI %", "mpi_pct"),
                col("paper %", "paper_mpi_pct"),
            ],
        );
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            let size_mb = r.data_set_bytes as f64 / (1 << 20) as f64;
            let miss = r.l1.data_miss_rate() * 100.0;
            let mpi = r.l1.mpi() * 100.0;
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::text(r.suite.clone()),
                Cell::num(size_mb, format!("{size_mb:.1}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.data_set_mb, format!("{:.1}", p.data_set_mb))
                }),
                Cell::num(miss, format!("{miss:.2}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.data_miss_rate_pct, format!("{:.2}", p.data_miss_rate_pct))
                }),
                Cell::num(mpi, format!("{mpi:.2}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.mpi_pct, format!("{:.2}", p.mpi_pct))
                }),
            ]);
        }
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_benchmarks() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert!(r.l1.refs() > 0, "{}", r.name);
            assert!(r.data_set_bytes > 0, "{}", r.name);
        }
        let text = result.to_string();
        assert!(text.contains("embar"));
        assert!(text.contains("trfd"));
    }
}
