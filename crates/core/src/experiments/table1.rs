//! Table 1 — benchmark characteristics.
//!
//! For every benchmark: the modelled data-set size, the primary
//! data-cache miss rate and the misses-per-instruction ratio under the
//! paper's 64K+64K 4-way configuration, next to the values Table 1
//! reports for the original programs.

use std::fmt;

use crate::experiments::{workload_set, ExperimentOptions};
use crate::report::TextTable;
use crate::{paper, parallel_map, record_miss_trace, L1Summary};

/// One benchmark's measured characteristics.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Modelled data-set size in bytes.
    pub data_set_bytes: u64,
    /// L1 statistics of the recording run.
    pub l1: L1Summary,
}

/// Results of the Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Table1 {
    let record = options.record_options();
    let rows = parallel_map(workload_set(options.scale), move |w| {
        let trace =
            record_miss_trace(w.as_ref(), &record).expect("paper L1 configuration is valid");
        Row {
            name: w.name().to_owned(),
            suite: w.suite().to_string(),
            data_set_bytes: w.data_set_bytes(),
            l1: *trace.l1(),
        }
    });
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1: benchmark characteristics (64K I + 64K D, 4-way, random repl.)"
        )?;
        let mut t = TextTable::new(vec![
            "bench", "suite", "size MB", "paper MB", "miss %", "paper %", "MPI %", "paper %",
        ]);
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            t.row(vec![
                r.name.clone(),
                r.suite.clone(),
                format!("{:.1}", r.data_set_bytes as f64 / (1 << 20) as f64),
                p.map_or(String::new(), |p| format!("{:.1}", p.data_set_mb)),
                format!("{:.2}", r.l1.data_miss_rate() * 100.0),
                p.map_or(String::new(), |p| format!("{:.2}", p.data_miss_rate_pct)),
                format!("{:.2}", r.l1.mpi() * 100.0),
                p.map_or(String::new(), |p| format!("{:.2}", p.mpi_pct)),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_benchmarks() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert!(r.l1.refs() > 0, "{}", r.name);
            assert!(r.data_set_bytes > 0, "{}", r.name);
        }
        let text = result.to_string();
        assert!(text.contains("embar"));
        assert!(text.contains("trfd"));
    }
}
