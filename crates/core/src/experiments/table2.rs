//! Table 2 — extra bandwidth consumed by ordinary streams.
//!
//! Ten unfiltered streams: every stream miss reallocates a buffer and
//! flushes up to `depth` speculative prefetches. We report the *measured*
//! extra bandwidth (every prefetch tracked to a useful/useless
//! disposition) alongside the paper's closed-form
//! `allocations × depth / misses` approximation and Table 2's values.

use std::fmt;

use streamsim_streams::{StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, replay_streams};

/// One benchmark's bandwidth accounting.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Full stream statistics (10 streams, no filter).
    pub stats: StreamStats,
}

impl Row {
    /// Measured extra bandwidth (fraction of demand traffic).
    pub fn eb(&self) -> f64 {
        self.stats.extra_bandwidth()
    }
}

/// Results of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Table2 {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Table2 {
    let config = StreamConfig::paper_basic(10).expect("ten streams is valid");
    let rows = options.parallel_map(miss_traces(options), move |(name, trace)| Row {
        name,
        stats: replay_streams(&trace, &[config])
            .pop()
            .expect("one config in, one stats out"),
    });
    Table2 { rows }
}

impl Artifact for Table2 {
    fn artifact(&self) -> &'static str {
        "table2"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "extra_bandwidth",
            "Table 2: extra bandwidth of ordinary streams (10 streams, depth 2, no filter)",
            &[
                col("bench", "bench"),
                col("EB %", "eb_pct"),
                col("formula %", "formula_pct"),
                col("paper %", "paper_eb_pct"),
                col("hit %", "hit_pct"),
            ],
        );
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            let eb = r.eb() * 100.0;
            let formula = r.stats.extra_bandwidth_paper_formula(2) * 100.0;
            let hit = r.stats.hit_rate() * 100.0;
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(eb, format!("{eb:.0}")),
                Cell::num(formula, format!("{formula:.0}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.eb_basic_pct, format!("{:.0}", p.eb_basic_pct))
                }),
                Cell::num(hit, format!("{hit:.0}")),
            ]);
        }
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eb_tracks_miss_rate() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            // With depth-2 unfiltered streams, measured EB can never
            // exceed 2× the miss fraction (each allocation issues ≤ 2).
            let bound = 2.0 * (1.0 - r.stats.hit_rate()) + 0.05;
            assert!(
                r.eb() <= bound,
                "{}: EB {} exceeds bound {bound}",
                r.name,
                r.eb()
            );
            assert!(r.stats.prefetch_accounting_balances(), "{}", r.name);
        }
    }

    #[test]
    fn irregular_benchmarks_waste_more_bandwidth() {
        let result = run(&ExperimentOptions::quick());
        let adm = result.row("adm").unwrap().eb();
        let embar = result.row("embar").unwrap().eb();
        assert!(adm > embar, "adm ({adm}) must out-waste embar ({embar})");
    }

    #[test]
    fn formula_upper_bounds_measurement() {
        // The paper's formula assumes every allocation flushes a full
        // depth of prefetches, so it should not undershoot measurement
        // by much.
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            let formula = r.stats.extra_bandwidth_paper_formula(2);
            assert!(
                formula + 0.05 >= r.eb(),
                "{}: formula {formula} < measured {}",
                r.name,
                r.eb()
            );
        }
    }
}
