//! Estimated memory CPI — the metric the paper declined to compute.
//!
//! §4.2 argues for hit rate over execution time: "hit rates indicate the
//! maximum benefit that streams can provide" and anything further is
//! memory-system-specific. With the simulators in hand we can supply the
//! missing step for a *parameterised* memory system and see how much of
//! the maximum benefit survives:
//!
//! * every reference costs 1 cycle (the processor side);
//! * an L1 miss serviced by memory stalls `memory_latency` cycles;
//! * a stream hit whose prefetch has had time to return costs
//!   `buffer_latency` cycles (no RAM lookup — the paper argues this can
//!   undercut even a cache hit); one still in flight stalls for the
//!   *residual* latency;
//! * a conventional L2 hit costs `l2_latency`.
//!
//! In-flight residuals come from the measured lead-time distribution: a
//! hit with a lead of `k` misses has covered `k × (refs / misses)` cycles
//! of the memory latency. The output compares memory CPI (cycles per
//! reference beyond the processor's 1.0) for: no backing, the paper's
//! stream system, and a 1 MB L2 — plus the speedup of streams over the
//! bare machine.

use std::fmt;

use streamsim_cache::{CacheConfig, TwoLevel};
use streamsim_streams::{StreamConfig, StreamStats};
use streamsim_trace::BlockSize;

use crate::experiments::{workload_set, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{run_streams, MissTrace};

/// The assumed memory-system timing, in processor cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Main-memory access latency.
    pub memory_latency: u64,
    /// Stream-buffer hit latency (a tag compare and a transfer).
    pub buffer_latency: u64,
    /// Secondary-cache hit latency.
    pub l2_latency: u64,
}

impl Default for Timing {
    /// Mid-1990s-flavoured defaults: 50-cycle memory, 2-cycle buffer,
    /// 10-cycle off-chip SRAM.
    fn default() -> Self {
        Timing {
            memory_latency: 50,
            buffer_latency: 2,
            l2_latency: 10,
        }
    }
}

/// One benchmark's estimated memory CPI under each system.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Total references (the cycle baseline).
    pub refs: u64,
    /// L1 misses.
    pub misses: u64,
    /// Stream statistics (10 filtered streams).
    pub streams: StreamStats,
    /// L2 local hit rate of the 1 MB conventional system.
    pub l2_hit: f64,
    /// Memory stall cycles per reference: [no backing, streams, L2].
    pub memory_cpi: [f64; 3],
}

impl Row {
    /// Speedup of the stream system over the bare L1+memory machine.
    pub fn stream_speedup(&self) -> f64 {
        (1.0 + self.memory_cpi[0]) / (1.0 + self.memory_cpi[1])
    }
}

/// Results of the CPI estimation.
#[derive(Clone, Debug)]
pub struct Cpi {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
    /// The timing assumptions used.
    pub timing: Timing,
}

impl Cpi {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Average stall per stream hit, from the lead-time distribution: hits
/// with lead `k` have covered `k × inter_miss` cycles of the memory
/// latency (conservatively using each bucket's lower bound).
fn stream_hit_stall(stats: &StreamStats, inter_miss: f64, timing: Timing) -> f64 {
    let buckets = stats.leads.buckets();
    let lower_bounds = [1u64, 2, 3, 4, 8, 16];
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return timing.buffer_latency as f64;
    }
    let mut stall = 0.0;
    for (count, lb) in buckets.iter().zip(lower_bounds) {
        let covered = lb as f64 * inter_miss;
        let residual = (timing.memory_latency as f64 - covered).max(0.0);
        stall += *count as f64 * (timing.buffer_latency as f64 + residual);
    }
    stall / total as f64
}

fn measure(
    name: String,
    trace: &MissTrace,
    workload: &dyn streamsim_workloads::Workload,
    options: &ExperimentOptions,
    timing: Timing,
) -> Row {
    let refs = trace.l1().refs();
    let misses = trace.l1().misses();
    let streams = run_streams(trace, StreamConfig::paper_filtered(10).expect("valid"));

    // Conventional 1 MB L2 over the same reference stream.
    let record = options.record_options();
    let l2_cfg = CacheConfig::new(1 << 20, 2, BlockSize::default()).expect("valid");
    let mut two_level = TwoLevel::new(record.icache, record.dcache, l2_cfg).expect("valid");
    workload.generate(&mut |a| {
        two_level.access(a);
    });
    let l2_hit = two_level.l2_stats().hit_rate();

    let inter_miss = refs as f64 / misses.max(1) as f64;
    let lm = timing.memory_latency as f64;

    let bare = misses as f64 * lm / refs as f64;
    let hit_stall = stream_hit_stall(&streams, inter_miss, timing);
    let with_streams =
        (streams.hits as f64 * hit_stall + streams.misses() as f64 * lm) / refs as f64;
    let with_l2 =
        (misses as f64) * (l2_hit * timing.l2_latency as f64 + (1.0 - l2_hit) * lm) / refs as f64;

    Row {
        name,
        refs,
        misses,
        streams,
        l2_hit,
        memory_cpi: [bare, with_streams, with_l2],
    }
}

/// Runs the estimation with [`Timing::default`].
pub fn run(options: &ExperimentOptions) -> Cpi {
    run_with_timing(options, Timing::default())
}

/// Runs the estimation with explicit timing assumptions.
pub fn run_with_timing(options: &ExperimentOptions, timing: Timing) -> Cpi {
    let record = options.record_options();
    let opts = options.clone();
    let rows = options.parallel_map(workload_set(options.scale), move |w| {
        let trace = opts.store.record(w.as_ref(), &record).expect("valid L1");
        measure(w.name().to_owned(), &trace, w.as_ref(), &opts, timing)
    });
    Cpi { rows, timing }
}

impl Artifact for Cpi {
    fn artifact(&self) -> &'static str {
        "cpi"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "memory_cpi",
            &format!(
                "Estimated memory CPI (stall cycles/ref; memory {} cyc, buffer {}, L2 {})",
                self.timing.memory_latency, self.timing.buffer_latency, self.timing.l2_latency
            ),
            &[
                col("bench", "bench"),
                col("bare", "bare_cpi"),
                col("streams", "streams_cpi"),
                col("1 MB L2", "l2_cpi"),
                col("stream speedup", "stream_speedup"),
            ],
        );
        for r in &self.rows {
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(r.memory_cpi[0], format!("{:.2}", r.memory_cpi[0])),
                Cell::num(r.memory_cpi[1], format!("{:.2}", r.memory_cpi[1])),
                Cell::num(r.memory_cpi[2], format!("{:.2}", r.memory_cpi[2])),
                Cell::num(r.stream_speedup(), format!("{:.2}x", r.stream_speedup())),
            ]);
        }
        sink.note(
            "streams recover most of the hit-rate benefit whenever their lead times\n\
             cover the memory latency (see the latency experiment for the breakdown)",
        );
    }
}

impl fmt::Display for Cpi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_never_slow_the_machine_down() {
        let cpi = run(&ExperimentOptions::quick());
        assert_eq!(cpi.rows.len(), 15);
        for r in &cpi.rows {
            assert!(
                r.memory_cpi[1] <= r.memory_cpi[0] + 1e-9,
                "{}: streams {} vs bare {}",
                r.name,
                r.memory_cpi[1],
                r.memory_cpi[0]
            );
            assert!(r.stream_speedup() >= 1.0 - 1e-9, "{}", r.name);
        }
    }

    #[test]
    fn stream_friendly_codes_speed_up_most() {
        let cpi = run(&ExperimentOptions::quick());
        let embar = cpi.row("embar").unwrap().stream_speedup();
        let adm = cpi.row("adm").unwrap().stream_speedup();
        assert!(embar > adm, "embar speedup {embar} should exceed adm {adm}");
    }

    #[test]
    fn zero_memory_latency_collapses_all_systems() {
        let timing = Timing {
            memory_latency: 0,
            buffer_latency: 0,
            l2_latency: 0,
        };
        let cpi = run_with_timing(&ExperimentOptions::quick(), timing);
        for r in &cpi.rows {
            for c in r.memory_cpi {
                assert!(c.abs() < 1e-9, "{}", r.name);
            }
        }
    }

    #[test]
    fn hit_stall_is_bounded_by_buffer_plus_memory() {
        let cpi = run(&ExperimentOptions::quick());
        let t = cpi.timing;
        for r in &cpi.rows {
            if r.streams.hits == 0 {
                continue;
            }
            let inter_miss = r.refs as f64 / r.misses.max(1) as f64;
            let stall = stream_hit_stall(&r.streams, inter_miss, t);
            assert!(stall >= t.buffer_latency as f64 - 1e-9, "{}", r.name);
            assert!(
                stall <= (t.buffer_latency + t.memory_latency) as f64 + 1e-9,
                "{}",
                r.name
            );
        }
    }
}
