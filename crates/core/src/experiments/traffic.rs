//! Memory-traffic comparison — the paper's cost argument quantified.
//!
//! The paper's economic pitch (§1, §9): replace the megabytes of L2 SRAM
//! with a few stream buffers and spend the savings on main-memory
//! bandwidth, because streams cost *some* extra bandwidth but very little
//! hardware. This experiment measures the bandwidth side of that trade
//! on identical reference streams, for three systems:
//!
//! 1. **L1 + memory** — the demand baseline: every L1 miss and dirty
//!    write-back moves one block.
//! 2. **L1 + filtered streams + memory** — the paper's proposal: demand
//!    traffic plus the useless prefetches the filter failed to prevent.
//! 3. **L1 + 1 MB L2 + memory** — the conventional system: only L2
//!    misses and L2 write-backs reach memory.
//!
//! The stream system always moves *more* than the baseline and the L2
//! system less (when the working set fits); the paper's claim is that the
//! stream overhead is modest once filtered — which is what the measured
//! ratios show.

use std::fmt;

use streamsim_cache::{CacheConfig, TwoLevel};
use streamsim_streams::{StreamConfig, StreamStats};
use streamsim_trace::BlockSize;

use crate::experiments::{workload_set, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{run_streams, MissTrace};

/// The conventional system's L2 capacity.
pub const L2_BYTES: u64 = 1 << 20;

/// One benchmark's traffic measurements (all in bytes).
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Demand traffic of the L1-only system.
    pub baseline_bytes: u64,
    /// Traffic of the stream system (demand + useless prefetches).
    pub streams_bytes: u64,
    /// Traffic escaping the 1 MB L2 to memory.
    pub l2_bytes: u64,
    /// The stream statistics behind `streams_bytes`.
    pub streams: StreamStats,
    /// The L2 local hit rate of the conventional system.
    pub l2_local_hit: f64,
}

impl Row {
    /// Stream-system traffic relative to the demand baseline.
    pub fn streams_ratio(&self) -> f64 {
        self.streams_bytes as f64 / self.baseline_bytes.max(1) as f64
    }

    /// Conventional-system traffic relative to the demand baseline.
    pub fn l2_ratio(&self) -> f64 {
        self.l2_bytes as f64 / self.baseline_bytes.max(1) as f64
    }
}

/// Results of the traffic comparison.
#[derive(Clone, Debug)]
pub struct Traffic {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Traffic {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

fn baseline_bytes(trace: &MissTrace) -> u64 {
    (trace.fetches() + trace.writebacks()) * trace.l1_block().bytes()
}

/// Runs the experiment.
///
/// The stream side replays the stored miss trace; the conventional
/// two-level system inherently needs the *full* reference stream (its L1
/// is part of the simulated hierarchy), so it re-generates the workload
/// rather than replaying the trace.
pub fn run(options: &ExperimentOptions) -> Traffic {
    let record = options.record_options();
    let store = options.store.clone();
    let rows = options.parallel_map(workload_set(options.scale), move |w| {
        let trace = store.record(w.as_ref(), &record).expect("valid L1");
        let streams = run_streams(&trace, StreamConfig::paper_filtered(10).expect("valid"));
        let baseline = baseline_bytes(&trace);
        let streams_bytes = baseline + streams.useless_prefetches() * trace.l1_block().bytes();

        // Conventional system over the same references.
        let l2_cfg = CacheConfig::new(L2_BYTES, 2, BlockSize::default()).expect("valid L2");
        let mut two_level =
            TwoLevel::new(record.icache, record.dcache, l2_cfg).expect("valid hierarchy");
        match record.sampling {
            Some((on, off)) => {
                let mut sink = streamsim_trace::sampling_sink(on, off, |a| {
                    two_level.access(a);
                });
                w.generate(&mut sink);
            }
            None => w.generate(&mut |a| {
                two_level.access(a);
            }),
        }

        Row {
            name: w.name().to_owned(),
            baseline_bytes: baseline,
            streams_bytes,
            l2_bytes: two_level.memory_traffic_bytes(),
            streams,
            l2_local_hit: two_level.l2_stats().hit_rate(),
        }
    });
    Traffic { rows }
}

impl Artifact for Traffic {
    fn artifact(&self) -> &'static str {
        "traffic"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "memory_traffic",
            "Memory traffic vs the L1-only demand baseline (10 filtered streams vs a 1 MB L2)",
            &[
                col("bench", "bench"),
                col("baseline MB", "baseline_mb"),
                col("streams x", "streams_ratio"),
                col("L2 x", "l2_ratio"),
                col("stream hit %", "stream_hit_pct"),
                col("L2 local hit %", "l2_local_hit_pct"),
            ],
        );
        for r in &self.rows {
            let baseline_mb = r.baseline_bytes as f64 / (1 << 20) as f64;
            let stream_hit = r.streams.hit_rate() * 100.0;
            let l2_hit = r.l2_local_hit * 100.0;
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(baseline_mb, format!("{baseline_mb:.1}")),
                Cell::num(r.streams_ratio(), format!("{:.2}", r.streams_ratio())),
                Cell::num(r.l2_ratio(), format!("{:.2}", r.l2_ratio())),
                Cell::num(stream_hit, format!("{stream_hit:.0}")),
                Cell::num(l2_hit, format!("{l2_hit:.0}")),
            ]);
        }
        sink.note(
            "streams trade bounded extra bandwidth (the filtered EB) for megabytes of\n\
             SRAM; the L2 saves bandwidth only where the working set fits it",
        );
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_traffic_is_baseline_plus_filtered_eb() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert!(r.streams_ratio() >= 1.0, "{}", r.name);
            // Filtered EB is bounded; traffic should stay within ~2x.
            assert!(r.streams_ratio() < 2.5, "{}: {}", r.name, r.streams_ratio());
        }
    }

    #[test]
    fn l2_never_increases_read_traffic_much() {
        // An L2 can add at most its own write-back inflation; with equal
        // block sizes it cannot multiply demand reads.
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            assert!(r.l2_ratio() <= 1.3, "{}: {}", r.name, r.l2_ratio());
        }
    }

    #[test]
    fn l2_saves_traffic_where_there_is_reuse() {
        let result = run(&ExperimentOptions::quick());
        // At least a handful of benchmarks have enough reuse for the L2
        // to cut traffic substantially.
        let saved = result.rows.iter().filter(|r| r.l2_ratio() < 0.7).count();
        assert!(saved >= 3, "only {saved} benchmarks saved traffic");
    }
}
