//! Prefetcher family tree — from OBL to the paper's full configuration.
//!
//! The paper's related-work section traces a lineage: Smith's
//! one-block-lookahead (OBL) prefetching, Jouppi's stream buffers as "an
//! extension to OBL", multi-way streams, and finally this paper's filter
//! and stride extensions. This experiment lines them up on the same miss
//! traces:
//!
//! 1. **OBL (tagged)** — prefetch block *i+1* on a miss to *i*: one
//!    stream buffer of depth 1.
//! 2. **Jouppi single stream** — one buffer of depth 2.
//! 3. **Multi-way streams** — ten buffers (§5).
//! 4. **+ unit filter** — ten buffers behind the 16-entry filter (§6).
//! 5. **+ czone strides** — the paper's full configuration (§7).
//!
//! The table shows each step's contribution: multi-way buys interleaved
//! loops, the filter buys bandwidth (shown as EB), strides buy the
//! FFT-style codes.

use std::fmt;

use streamsim_streams::{Allocation, StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::replay_streams;
use crate::sink::{col, Artifact, ArtifactSink, Cell};

/// The five configurations compared, in lineage order.
pub const CONFIGS: [&str; 5] = [
    "OBL (1x1)",
    "1 stream",
    "10 streams",
    "+ filter",
    "+ strides",
];

/// One benchmark's results across the lineage.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Statistics per entry of [`CONFIGS`].
    pub stats: Vec<StreamStats>,
}

/// Results of the baselines comparison.
#[derive(Clone, Debug)]
pub struct Baselines {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Baselines {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

fn configs() -> Vec<StreamConfig> {
    vec![
        StreamConfig::new(1, 1, Allocation::OnMiss).expect("valid"),
        StreamConfig::new(1, 2, Allocation::OnMiss).expect("valid"),
        StreamConfig::paper_basic(10).expect("valid"),
        StreamConfig::paper_filtered(10).expect("valid"),
        StreamConfig::paper_strided(10, 16).expect("valid"),
    ]
}

/// Runs the experiment. The whole lineage replays over each benchmark's
/// trace in a single pass.
pub fn run(options: &ExperimentOptions) -> Baselines {
    let rows = options.parallel_map(miss_traces(options), |(name, trace)| Row {
        name,
        stats: replay_streams(&trace, &configs()),
    });
    Baselines { rows }
}

impl Artifact for Baselines {
    fn artifact(&self) -> &'static str {
        "baselines"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let keys = [
            "obl_hit_pct",
            "one_stream_hit_pct",
            "ten_streams_hit_pct",
            "filtered_hit_pct",
            "strided_hit_pct",
        ];
        let mut columns = vec![col("bench", "bench")];
        columns.extend(
            CONFIGS
                .iter()
                .zip(keys)
                .map(|(header, key)| col(*header, key)),
        );
        sink.begin_table(
            self.artifact(),
            "lineage",
            "Prefetcher lineage: hit rate % (EB %) from OBL to the paper's full system",
            &columns,
        );
        for r in &self.rows {
            let mut cells = vec![Cell::text(r.name.clone())];
            cells.extend(r.stats.iter().map(|s| {
                Cell::num(
                    s.hit_rate() * 100.0,
                    format!(
                        "{:.0} ({:.0})",
                        s.hit_rate() * 100.0,
                        s.extra_bandwidth() * 100.0
                    ),
                )
            }));
            sink.row(&cells);
        }
        sink.note(
            "multi-way buys interleaved loops; the filter buys bandwidth; czone\n\
             strides buy the FFT-style codes",
        );
    }
}

impl fmt::Display for Baselines {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_step_of_the_lineage_runs() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert_eq!(r.stats.len(), CONFIGS.len());
            for s in &r.stats {
                assert!(s.prefetch_accounting_balances(), "{}", r.name);
            }
        }
    }

    #[test]
    fn multiway_dominates_obl_on_interleaved_codes() {
        let result = run(&ExperimentOptions::quick());
        let mgrid = result.row("mgrid").unwrap();
        let obl = mgrid.stats[0].hit_rate();
        let multi = mgrid.stats[2].hit_rate();
        assert!(
            multi > obl + 0.2,
            "10 streams ({multi}) must far exceed OBL ({obl}) on mgrid"
        );
    }

    #[test]
    fn filter_cuts_bandwidth_along_the_lineage() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            let unfiltered = r.stats[2].extra_bandwidth();
            let filtered = r.stats[3].extra_bandwidth();
            assert!(filtered <= unfiltered + 1e-9, "{}", r.name);
        }
    }

    #[test]
    fn strides_help_fftpde_most() {
        let result = run(&ExperimentOptions::quick());
        let fftpde = result.row("fftpde").unwrap();
        assert!(
            fftpde.stats[4].hit_rate() > fftpde.stats[3].hit_rate() + 0.1,
            "strides must lift fftpde"
        );
    }
}
