//! Stream placement — Jouppi's topology vs the paper's (§3).
//!
//! "While Jouppi considered stream buffer prefetching from a large
//! secondary cache into a primary cache, we instead consider prefetching
//! directly from the main memory." This experiment puts the two
//! topologies (plus the plain secondary cache) on one cost/performance
//! table:
//!
//! * **paper**: L1 + streams + memory — cheap hardware, prefetches cover
//!   the full memory latency;
//! * **Jouppi**: L1 + streams + 1 MB L2 + memory — stream misses (and
//!   prefetch fills) are serviced by the L2 when it hits, but the system
//!   pays for megabytes of SRAM *and* the buffers;
//! * **conventional**: L1 + 1 MB L2 + memory.
//!
//! Estimated memory CPI uses the same timing model as the `cpi`
//! experiment. The L2's local hit rate for the Jouppi topology is
//! measured by replaying the stream-miss residual stream through the L2
//! (prefetch fills are charged at the same rate — the approximation is
//! stated in the output).

use std::fmt;

use streamsim_cache::{CacheConfig, SetAssocCache};
use streamsim_streams::{StreamConfig, StreamSystem};
use streamsim_trace::{AccessKind, BlockSize};

use streamsim_trace::Addr;

use crate::experiments::cpi::Timing;
use crate::experiments::{miss_traces, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{replay, L2Observer, MissObserver, MissTrace};

/// One benchmark's topology comparison (memory CPI per system).
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Stream hit rate (identical in both stream topologies).
    pub stream_hit: f64,
    /// L2 local hit rate over the stream-miss residual (Jouppi topology).
    pub residual_l2_hit: f64,
    /// L2 local hit rate over all L1 misses (conventional system).
    pub l2_hit: f64,
    /// Estimated memory CPI: [paper streams, Jouppi streams+L2,
    /// conventional L2].
    pub memory_cpi: [f64; 3],
}

/// Results of the topology comparison.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
    /// Timing assumptions.
    pub timing: Timing,
}

impl Topology {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// The Jouppi topology as one observer: an L2 that sees only the misses
/// the streams in front of it could not cover.
struct JouppiChain {
    streams: StreamSystem,
    residual_l2: SetAssocCache,
}

impl MissObserver for JouppiChain {
    fn on_fetch(&mut self, addr: Addr, kind: AccessKind) {
        if !self.streams.on_l1_miss(addr).is_hit() {
            self.residual_l2.access(addr, kind);
        }
    }

    fn on_writeback(&mut self, base: Addr) {
        self.streams
            .on_writeback(base.block(self.streams.config().block()));
        self.residual_l2.access(base, AccessKind::Store);
    }

    fn finish(&mut self) {
        self.streams.finalize();
    }
}

fn measure(name: String, trace: &MissTrace, timing: Timing) -> Row {
    let config = StreamConfig::paper_filtered(10).expect("valid");
    let l2_cfg = CacheConfig::new(1 << 20, 2, BlockSize::default()).expect("valid");

    // One replay drives the Jouppi chain (streams + residual L2) and the
    // conventional L2 (seeing every miss) side by side.
    let mut jouppi = JouppiChain {
        streams: StreamSystem::new(config),
        residual_l2: SetAssocCache::new(l2_cfg).expect("valid"),
    };
    let mut full_l2 = L2Observer::new(l2_cfg, None).expect("valid");
    replay(trace, &mut [&mut jouppi, &mut full_l2]);
    let stats = jouppi.streams.stats();

    let refs = trace.l1().refs() as f64;
    let misses = trace.l1().misses() as f64;
    let hit = stats.hit_rate();
    let residual_hit = jouppi.residual_l2.stats().hit_rate();
    let l2_hit = full_l2.stats().hit_rate();

    let lm = timing.memory_latency as f64;
    let ll2 = timing.l2_latency as f64;
    let lb = timing.buffer_latency as f64;

    // Paper topology: hits cost the buffer, misses go to memory. (Lead
    // times are ignored here for symmetry across topologies; the cpi
    // experiment refines them.)
    let paper = (misses * (hit * lb + (1.0 - hit) * lm)) / refs;
    // Jouppi topology: stream misses see the L2 first.
    let jouppi = (misses
        * (hit * lb + (1.0 - hit) * (residual_hit * ll2 + (1.0 - residual_hit) * lm)))
        / refs;
    // Conventional: every miss sees the L2.
    let conventional = (misses * (l2_hit * ll2 + (1.0 - l2_hit) * lm)) / refs;

    Row {
        name,
        stream_hit: hit,
        residual_l2_hit: residual_hit,
        l2_hit,
        memory_cpi: [paper, jouppi, conventional],
    }
}

/// Runs the comparison with [`Timing::default`].
pub fn run(options: &ExperimentOptions) -> Topology {
    let timing = Timing::default();
    let rows = options.parallel_map(miss_traces(options), move |(name, trace)| {
        measure(name, &trace, timing)
    });
    Topology { rows, timing }
}

impl Artifact for Topology {
    fn artifact(&self) -> &'static str {
        "topology"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "placement",
            &format!(
                "Stream placement (§3): estimated memory CPI per topology (memory {} cyc, L2 {}, buffer {})",
                self.timing.memory_latency, self.timing.l2_latency, self.timing.buffer_latency
            ),
            &[
                col("bench", "bench"),
                col("streams+mem (paper)", "paper_cpi"),
                col("streams+L2 (Jouppi)", "jouppi_cpi"),
                col("L2 only", "l2_cpi"),
                col("stream hit %", "stream_hit_pct"),
                col("residual L2 %", "residual_l2_hit_pct"),
            ],
        );
        for r in &self.rows {
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(r.memory_cpi[0], format!("{:.2}", r.memory_cpi[0])),
                Cell::num(r.memory_cpi[1], format!("{:.2}", r.memory_cpi[1])),
                Cell::num(r.memory_cpi[2], format!("{:.2}", r.memory_cpi[2])),
                Cell::num(r.stream_hit * 100.0, format!("{:.0}", r.stream_hit * 100.0)),
                Cell::num(
                    r.residual_l2_hit * 100.0,
                    format!("{:.0}", r.residual_l2_hit * 100.0),
                ),
            ]);
        }
        sink.note(
            "the Jouppi column buys little over the paper's topology wherever streams\n\
             already hit — the megabytes of SRAM mostly duplicate what the buffers\n\
             provide, which is the paper's §9 cost argument (prefetch fills are\n\
             charged at the residual L2 rate: an approximation stated in the docs)",
        );
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jouppi_topology_never_loses_to_paper_topology_on_cpi() {
        // Adding an L2 can only reduce the miss path's latency.
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert!(
                r.memory_cpi[1] <= r.memory_cpi[0] + 1e-9,
                "{}: jouppi {} vs paper {}",
                r.name,
                r.memory_cpi[1],
                r.memory_cpi[0]
            );
        }
    }

    #[test]
    fn stream_hit_rates_match_the_plain_replay() {
        // Routing stream misses through an L2 must not change what the
        // streams themselves do.
        let options = ExperimentOptions::quick();
        let result = run(&options);
        for (name, trace) in miss_traces(&options) {
            let direct =
                crate::run_streams(&trace, StreamConfig::paper_filtered(10).expect("valid"));
            let row = result.row(&name).expect("benchmark present");
            assert!((row.stream_hit - direct.hit_rate()).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn jouppi_gain_is_small_for_streaming_codes() {
        // Where streams hit most misses, the extra L2 changes little.
        let result = run(&ExperimentOptions::quick());
        let embar = result.row("embar").unwrap();
        let gain = embar.memory_cpi[0] - embar.memory_cpi[1];
        assert!(
            gain <= embar.memory_cpi[0] * 0.5 + 1e-9,
            "embar gain {gain} too large vs {}",
            embar.memory_cpi[0]
        );
    }
}
