//! Table 4 — stream buffers versus secondary caches as data sets scale.
//!
//! For five benchmarks at two input sizes each: measure the stream hit
//! rate (ten streams, unit + czone filters — the paper's full
//! configuration), then find the minimum secondary cache achieving the
//! same *local* hit rate over the identical miss trace. L2 capacities
//! and associativities follow the paper (64 KB–4 MB, 1–4-way); the L2
//! block size is held equal to the primary cache's 32 bytes. (The paper
//! swept 64/128-byte L2 blocks against an unstated L1 block size; with a
//! 32-byte L1 block, larger L2 blocks would hand small caches a 4×
//! spatial-prefetch subsidy on sequential miss streams that the paper's
//! multi-megabyte results demonstrably did not include, so we hold block
//! size constant to keep *capacity* the operative variable, as in the
//! paper.) The conclusion this driver reproduces: streams scale
//! *better* — the equivalent cache grows with the data set (except the
//! cgm anomaly, where the large scattered matrix defeats streams).

use std::fmt;

use streamsim_cache::CacheConfig;
use streamsim_streams::StreamConfig;

use crate::experiments::{table4_pairs, ExperimentOptions};
use crate::report::{size, TextTable};
use crate::{paper, parallel_map, record_miss_trace, run_l2, run_streams, MissTrace};

/// The L2 capacities swept, smallest to largest.
pub const L2_SIZES: [u64; 7] = [
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Czone size used for the stream configuration.
pub const CZONE_BITS: u32 = 16;

/// One (benchmark, input) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// `true` for the larger input.
    pub large: bool,
    /// Modelled data-set size in bytes.
    pub data_set_bytes: u64,
    /// Stream hit rate (fraction).
    pub stream_hit: f64,
    /// Minimum L2 size (bytes) whose best-geometry local hit rate matches
    /// the streams, or `None` if even 4 MB falls short.
    pub min_l2_bytes: Option<u64>,
    /// The best L2 local hit rate observed at `min_l2_bytes` (or at 4 MB
    /// when `None`).
    pub l2_hit: f64,
}

/// Results of the Table 4 reproduction.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// Two rows (small, large) per benchmark.
    pub rows: Vec<Row>,
}

impl Table4 {
    /// The (small, large) rows for one benchmark.
    pub fn pair(&self, name: &str) -> Option<(&Row, &Row)> {
        let small = self.rows.iter().find(|r| r.name == name && !r.large)?;
        let large = self.rows.iter().find(|r| r.name == name && r.large)?;
        Some((small, large))
    }
}

/// Best local hit rate over the paper's associativities at a fixed
/// capacity, with the block size pinned to the L1's (see module docs).
fn best_l2_hit(trace: &MissTrace, size_bytes: u64) -> f64 {
    let mut best: f64 = 0.0;
    for assoc in [1u32, 2, 4] {
        let block = trace.l1_block();
        let Ok(cfg) = CacheConfig::secondary(size_bytes, assoc, block) else {
            continue;
        };
        if let Ok(stats) = run_l2(trace, cfg, None) {
            best = best.max(stats.hit_rate());
        }
    }
    best
}

fn measure(
    name: &str,
    large: bool,
    workload: &dyn streamsim_workloads::Workload,
    options: &ExperimentOptions,
) -> Row {
    let trace = record_miss_trace(workload, &options.record_options())
        .expect("paper L1 configuration is valid");
    let stream_hit = run_streams(
        &trace,
        StreamConfig::paper_strided(10, CZONE_BITS).expect("valid"),
    )
    .hit_rate();
    let mut min_l2_bytes = None;
    let mut l2_hit = 0.0;
    for &cap in &L2_SIZES {
        let hit = best_l2_hit(&trace, cap);
        l2_hit = hit;
        if hit >= stream_hit {
            min_l2_bytes = Some(cap);
            break;
        }
    }
    Row {
        name: name.to_owned(),
        large,
        data_set_bytes: workload.data_set_bytes(),
        stream_hit,
        min_l2_bytes,
        l2_hit,
    }
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Table4 {
    let mut cells = Vec::new();
    for (name, small, large) in table4_pairs(options.scale) {
        cells.push((name, false, small));
        cells.push((name, true, large));
    }
    let opts = *options;
    let rows = parallel_map(cells, move |(name, large, workload)| {
        measure(name, large, workload.as_ref(), &opts)
    });
    Table4 { rows }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: streams vs minimum secondary cache for equal local hit rate"
        )?;
        let mut t = TextTable::new(vec![
            "bench",
            "input",
            "stream hit %",
            "paper %",
            "min L2",
            "paper L2",
            "L2 hit %",
        ]);
        for r in &self.rows {
            let p = paper::TABLE4
                .iter()
                .find(|p| p.name == r.name && p.large == r.large);
            t.row(vec![
                r.name.clone(),
                format!("{:.1} MB", r.data_set_bytes as f64 / (1 << 20) as f64),
                format!("{:.0}", r.stream_hit * 100.0),
                p.map_or(String::new(), |p| format!("{}", p.stream_hit_pct)),
                r.min_l2_bytes.map_or(">4 MB".into(), size),
                p.map_or(String::new(), |p| size(p.min_l2_bytes)),
                format!("{:.0}", r.l2_hit * 100.0),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_pairs() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len() % 2, 0);
        assert!(result.pair("appsp").is_some());
        let text = result.to_string();
        assert!(text.contains("min L2"));
    }

    #[test]
    fn equivalent_cache_grows_with_data_set_for_regular_codes() {
        let result = run(&ExperimentOptions::quick());
        let (small, large) = result.pair("mgrid").unwrap();
        let s = small.min_l2_bytes.unwrap_or(u64::MAX);
        let l = large.min_l2_bytes.unwrap_or(u64::MAX);
        assert!(l >= s, "mgrid: small {s} vs large {l}");
    }

    #[test]
    fn stream_hit_rates_are_sane() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.stream_hit), "{}", r.name);
        }
    }
}
