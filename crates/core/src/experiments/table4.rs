//! Table 4 — stream buffers versus secondary caches as data sets scale.
//!
//! For five benchmarks at two input sizes each: measure the stream hit
//! rate (ten streams, unit + czone filters — the paper's full
//! configuration), then find the minimum secondary cache achieving the
//! same *local* hit rate over the identical miss trace. L2 capacities
//! and associativities follow the paper (64 KB–4 MB, 1–4-way); the L2
//! block size is held equal to the primary cache's 32 bytes. (The paper
//! swept 64/128-byte L2 blocks against an unstated L1 block size; with a
//! 32-byte L1 block, larger L2 blocks would hand small caches a 4×
//! spatial-prefetch subsidy on sequential miss streams that the paper's
//! multi-megabyte results demonstrably did not include, so we hold block
//! size constant to keep *capacity* the operative variable, as in the
//! paper.) The conclusion this driver reproduces: streams scale
//! *better* — the equivalent cache grows with the data set (except the
//! cgm anomaly, where the large scattered matrix defeats streams).

use std::fmt;

use streamsim_cache::CacheConfig;
use streamsim_streams::StreamConfig;

use crate::experiments::{table4_pairs, ExperimentOptions};
use crate::report::size;
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, replay, L2Observer, MissObserver, StreamObserver};

/// The L2 capacities swept, smallest to largest.
pub const L2_SIZES: [u64; 7] = [
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Czone size used for the stream configuration.
pub const CZONE_BITS: u32 = 16;

/// One (benchmark, input) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// `true` for the larger input.
    pub large: bool,
    /// Modelled data-set size in bytes.
    pub data_set_bytes: u64,
    /// Stream hit rate (fraction).
    pub stream_hit: f64,
    /// Minimum L2 size (bytes) whose best-geometry local hit rate matches
    /// the streams, or `None` if even 4 MB falls short.
    pub min_l2_bytes: Option<u64>,
    /// The best L2 local hit rate observed at `min_l2_bytes` (or at 4 MB
    /// when `None`).
    pub l2_hit: f64,
}

/// Results of the Table 4 reproduction.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// Two rows (small, large) per benchmark.
    pub rows: Vec<Row>,
}

impl Table4 {
    /// The (small, large) rows for one benchmark.
    pub fn pair(&self, name: &str) -> Option<(&Row, &Row)> {
        let small = self.rows.iter().find(|r| r.name == name && !r.large)?;
        let large = self.rows.iter().find(|r| r.name == name && r.large)?;
        Some((small, large))
    }
}

fn measure(
    name: &str,
    large: bool,
    workload: &dyn streamsim_workloads::Workload,
    options: &ExperimentOptions,
) -> Row {
    let trace = options
        .store
        .record(workload, &options.record_options())
        .expect("paper L1 configuration is valid");
    let block = trace.l1_block();

    // The stream system and the full capacity × associativity L2 grid
    // observe the trace in one pass; the minimum-capacity scan then runs
    // over the collected hit rates.
    let mut streams = StreamObserver::new(
        StreamConfig::paper_strided(10, CZONE_BITS).expect("paper stream configuration is valid"),
    );
    let mut grid: Vec<(u64, L2Observer)> = L2_SIZES
        .iter()
        .flat_map(|&cap| [1u32, 2, 4].map(|assoc| (cap, assoc)))
        .filter_map(|(cap, assoc)| {
            let cfg = CacheConfig::secondary(cap, assoc, block).ok()?;
            Some((cap, L2Observer::new(cfg, None).ok()?))
        })
        .collect();
    {
        let mut observers: Vec<&mut dyn MissObserver> = vec![&mut streams];
        observers.extend(grid.iter_mut().map(|(_, o)| o as &mut dyn MissObserver));
        replay(&trace, &mut observers);
    }

    let stream_hit = streams.stats().hit_rate();
    let mut min_l2_bytes = None;
    let mut l2_hit = 0.0;
    for &cap in &L2_SIZES {
        let best = grid
            .iter()
            .filter(|(c, _)| *c == cap)
            .map(|(_, o)| o.stats().hit_rate())
            .fold(0.0f64, f64::max);
        l2_hit = best;
        if best >= stream_hit {
            min_l2_bytes = Some(cap);
            break;
        }
    }
    Row {
        name: name.to_owned(),
        large,
        data_set_bytes: workload.data_set_bytes(),
        stream_hit,
        min_l2_bytes,
        l2_hit,
    }
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Table4 {
    let mut cells = Vec::new();
    for (name, small, large) in table4_pairs(options.scale) {
        cells.push((name, false, small));
        cells.push((name, true, large));
    }
    let opts = options.clone();
    let rows = options.parallel_map(cells, move |(name, large, workload)| {
        measure(name, large, workload.as_ref(), &opts)
    });
    Table4 { rows }
}

impl Artifact for Table4 {
    fn artifact(&self) -> &'static str {
        "table4"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "scaling",
            "Table 4: streams vs minimum secondary cache for equal local hit rate",
            &[
                col("bench", "bench"),
                col("input", "input_mb"),
                col("stream hit %", "stream_hit_pct"),
                col("paper %", "paper_stream_hit_pct"),
                col("min L2", "min_l2_bytes"),
                col("paper L2", "paper_min_l2_bytes"),
                col("L2 hit %", "l2_hit_pct"),
            ],
        );
        for r in &self.rows {
            let p = paper::TABLE4
                .iter()
                .find(|p| p.name == r.name && p.large == r.large);
            let input_mb = r.data_set_bytes as f64 / (1 << 20) as f64;
            let stream_hit = r.stream_hit * 100.0;
            let l2_hit = r.l2_hit * 100.0;
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(input_mb, format!("{input_mb:.1} MB")),
                Cell::num(stream_hit, format!("{stream_hit:.0}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(f64::from(p.stream_hit_pct), format!("{}", p.stream_hit_pct))
                }),
                match r.min_l2_bytes {
                    Some(bytes) => Cell::int(bytes as i64, size(bytes)),
                    None => Cell::text(">4 MB"),
                },
                p.map_or(Cell::text(""), |p| {
                    Cell::int(p.min_l2_bytes as i64, size(p.min_l2_bytes))
                }),
                Cell::num(l2_hit, format!("{l2_hit:.0}")),
            ]);
        }
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_pairs() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len() % 2, 0);
        assert!(result.pair("appsp").is_some());
        let text = result.to_string();
        assert!(text.contains("min L2"));
    }

    #[test]
    fn equivalent_cache_grows_with_data_set_for_regular_codes() {
        let result = run(&ExperimentOptions::quick());
        let (small, large) = result.pair("mgrid").unwrap();
        let s = small.min_l2_bytes.unwrap_or(u64::MAX);
        let l = large.min_l2_bytes.unwrap_or(u64::MAX);
        assert!(l >= s, "mgrid: small {s} vs large {l}");
    }

    #[test]
    fn stream_hit_rates_are_sane() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.stream_hit), "{}", r.name);
        }
    }
}
