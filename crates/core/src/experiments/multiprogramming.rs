//! Multiprogramming extension — stream buffers under context switching.
//!
//! The paper targets "large-scale parallel machines (1K processors or
//! more)", whose nodes multiplex work. Stream buffers hold almost no
//! state (ten tags and a stride), so the interesting question is not the
//! buffers themselves but the *interaction*: when two programs time-slice
//! one processor, every quantum boundary confronts the streams with a
//! stranger's miss pattern and repolluted primary cache.
//!
//! This experiment interleaves pairs of benchmarks at several quantum
//! sizes and compares the combined stream hit rate with the
//! miss-weighted average of the solo hit rates. The gap is the
//! multiprogramming penalty; it shrinks as quanta grow (streams re-lock
//! within a few misses, so the penalty is per-switch, not per-reference).

use std::fmt;

use streamsim_streams::StreamConfig;
use streamsim_workloads::combinators::Interleaved;
use streamsim_workloads::Workload;

use crate::experiments::{workload_set, ExperimentOptions, Scale};
use crate::run_streams;
use crate::sink::{col, Artifact, ArtifactSink, Cell};

/// Reference quanta swept (references per time slice).
pub const QUANTA: [usize; 3] = [1_000, 10_000, 100_000];

/// The benchmark pairs interleaved: a streaming pair, a mixed pair and an
/// adversarial pair (streaming + irregular).
pub const PAIRS: [(&str, &str); 3] = [("mgrid", "is"), ("applu", "trfd"), ("cgm", "adm")];

/// One pair's measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// The two benchmark names.
    pub pair: (String, String),
    /// Miss-weighted average of the two solo hit rates.
    pub solo_hit: f64,
    /// Combined hit rate per entry of [`QUANTA`].
    pub interleaved_hit: Vec<f64>,
}

impl Row {
    /// Multiprogramming penalty (solo − interleaved) at quantum index `i`.
    pub fn penalty(&self, i: usize) -> f64 {
        self.solo_hit - self.interleaved_hit[i]
    }
}

/// Results of the multiprogramming extension.
#[derive(Clone, Debug)]
pub struct Multiprogramming {
    /// One row per pair in [`PAIRS`].
    pub rows: Vec<Row>,
}

fn find(scale: Scale, name: &str) -> Box<dyn Workload> {
    workload_set(scale)
        .into_iter()
        .find(|w| w.name() == name)
        .expect("pair names are Table 1 benchmarks")
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Multiprogramming {
    let record = options.record_options();
    let store = options.store.clone();
    let scale = options.scale;
    let config = StreamConfig::paper_filtered(10).expect("valid");
    let rows = options.parallel_map(PAIRS.to_vec(), move |(a, b)| {
        let wa = find(scale, a);
        let wb = find(scale, b);

        // Solo hit rates, miss-weighted. The solo traces come from the
        // shared store, so other drivers' recordings are reused.
        let ta = store.record(wa.as_ref(), &record).expect("valid L1");
        let tb = store.record(wb.as_ref(), &record).expect("valid L1");
        let sa = run_streams(&ta, config);
        let sb = run_streams(&tb, config);
        let solo_hit = (sa.hits + sb.hits) as f64 / (sa.lookups + sb.lookups).max(1) as f64;

        let interleaved_hit = QUANTA
            .iter()
            .map(|&q| {
                let mix =
                    Interleaved::new(format!("{a}+{b}"), vec![find(scale, a), find(scale, b)], q);
                let trace = store.record(&mix, &record).expect("valid L1");
                run_streams(&trace, config).hit_rate()
            })
            .collect();

        Row {
            pair: (a.to_owned(), b.to_owned()),
            solo_hit,
            interleaved_hit,
        }
    });
    Multiprogramming { rows }
}

impl Artifact for Multiprogramming {
    fn artifact(&self) -> &'static str {
        "multiprogramming"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let mut columns = vec![col("pair", "pair"), col("solo", "solo_hit_pct")];
        columns.extend(
            QUANTA
                .iter()
                .map(|q| col(format!("q={q}"), format!("hit_pct_q{q}"))),
        );
        sink.begin_table(
            self.artifact(),
            "quantum_sweep",
            "Multiprogramming extension: stream hit rate (%) when two programs time-slice",
            &columns,
        );
        for r in &self.rows {
            let mut cells = vec![
                Cell::text(format!("{}+{}", r.pair.0, r.pair.1)),
                Cell::num(r.solo_hit * 100.0, format!("{:.0}", r.solo_hit * 100.0)),
            ];
            cells.extend(
                r.interleaved_hit
                    .iter()
                    .map(|h| Cell::num(h * 100.0, format!("{:.0}", h * 100.0))),
            );
            sink.row(&cells);
        }
        sink.note(
            "the gap to 'solo' is the context-switch penalty; it shrinks with the\n\
             quantum because streams re-lock within a few misses of each switch",
        );
    }
}

impl fmt::Display for Multiprogramming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_shrinks_with_quantum() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), PAIRS.len());
        for r in &result.rows {
            let first = r.penalty(0);
            let last = r.penalty(QUANTA.len() - 1);
            assert!(
                last <= first + 0.05,
                "{}+{}: penalty should not grow with quantum ({first} -> {last})",
                r.pair.0,
                r.pair.1
            );
        }
    }

    #[test]
    fn interleaving_never_helps_much() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            for (i, &hit) in r.interleaved_hit.iter().enumerate() {
                assert!(
                    hit <= r.solo_hit + 0.08,
                    "{}+{} q={}: {hit} vs solo {}",
                    r.pair.0,
                    r.pair.1,
                    QUANTA[i],
                    r.solo_hit
                );
            }
        }
    }

    #[test]
    fn display_renders() {
        let result = run(&ExperimentOptions::quick());
        let text = result.to_string();
        assert!(text.contains("mgrid+is"));
        assert!(text.contains("q=100000"));
    }
}
