//! Drivers that regenerate every table and figure of the paper.
//!
//! Each submodule reproduces one artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — benchmark characteristics |
//! | [`fig3`] | Figure 3 — hit rate vs number of streams |
//! | [`table2`] | Table 2 — extra bandwidth of ordinary streams |
//! | [`fig5`] | Figure 5 — the unit-stride filter's effect |
//! | [`table3`] | Table 3 — stream-length distribution |
//! | [`fig8`] | Figure 8 — non-unit-stride detection |
//! | [`fig9`] | Figure 9 — czone-size sensitivity |
//! | [`table4`] | Table 4 — streams vs secondary-cache scaling |
//! | [`ablations`] | design-choice studies beyond the paper's figures |
//! | [`latency`] | timing extension quantifying the §8 caveat |
//! | [`traffic`] | memory-traffic comparison: streams vs a 1 MB L2 |
//! | [`multiprogramming`] | context-switch penalty under time slicing |
//! | [`baselines`] | prefetcher lineage: OBL → Jouppi → multi-way → filter → strides |
//! | [`scorecard`] | machine-checked paper-vs-measured verdicts |
//! | [`cpi`] | estimated memory CPI / execution-time extension |
//! | [`topology`] | §3 stream placement: from memory (paper) vs from an L2 (Jouppi) |
//! | [`sweep`] | whole design-space sweep with an optional analytical pre-screen |
//!
//! Every driver takes [`ExperimentOptions`]; [`Scale::Quick`] runs
//! reduced inputs for smoke tests, [`Scale::Paper`] the paper-sized
//! inputs used by the bench harness.

pub mod ablations;
pub mod baselines;
pub mod cpi;
pub mod fig3;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod latency;
pub mod multiprogramming;
pub mod scorecard;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod topology;
pub mod traffic;

use std::sync::Arc;

use streamsim_workloads::{all_benchmarks, kernels, Workload};

use crate::sink::Artifact;
use crate::{ExecutorHandle, MissTrace, RecordOptions, TraceStore};

/// Every experiment driver's artifact name, in report order.
///
/// `sweep` is the whole-design-space driver; it is listed here (so it
/// can be selected by name and `--prescreen` applies to it) but a
/// default `streamsim-report` run excludes it — the full grid is ~60×
/// the cost of any single figure.
pub const ARTIFACT_NAMES: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig3",
    "fig5",
    "fig8",
    "fig9",
    "ablations",
    "baselines",
    "latency",
    "traffic",
    "multiprogramming",
    "scorecard",
    "cpi",
    "topology",
    "sweep",
];

/// Artifacts a no-selection `streamsim-report` run regenerates: all of
/// [`ARTIFACT_NAMES`] except the on-demand `sweep`.
pub fn default_artifacts() -> Vec<&'static str> {
    ARTIFACT_NAMES
        .iter()
        .copied()
        .filter(|&n| n != "sweep")
        .collect()
}

/// Runs one experiment driver by artifact name, returning its result as
/// a sink-ready [`Artifact`]. Returns `None` for unknown names (see
/// [`ARTIFACT_NAMES`]).
///
/// All drivers run against the options' shared [`TraceStore`], so a
/// sequence of `run_artifact` calls with one options value simulates
/// each L1 configuration exactly once.
pub fn run_artifact(name: &str, options: &ExperimentOptions) -> Option<Box<dyn Artifact>> {
    let artifact: Box<dyn Artifact> = match name {
        "table1" => Box::new(table1::run(options)),
        "table2" => Box::new(table2::run(options)),
        "table3" => Box::new(table3::run(options)),
        "table4" => Box::new(table4::run(options)),
        "fig3" => Box::new(fig3::run(options)),
        "fig5" => Box::new(fig5::run(options)),
        "fig8" => Box::new(fig8::run(options)),
        "fig9" => Box::new(fig9::run(options)),
        "ablations" => Box::new(ablations::run(options)),
        "baselines" => Box::new(baselines::run(options)),
        "latency" => Box::new(latency::run(options)),
        "traffic" => Box::new(traffic::run(options)),
        "multiprogramming" => Box::new(multiprogramming::run(options)),
        "scorecard" => Box::new(scorecard::run(options)),
        "cpi" => Box::new(cpi::run(options)),
        "topology" => Box::new(topology::run(options)),
        "sweep" => Box::new(sweep::run(options)),
        _ => return None,
    };
    Some(artifact)
}

/// Input-size scale for an experiment run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scale {
    /// The paper's input sizes (used by the bench harness).
    #[default]
    Paper,
    /// Reduced inputs for fast smoke tests.
    Quick,
}

/// Options shared by all experiment drivers.
///
/// Cloning is cheap and *shares* the [`TraceStore`]: drivers run with
/// clones of one options value reuse each other's recorded miss traces,
/// which is what makes a full multi-driver sweep simulate each L1
/// exactly once.
#[derive(Clone, Debug, Default)]
pub struct ExperimentOptions {
    /// Input-size scale.
    pub scale: Scale,
    /// Optional time sampling `(on, off)` applied while recording miss
    /// traces (the paper's configuration is `(10_000, 90_000)`).
    pub sampling: Option<(u64, u64)>,
    /// The shared store of recorded miss traces.
    pub store: TraceStore,
    /// Pre-screen configuration sweeps with the analytical model: score
    /// every cell in closed form from memoized locality profiles and
    /// simulate only the predicted Pareto frontier plus a tolerance
    /// band (see [`sweep`]). Off by default — drivers that don't sweep
    /// ignore it.
    pub prescreen: bool,
    /// The executor every concurrent fan-out in this run goes through —
    /// trace-store prefills and the drivers' (cell × config) sweeps
    /// alike. Defaults to the production thread pool; DST tests swap in
    /// a seeded [`streamsim_dst::SimExecutor`] via
    /// [`ExperimentOptions::with_executor`] so a whole experiment runs
    /// under one reproducible interleaving.
    pub executor: ExecutorHandle,
}

impl ExperimentOptions {
    /// Quick-scale options for tests.
    pub fn quick() -> Self {
        ExperimentOptions {
            scale: Scale::Quick,
            ..ExperimentOptions::default()
        }
    }

    /// Options at the given scale (fresh store, no sampling).
    pub fn at_scale(scale: Scale) -> Self {
        ExperimentOptions {
            scale,
            ..ExperimentOptions::default()
        }
    }

    /// These options with a different executor (keeping store, scale
    /// and sampling).
    pub fn with_executor(mut self, executor: ExecutorHandle) -> Self {
        self.executor = executor;
        self
    }

    /// [`parallel_map`](crate::parallel_map) over this run's executor.
    ///
    /// Drivers route every fan-out through here instead of the free
    /// function, so one `ExperimentOptions` value pins the scheduling
    /// of an entire experiment.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.executor.parallel_map(items, f)
    }

    /// The [`RecordOptions`] (L1 geometry + sampling) these experiment
    /// options record miss traces with. Quick-scale runs shrink the L1
    /// along with the inputs so the miss-stream structure matches the
    /// paper-scale runs.
    pub fn record_options(&self) -> RecordOptions {
        match self.scale {
            Scale::Paper => RecordOptions {
                sampling: self.sampling,
                ..RecordOptions::default()
            },
            // Quick runs shrink the L1 along with the inputs so the
            // miss-stream structure (which arrays out-size the cache)
            // matches the paper-scale runs.
            Scale::Quick => {
                let cfg = streamsim_cache::CacheConfig::new(
                    16 * 1024,
                    4,
                    streamsim_trace::BlockSize::default(),
                )
                .expect("valid quick L1")
                .with_replacement(streamsim_cache::Replacement::Random { seed: 0x5eed });
                RecordOptions {
                    icache: cfg,
                    dcache: cfg,
                    sampling: self.sampling,
                }
            }
        }
    }
}

/// The fifteen benchmarks at the requested scale, in Table 1 order.
pub fn workload_set(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Paper => all_benchmarks(),
        Scale::Quick => vec![
            Box::new(kernels::Embar {
                chunk: 512,
                batches: 24,
                compute_refs: 8,
            }),
            Box::new(kernels::Mgrid { n: 16, cycles: 1 }),
            Box::new(kernels::Cgm {
                rows: 400,
                nnz: 12_000,
                bandwidth: Some(60),
                iters: 3,
                seed: 0xc6,
            }),
            Box::new(kernels::Fftpde {
                n: 32,
                steps: 1,
                passes: 1,
            }),
            Box::new(kernels::Is {
                keys: 16 * 1024,
                max_key: 1024,
                iters: 3,
                seed: 0x15,
            }),
            Box::new(kernels::Appsp { n: 12, iters: 2 }),
            Box::new(kernels::Appbt { n: 10, iters: 1 }),
            Box::new(kernels::Applu { n: 10, iters: 1 }),
            Box::new(kernels::Spec77 {
                waves: 32,
                lats: 48,
                levels: 4,
                steps: 1,
            }),
            Box::new(kernels::Adm {
                cells: 16 * 1024,
                steps: 2,
                indirect_pct: 65,
                seed: 0xad,
            }),
            Box::new(kernels::Bdna {
                atoms: 4096,
                neighbours: 12,
                window: 96,
                steps: 1,
                seed: 0xb0,
            }),
            Box::new(kernels::Dyfesm {
                elements: 2048,
                nodes: 8192,
                nodes_per_elem: 8,
                steps: 2,
                seed: 0xd7,
            }),
            Box::new(kernels::Mdg {
                molecules: 128,
                steps: 2,
                seed: 0x3d,
            }),
            Box::new(kernels::Qcd { l: 6, sweeps: 1 }),
            Box::new(kernels::Trfd {
                n: 192,
                unit_passes: 1,
                strided_passes: 1,
                compute_refs: 1,
            }),
        ],
    }
}

/// A Table 4 benchmark: its name with the small and large input
/// workloads.
pub type Table4Pair = (&'static str, Box<dyn Workload>, Box<dyn Workload>);

/// The Table 4 benchmarks with their small and large inputs.
pub fn table4_pairs(scale: Scale) -> Vec<Table4Pair> {
    match scale {
        Scale::Paper => vec![
            (
                "appsp",
                Box::new(kernels::Appsp::small()) as Box<dyn Workload>,
                Box::new(kernels::Appsp::large()) as Box<dyn Workload>,
            ),
            (
                "appbt",
                Box::new(kernels::Appbt::small()),
                Box::new(kernels::Appbt::large()),
            ),
            (
                "applu",
                Box::new(kernels::Applu::small()),
                Box::new(kernels::Applu::large()),
            ),
            (
                "cgm",
                Box::new(kernels::Cgm::small()),
                Box::new(kernels::Cgm::large()),
            ),
            (
                "mgrid",
                Box::new(kernels::Mgrid::small()),
                Box::new(kernels::Mgrid::large()),
            ),
        ],
        Scale::Quick => vec![
            (
                "appsp",
                Box::new(kernels::Appsp { n: 8, iters: 2 }) as Box<dyn Workload>,
                Box::new(kernels::Appsp { n: 16, iters: 1 }) as Box<dyn Workload>,
            ),
            (
                "cgm",
                Box::new(kernels::Cgm {
                    rows: 400,
                    nnz: 12_000,
                    bandwidth: Some(60),
                    iters: 2,
                    seed: 0xc6,
                }),
                Box::new(kernels::Cgm {
                    rows: 1600,
                    nnz: 20_000,
                    bandwidth: None,
                    iters: 2,
                    seed: 0xc6,
                }),
            ),
            (
                "mgrid",
                Box::new(kernels::Mgrid { n: 16, cycles: 3 }),
                Box::new(kernels::Mgrid { n: 32, cycles: 2 }),
            ),
        ],
    }
}

/// The miss trace of every benchmark at the requested scale, in Table 1
/// order.
///
/// Traces come from the options' shared [`TraceStore`]: the first caller
/// records them (in parallel), every later caller — any driver holding a
/// clone of the same options — gets the stored `Arc`s back without
/// re-simulating the L1.
pub fn miss_traces(options: &ExperimentOptions) -> Vec<(String, Arc<MissTrace>)> {
    let workloads = workload_set(options.scale);
    let traces = options
        .store
        .prefill_on(
            &workloads,
            &options.record_options(),
            options.executor.executor(),
        )
        .expect("paper L1 configuration is valid");
    workloads
        .iter()
        .map(|w| w.name().to_owned())
        .zip(traces)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_scales_provide_all_benchmarks() {
        assert_eq!(workload_set(Scale::Paper).len(), 15);
        assert_eq!(workload_set(Scale::Quick).len(), 15);
        let paper: Vec<String> = workload_set(Scale::Paper)
            .iter()
            .map(|w| w.name().to_owned())
            .collect();
        let quick: Vec<String> = workload_set(Scale::Quick)
            .iter()
            .map(|w| w.name().to_owned())
            .collect();
        assert_eq!(paper, quick, "same benchmarks in the same order");
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        for (p, q) in workload_set(Scale::Paper)
            .iter()
            .zip(workload_set(Scale::Quick).iter())
        {
            assert!(
                q.data_set_bytes() <= p.data_set_bytes(),
                "{} quick should not exceed paper size",
                p.name()
            );
        }
    }

    #[test]
    fn quick_miss_traces_record() {
        let traces = miss_traces(&ExperimentOptions::quick());
        assert_eq!(traces.len(), 15);
        for (name, trace) in &traces {
            assert!(trace.fetches() > 0, "{name} produced no misses");
        }
    }

    #[test]
    fn table4_pairs_scale_up() {
        for (name, small, large) in table4_pairs(Scale::Quick) {
            assert!(
                large.data_set_bytes() > small.data_set_bytes(),
                "{name} large must out-size small"
            );
        }
        assert_eq!(table4_pairs(Scale::Paper).len(), 5);
    }
}
