//! Figure 5 — the unit-stride filter's effect on hit rate and bandwidth.
//!
//! Ten streams with and without the 16-entry unit-stride filter. The
//! paper's findings this driver reproduces: the filter cuts extra
//! bandwidth drastically (often by more than half; trfd 96 %→11 %, is
//! 48 %→7 %) at little hit-rate cost for most codes, *increases* the
//! fftpde hit rate by protecting active streams, and hurts short-burst
//! `appbt` (65 %→45 %).

use std::fmt;

use streamsim_streams::{StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::report::TextTable;
use crate::{paper, run_streams};

/// One benchmark's with/without-filter comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Ten unfiltered streams.
    pub unfiltered: StreamStats,
    /// Ten streams behind the 16-entry unit filter.
    pub filtered: StreamStats,
}

/// Results of the Figure 5 reproduction.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Fig5 {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Fig5 {
    let rows = miss_traces(options)
        .into_iter()
        .map(|(name, trace)| Row {
            name,
            unfiltered: run_streams(&trace, StreamConfig::paper_basic(10).expect("valid")),
            filtered: run_streams(&trace, StreamConfig::paper_filtered(10).expect("valid")),
        })
        .collect();
    Fig5 { rows }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: effect of the unit-stride filter (10 streams, 16-entry filter)"
        )?;
        let mut t = TextTable::new(vec![
            "bench",
            "hit w/o",
            "hit w/",
            "paper w/o",
            "paper w/",
            "EB w/o",
            "EB w/",
            "paper w/o",
            "paper w/",
        ]);
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            t.row(vec![
                r.name.clone(),
                format!("{:.0}", r.unfiltered.hit_rate() * 100.0),
                format!("{:.0}", r.filtered.hit_rate() * 100.0),
                p.map_or(String::new(), |p| format!("~{:.0}", p.hit_basic_pct)),
                p.map_or(String::new(), |p| format!("~{:.0}", p.hit_filtered_pct)),
                format!("{:.0}", r.unfiltered.extra_bandwidth() * 100.0),
                format!("{:.0}", r.filtered.extra_bandwidth() * 100.0),
                p.map_or(String::new(), |p| format!("{:.0}", p.eb_basic_pct)),
                p.map_or(String::new(), |p| format!("{:.0}", p.eb_filtered_pct)),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_always_reduces_bandwidth() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert!(
                r.filtered.extra_bandwidth() <= r.unfiltered.extra_bandwidth() + 1e-9,
                "{}: filter increased EB",
                r.name
            );
        }
    }

    #[test]
    fn filter_cuts_bandwidth_sharply_for_irregular_codes() {
        let result = run(&ExperimentOptions::quick());
        let adm = result.row("adm").unwrap();
        assert!(
            adm.filtered.extra_bandwidth() < adm.unfiltered.extra_bandwidth() / 2.0,
            "adm EB {} -> {}",
            adm.unfiltered.extra_bandwidth(),
            adm.filtered.extra_bandwidth()
        );
    }

    #[test]
    fn filter_costs_little_for_long_stream_codes() {
        let result = run(&ExperimentOptions::quick());
        let embar = result.row("embar").unwrap();
        assert!(
            embar.unfiltered.hit_rate() - embar.filtered.hit_rate() < 0.10,
            "embar hit {} -> {}",
            embar.unfiltered.hit_rate(),
            embar.filtered.hit_rate()
        );
    }
}
