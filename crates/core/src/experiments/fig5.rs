//! Figure 5 — the unit-stride filter's effect on hit rate and bandwidth.
//!
//! Ten streams with and without the 16-entry unit-stride filter. The
//! paper's findings this driver reproduces: the filter cuts extra
//! bandwidth drastically (often by more than half; trfd 96 %→11 %, is
//! 48 %→7 %) at little hit-rate cost for most codes, *increases* the
//! fftpde hit rate by protecting active streams, and hurts short-burst
//! `appbt` (65 %→45 %).

use std::fmt;

use streamsim_streams::{StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, replay_streams};

/// One benchmark's with/without-filter comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Ten unfiltered streams.
    pub unfiltered: StreamStats,
    /// Ten streams behind the 16-entry unit filter.
    pub filtered: StreamStats,
}

/// Results of the Figure 5 reproduction.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Fig5 {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment. Both configurations share one replay pass per
/// benchmark.
pub fn run(options: &ExperimentOptions) -> Fig5 {
    let configs = [
        StreamConfig::paper_basic(10).expect("valid"),
        StreamConfig::paper_filtered(10).expect("valid"),
    ];
    let rows = miss_traces(options)
        .into_iter()
        .map(|(name, trace)| {
            let mut stats = replay_streams(&trace, &configs).into_iter();
            Row {
                name,
                unfiltered: stats.next().expect("two configs"),
                filtered: stats.next().expect("two configs"),
            }
        })
        .collect();
    Fig5 { rows }
}

impl Artifact for Fig5 {
    fn artifact(&self) -> &'static str {
        "fig5"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "filter_effect",
            "Figure 5: effect of the unit-stride filter (10 streams, 16-entry filter)",
            &[
                col("bench", "bench"),
                col("hit w/o", "hit_unfiltered_pct"),
                col("hit w/", "hit_filtered_pct"),
                col("paper w/o", "paper_hit_unfiltered_pct"),
                col("paper w/", "paper_hit_filtered_pct"),
                col("EB w/o", "eb_unfiltered_pct"),
                col("EB w/", "eb_filtered_pct"),
                col("paper w/o", "paper_eb_unfiltered_pct"),
                col("paper w/", "paper_eb_filtered_pct"),
            ],
        );
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            let hit_wo = r.unfiltered.hit_rate() * 100.0;
            let hit_w = r.filtered.hit_rate() * 100.0;
            let eb_wo = r.unfiltered.extra_bandwidth() * 100.0;
            let eb_w = r.filtered.extra_bandwidth() * 100.0;
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(hit_wo, format!("{hit_wo:.0}")),
                Cell::num(hit_w, format!("{hit_w:.0}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.hit_basic_pct, format!("~{:.0}", p.hit_basic_pct))
                }),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.hit_filtered_pct, format!("~{:.0}", p.hit_filtered_pct))
                }),
                Cell::num(eb_wo, format!("{eb_wo:.0}")),
                Cell::num(eb_w, format!("{eb_w:.0}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.eb_basic_pct, format!("{:.0}", p.eb_basic_pct))
                }),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.eb_filtered_pct, format!("{:.0}", p.eb_filtered_pct))
                }),
            ]);
        }
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_always_reduces_bandwidth() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            assert!(
                r.filtered.extra_bandwidth() <= r.unfiltered.extra_bandwidth() + 1e-9,
                "{}: filter increased EB",
                r.name
            );
        }
    }

    #[test]
    fn filter_cuts_bandwidth_sharply_for_irregular_codes() {
        let result = run(&ExperimentOptions::quick());
        let adm = result.row("adm").unwrap();
        assert!(
            adm.filtered.extra_bandwidth() < adm.unfiltered.extra_bandwidth() / 2.0,
            "adm EB {} -> {}",
            adm.unfiltered.extra_bandwidth(),
            adm.filtered.extra_bandwidth()
        );
    }

    #[test]
    fn filter_costs_little_for_long_stream_codes() {
        let result = run(&ExperimentOptions::quick());
        let embar = result.row("embar").unwrap();
        assert!(
            embar.unfiltered.hit_rate() - embar.filtered.hit_rate() < 0.10,
            "embar hit {} -> {}",
            embar.unfiltered.hit_rate(),
            embar.filtered.hit_rate()
        );
    }
}
