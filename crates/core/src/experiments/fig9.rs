//! Figure 9 — hit-rate sensitivity to czone size.
//!
//! For the three benchmarks with significant non-unit strides (`appsp`,
//! `fftpde`, `trfd`), sweep the czone size. The paper's finding: the
//! czone must be a little more than twice the stride — too small and
//! three strided references never share a partition; too large and
//! unrelated streams collide in one partition and defeat the FSM
//! (fftpde works between 16 and 23 bits).

use std::fmt;

use streamsim_streams::StreamConfig;

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::replay_streams;
use crate::sink::{col, Artifact, ArtifactSink, Cell};

/// The czone sizes swept (bits of the word address), as in the figure.
pub const CZONE_BITS: [u32; 9] = [10, 12, 14, 16, 18, 20, 22, 24, 26];

/// The benchmarks shown in Figure 9.
pub const FIG9_BENCHMARKS: [&str; 3] = ["appsp", "fftpde", "trfd"];

/// One benchmark's sensitivity curve.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Hit rate (fraction) per entry of [`CZONE_BITS`].
    pub hit_rates: Vec<f64>,
}

impl Row {
    /// Hit rate at a given czone size, if swept.
    pub fn hit_at(&self, bits: u32) -> Option<f64> {
        CZONE_BITS
            .iter()
            .position(|&b| b == bits)
            .map(|i| self.hit_rates[i])
    }
}

/// Results of the Figure 9 reproduction.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// One row per Figure 9 benchmark.
    pub rows: Vec<Row>,
}

impl Fig9 {
    /// The curve for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment. The nine czone sizes replay over each
/// benchmark's trace in a single pass.
pub fn run(options: &ExperimentOptions) -> Fig9 {
    let configs: Vec<StreamConfig> = CZONE_BITS
        .iter()
        .map(|&bits| StreamConfig::paper_strided(10, bits).expect("valid czone"))
        .collect();
    let traces: Vec<_> = miss_traces(options)
        .into_iter()
        .filter(|(name, _)| FIG9_BENCHMARKS.contains(&name.as_str()))
        .collect();
    let rows = options.parallel_map(traces, move |(name, trace)| {
        let hit_rates = replay_streams(&trace, &configs)
            .iter()
            .map(|s| s.hit_rate())
            .collect();
        Row { name, hit_rates }
    });
    Fig9 { rows }
}

impl Artifact for Fig9 {
    fn artifact(&self) -> &'static str {
        "fig9"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let mut columns = vec![col("bench", "bench")];
        columns.extend(
            CZONE_BITS
                .iter()
                .map(|b| col(format!("{b}b"), format!("hit_pct_{b}b"))),
        );
        sink.begin_table(
            self.artifact(),
            "czone_sensitivity",
            "Figure 9: hit rate (%) vs czone size (10 streams, unit + czone filters)",
            &columns,
        );
        for r in &self.rows {
            let mut cells = vec![Cell::text(r.name.clone())];
            cells.extend(
                r.hit_rates
                    .iter()
                    .map(|h| Cell::num(h * 100.0, format!("{:.0}", h * 100.0))),
            );
            sink.row(&cells);
        }
        let mut chart =
            crate::chart::AsciiChart::new(CZONE_BITS.iter().map(|b| format!("{b}")).collect());
        for r in &self.rows {
            chart.series(r.name.clone(), r.hit_rates.clone());
        }
        sink.note(chart.to_string().trim_end());
        for anchor in &crate::paper::FIG9 {
            match anchor.degrades_after_bits {
                Some(hi) => sink.note(&format!(
                    "paper {}: effective from ~{} to ~{hi} bits, peak ~{:.0}%",
                    anchor.name, anchor.works_from_bits, anchor.peak_hit_pct
                )),
                None => sink.note(&format!(
                    "paper {}: plateaus from ~{} bits at ~{:.0}%",
                    anchor.name, anchor.works_from_bits, anchor.peak_hit_pct
                )),
            }
        }
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_three_benchmarks() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 3);
        for name in FIG9_BENCHMARKS {
            assert!(result.row(name).is_some(), "{name}");
        }
    }

    #[test]
    fn too_small_czones_miss_large_strides() {
        let result = run(&ExperimentOptions::quick());
        let fftpde = result.row("fftpde").unwrap();
        // At 10 bits the plane stride cannot be detected; at 18 it can.
        let small = fftpde.hit_at(10).unwrap();
        let good = fftpde.hit_at(18).unwrap();
        assert!(good > small, "10 bits {small} vs 18 bits {good}");
    }

    #[test]
    fn curves_respect_the_paper_anchors() {
        let result = run(&ExperimentOptions::quick());
        for anchor in &crate::paper::FIG9 {
            let row = result.row(anchor.name).expect("anchored benchmark");
            // Inside the working range the hit rate must exceed the
            // below-range level.
            let inside = row.hit_at(anchor.works_from_bits.clamp(10, 26));
            let below = row.hit_at(10);
            if let (Some(inside), Some(below)) = (inside, below) {
                assert!(
                    inside + 0.02 >= below,
                    "{}: inside {inside} vs below {below}",
                    anchor.name
                );
            }
        }
    }

    #[test]
    fn trfd_plateaus_once_covered() {
        let result = run(&ExperimentOptions::quick());
        let trfd = result.row("trfd").unwrap();
        let at16 = trfd.hit_at(16).unwrap();
        let at22 = trfd.hit_at(22).unwrap();
        assert!(
            (at16 - at22).abs() < 0.15,
            "trfd should plateau: {at16} vs {at22}"
        );
    }
}
