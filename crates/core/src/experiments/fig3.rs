//! Figure 3 — stream hit rate vs number of streams.
//!
//! Unified, unfiltered streams of depth two, allocated on every miss, for
//! 1–10 stream buffers. The paper's headline observations: most
//! benchmarks plateau between 50 % and 80 %, seven to eight streams
//! suffice, and `fftpde`/`appsp` (non-unit strides) and `adm`/`dyfesm`
//! (indirections) stay low.

use std::fmt;

use streamsim_streams::StreamConfig;

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, replay_streams};

/// The stream counts swept, as in the figure's x-axis.
pub const STREAM_COUNTS: [usize; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// One benchmark's hit-rate curve.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Hit rate (fraction) per entry of [`STREAM_COUNTS`].
    pub hit_rates: Vec<f64>,
}

impl Row {
    /// Hit rate with `n` streams, if swept.
    pub fn hit_at(&self, n: usize) -> Option<f64> {
        STREAM_COUNTS
            .iter()
            .position(|&c| c == n)
            .map(|i| self.hit_rates[i])
    }
}

/// Results of the Figure 3 reproduction.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Per-benchmark curves, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Fig3 {
    /// The curve for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment. The ten stream-count configurations replay over
/// each benchmark's trace in a single pass.
pub fn run(options: &ExperimentOptions) -> Fig3 {
    let configs: Vec<StreamConfig> = STREAM_COUNTS
        .iter()
        .map(|&n| StreamConfig::paper_basic(n).expect("stream counts are positive"))
        .collect();
    let traces = miss_traces(options);
    let rows = options.parallel_map(traces, move |(name, trace)| {
        let hit_rates = replay_streams(&trace, &configs)
            .iter()
            .map(|s| s.hit_rate())
            .collect();
        Row { name, hit_rates }
    });
    Fig3 { rows }
}

impl Artifact for Fig3 {
    fn artifact(&self) -> &'static str {
        "fig3"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let mut columns = vec![col("bench", "bench")];
        columns.extend(
            STREAM_COUNTS
                .iter()
                .map(|n| col(n.to_string(), format!("hit_pct_{n}"))),
        );
        columns.push(col("paper@10", "paper_hit_pct_10"));
        sink.begin_table(
            self.artifact(),
            "hit_rate",
            "Figure 3: stream hit rate (%) vs number of streams (unified, depth 2, no filter)",
            &columns,
        );
        for r in &self.rows {
            let mut cells = vec![Cell::text(r.name.clone())];
            cells.extend(
                r.hit_rates
                    .iter()
                    .map(|h| Cell::num(h * 100.0, format!("{:.0}", h * 100.0))),
            );
            cells.push(paper::benchmark(&r.name).map_or(Cell::text(""), |p| {
                Cell::num(p.hit_basic_pct, format!("~{:.0}", p.hit_basic_pct))
            }));
            sink.row(&cells);
        }
        // A sketch of the figure for four representative curves.
        let mut chart =
            crate::chart::AsciiChart::new(STREAM_COUNTS.iter().map(|n| n.to_string()).collect());
        for name in ["mgrid", "appbt", "fftpde", "adm"] {
            if let Some(r) = self.row(name) {
                chart.series(name, r.hit_rates.clone());
            }
        }
        sink.note(chart.to_string().trim_end());
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn hit_rates_are_monotone_enough_and_plateau() {
        let result = run(&ExperimentOptions::quick());
        assert_eq!(result.rows.len(), 15);
        for r in &result.rows {
            // More streams never hurts by much (LRU thrash can wiggle).
            let first = r.hit_rates[0];
            let last = *r.hit_rates.last().unwrap();
            assert!(
                last + 0.02 >= first,
                "{}: {first} -> {last} should not collapse",
                r.name
            );
            for h in &r.hit_rates {
                assert!((0.0..=1.0).contains(h), "{}", r.name);
            }
        }
    }

    #[test]
    fn stream_friendly_benchmarks_beat_irregular_ones() {
        let result = run(&ExperimentOptions::at_scale(Scale::Quick));
        let embar = result.row("embar").unwrap().hit_at(10).unwrap();
        let adm = result.row("adm").unwrap().hit_at(10).unwrap();
        assert!(
            embar > adm + 0.2,
            "embar ({embar}) should far exceed adm ({adm})"
        );
    }

    #[test]
    fn display_includes_paper_reference() {
        let result = run(&ExperimentOptions::quick());
        let text = result.to_string();
        assert!(text.contains("paper@10"));
        assert!(text.contains("fftpde"));
    }
}
