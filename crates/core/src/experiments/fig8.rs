//! Figure 8 — performance of the non-unit-stride detection scheme.
//!
//! Ten streams, a 16-entry unit-stride filter backed by a 16-entry czone
//! filter (the paper's configuration). The driver compares unit-only
//! (filtered) streams against the full constant-stride configuration.
//! Paper anchors: fftpde 26 %→71 %, appsp 33 %→65 %, trfd 50 %→65 %,
//! "gains in other benchmarks are minor".

use std::fmt;

use streamsim_streams::{StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, replay_streams};

/// Czone size (bits of the word address) used when a benchmark has no
/// tuned value: large enough for plane-sized strides, small enough to
/// keep distinct arrays in distinct partitions.
pub const DEFAULT_CZONE_BITS: u32 = 16;

/// One benchmark's unit-only vs constant-stride comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Unit-stride-only streams (16-entry filter).
    pub unit_only: StreamStats,
    /// Unit filter backed by the czone filter.
    pub strided: StreamStats,
}

/// Results of the Figure 8 reproduction.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
    /// The czone size used.
    pub czone_bits: u32,
}

impl Fig8 {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment with the default czone size.
pub fn run(options: &ExperimentOptions) -> Fig8 {
    run_with_czone(options, DEFAULT_CZONE_BITS)
}

/// Runs the experiment with an explicit czone size. Both configurations
/// share one replay pass per benchmark.
pub fn run_with_czone(options: &ExperimentOptions, czone_bits: u32) -> Fig8 {
    let configs = [
        StreamConfig::paper_filtered(10).expect("valid"),
        StreamConfig::paper_strided(10, czone_bits).expect("valid"),
    ];
    let rows = miss_traces(options)
        .into_iter()
        .map(|(name, trace)| {
            let mut stats = replay_streams(&trace, &configs).into_iter();
            Row {
                name,
                unit_only: stats.next().expect("two configs"),
                strided: stats.next().expect("two configs"),
            }
        })
        .collect();
    Fig8 { rows, czone_bits }
}

impl Artifact for Fig8 {
    fn artifact(&self) -> &'static str {
        "fig8"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "stride_detection",
            &format!(
                "Figure 8: non-unit-stride detection (10 streams, 16-entry filters, czone {} bits)",
                self.czone_bits
            ),
            &[
                col("bench", "bench"),
                col("unit-only %", "unit_only_pct"),
                col("w/ strides %", "strided_pct"),
                col("paper unit %", "paper_unit_only_pct"),
                col("paper strided %", "paper_strided_pct"),
            ],
        );
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            let unit = r.unit_only.hit_rate() * 100.0;
            let strided = r.strided.hit_rate() * 100.0;
            sink.row(&[
                Cell::text(r.name.clone()),
                Cell::num(unit, format!("{unit:.0}")),
                Cell::num(strided, format!("{strided:.0}")),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.hit_filtered_pct, format!("~{:.0}", p.hit_filtered_pct))
                }),
                p.map_or(Cell::text(""), |p| {
                    Cell::num(p.hit_strided_pct, format!("~{:.0}", p.hit_strided_pct))
                }),
            ]);
        }
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_detection_lifts_strided_benchmarks() {
        let result = run(&ExperimentOptions::quick());
        for name in ["fftpde", "trfd"] {
            let r = result.row(name).unwrap();
            assert!(
                r.strided.hit_rate() > r.unit_only.hit_rate() + 0.1,
                "{name}: {} -> {}",
                r.unit_only.hit_rate(),
                r.strided.hit_rate()
            );
        }
    }

    #[test]
    fn gains_are_minor_for_sequential_codes() {
        let result = run(&ExperimentOptions::quick());
        let r = result.row("embar").unwrap();
        assert!(
            (r.strided.hit_rate() - r.unit_only.hit_rate()).abs() < 0.15,
            "embar should barely change: {} -> {}",
            r.unit_only.hit_rate(),
            r.strided.hit_rate()
        );
    }

    #[test]
    fn strided_allocations_happen_only_with_the_czone_filter() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            assert_eq!(r.unit_only.strided_allocations, 0, "{}", r.name);
        }
        assert!(result.row("fftpde").unwrap().strided.strided_allocations > 0);
    }
}
