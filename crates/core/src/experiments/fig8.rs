//! Figure 8 — performance of the non-unit-stride detection scheme.
//!
//! Ten streams, a 16-entry unit-stride filter backed by a 16-entry czone
//! filter (the paper's configuration). The driver compares unit-only
//! (filtered) streams against the full constant-stride configuration.
//! Paper anchors: fftpde 26 %→71 %, appsp 33 %→65 %, trfd 50 %→65 %,
//! "gains in other benchmarks are minor".

use std::fmt;

use streamsim_streams::{StreamConfig, StreamStats};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::report::TextTable;
use crate::{paper, run_streams};

/// Czone size (bits of the word address) used when a benchmark has no
/// tuned value: large enough for plane-sized strides, small enough to
/// keep distinct arrays in distinct partitions.
pub const DEFAULT_CZONE_BITS: u32 = 16;

/// One benchmark's unit-only vs constant-stride comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Unit-stride-only streams (16-entry filter).
    pub unit_only: StreamStats,
    /// Unit filter backed by the czone filter.
    pub strided: StreamStats,
}

/// Results of the Figure 8 reproduction.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
    /// The czone size used.
    pub czone_bits: u32,
}

impl Fig8 {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment with the default czone size.
pub fn run(options: &ExperimentOptions) -> Fig8 {
    run_with_czone(options, DEFAULT_CZONE_BITS)
}

/// Runs the experiment with an explicit czone size.
pub fn run_with_czone(options: &ExperimentOptions, czone_bits: u32) -> Fig8 {
    let rows = miss_traces(options)
        .into_iter()
        .map(|(name, trace)| Row {
            name,
            unit_only: run_streams(&trace, StreamConfig::paper_filtered(10).expect("valid")),
            strided: run_streams(
                &trace,
                StreamConfig::paper_strided(10, czone_bits).expect("valid"),
            ),
        })
        .collect();
    Fig8 { rows, czone_bits }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: non-unit-stride detection (10 streams, 16-entry filters, czone {} bits)",
            self.czone_bits
        )?;
        let mut t = TextTable::new(vec![
            "bench",
            "unit-only %",
            "w/ strides %",
            "paper unit %",
            "paper strided %",
        ]);
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            t.row(vec![
                r.name.clone(),
                format!("{:.0}", r.unit_only.hit_rate() * 100.0),
                format!("{:.0}", r.strided.hit_rate() * 100.0),
                p.map_or(String::new(), |p| format!("~{:.0}", p.hit_filtered_pct)),
                p.map_or(String::new(), |p| format!("~{:.0}", p.hit_strided_pct)),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_detection_lifts_strided_benchmarks() {
        let result = run(&ExperimentOptions::quick());
        for name in ["fftpde", "trfd"] {
            let r = result.row(name).unwrap();
            assert!(
                r.strided.hit_rate() > r.unit_only.hit_rate() + 0.1,
                "{name}: {} -> {}",
                r.unit_only.hit_rate(),
                r.strided.hit_rate()
            );
        }
    }

    #[test]
    fn gains_are_minor_for_sequential_codes() {
        let result = run(&ExperimentOptions::quick());
        let r = result.row("embar").unwrap();
        assert!(
            (r.strided.hit_rate() - r.unit_only.hit_rate()).abs() < 0.15,
            "embar should barely change: {} -> {}",
            r.unit_only.hit_rate(),
            r.strided.hit_rate()
        );
    }

    #[test]
    fn strided_allocations_happen_only_with_the_czone_filter() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            assert_eq!(r.unit_only.strided_allocations, 0, "{}", r.name);
        }
        assert!(result.row("fftpde").unwrap().strided.strided_allocations > 0);
    }
}
