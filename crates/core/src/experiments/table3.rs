//! Table 3 — distribution of stream lengths.
//!
//! With ten unfiltered streams, each (re)allocation closes a *run*; the
//! run's length is the number of hits the stream supplied. Table 3
//! reports, per benchmark, the percentage of all hits contributed by runs
//! in each length bucket. The distribution explains Figure 5: programs
//! with many short runs (appbt) lose hits to the filter's two-miss
//! verification cost.

use std::fmt;

use streamsim_streams::{LengthBucket, LengthHistogram, StreamConfig};

use crate::experiments::{miss_traces, ExperimentOptions};
use crate::sink::{col, Artifact, ArtifactSink, Cell};
use crate::{paper, run_streams};

/// One benchmark's length distribution.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// The measured histogram (10 streams, no filter).
    pub lengths: LengthHistogram,
}

/// Results of the Table 3 reproduction.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Row>,
}

impl Table3 {
    /// The row for one benchmark.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the experiment.
pub fn run(options: &ExperimentOptions) -> Table3 {
    let rows = miss_traces(options)
        .into_iter()
        .map(|(name, trace)| Row {
            name,
            lengths: run_streams(&trace, StreamConfig::paper_basic(10).expect("valid")).lengths,
        })
        .collect();
    Table3 { rows }
}

impl Artifact for Table3 {
    fn artifact(&self) -> &'static str {
        "table3"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        let mut columns = vec![col("bench", "bench")];
        columns.extend(LengthBucket::ALL.iter().map(|b| {
            let label = b.to_string();
            let key = format!(
                "len_{}_pct",
                label.replace('-', "_").replace('>', "over_").to_lowercase()
            );
            col(label, key)
        }));
        columns.push(col("paper 1-5", "paper_len_1_5_pct"));
        columns.push(col("paper >20", "paper_len_over_20_pct"));
        sink.begin_table(
            self.artifact(),
            "length_distribution",
            "Table 3: stream-length distribution, % of hits per bucket (10 streams)",
            &columns,
        );
        for r in &self.rows {
            let p = paper::benchmark(&r.name);
            let fractions = r.lengths.hit_fractions();
            let mut cells = vec![Cell::text(r.name.clone())];
            cells.extend(
                fractions
                    .iter()
                    .map(|x| Cell::num(x * 100.0, format!("{:.0}", x * 100.0))),
            );
            cells.push(p.map_or(Cell::text(""), |p| {
                Cell::num(p.len_1_5_pct, format!("{:.0}", p.len_1_5_pct))
            }));
            cells.push(p.map_or(Cell::text(""), |p| {
                Cell::num(p.len_over_20_pct, format!("{:.0}", p.len_over_20_pct))
            }));
            sink.row(&cells);
        }
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_hits_exist() {
        let result = run(&ExperimentOptions::quick());
        for r in &result.rows {
            if r.lengths.total_hits() > 0 {
                let sum: f64 = r.lengths.hit_fractions().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", r.name);
            }
        }
    }

    #[test]
    fn sequential_codes_have_long_runs() {
        let result = run(&ExperimentOptions::quick());
        let embar = result.row("embar").unwrap();
        let long = embar.lengths.hit_fractions()[LengthBucket::Over20.as_index()];
        assert!(long > 0.5, "embar long-run fraction {long}");
    }

    #[test]
    fn irregular_codes_have_short_runs() {
        let result = run(&ExperimentOptions::quick());
        let adm = result.row("adm").unwrap();
        let embar = result.row("embar").unwrap();
        let adm_short = adm.lengths.hit_fractions()[LengthBucket::B1to5.as_index()];
        let embar_short = embar.lengths.hit_fractions()[LengthBucket::B1to5.as_index()];
        assert!(
            adm_short > embar_short,
            "adm short {adm_short} vs embar {embar_short}"
        );
    }
}
