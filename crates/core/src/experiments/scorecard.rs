//! Reproduction scorecard — machine-checked paper-vs-measured verdicts.
//!
//! EXPERIMENTS.md narrates how close each result lands; this driver makes
//! the comparison executable. For every benchmark and headline metric it
//! computes the measured value, compares against the paper's reported
//! value, and grades the cell:
//!
//! * **match** — within the tight tolerance (hit rates ±10 points, EB
//!   ±25 points; paper figure values are themselves only accurate to a
//!   few points);
//! * **close** — within twice the tolerance;
//! * **off** — beyond that (listed explicitly so deviations cannot hide).
//!
//! The aggregate counts at the bottom are the reproduction's one-line
//! summary.

use std::fmt;

use streamsim_streams::StreamConfig;

use crate::experiments::{fig9, miss_traces, table4, ExperimentOptions};
use crate::paper;
use crate::replay_streams;
use crate::sink::{col, Artifact, ArtifactSink, Cell as SinkCell};

/// Tolerance for hit-rate comparisons, in percentage points.
pub const HIT_TOLERANCE: f64 = 10.0;
/// Tolerance for extra-bandwidth comparisons, in percentage points.
pub const EB_TOLERANCE: f64 = 25.0;

/// Verdict for one (benchmark, metric) cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Match,
    /// Within twice the tolerance.
    Close,
    /// Beyond twice the tolerance.
    Off,
}

impl Verdict {
    fn grade(measured: f64, reported: f64, tolerance: f64) -> Verdict {
        let delta = (measured - reported).abs();
        if delta <= tolerance {
            Verdict::Match
        } else if delta <= 2.0 * tolerance {
            Verdict::Close
        } else {
            Verdict::Off
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Match => f.write_str("match"),
            Verdict::Close => f.write_str("close"),
            Verdict::Off => f.write_str("OFF"),
        }
    }
}

/// One graded cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Benchmark name.
    pub bench: String,
    /// Metric name.
    pub metric: &'static str,
    /// Measured value (percent).
    pub measured: f64,
    /// Paper value (percent).
    pub reported: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// A structural claim of the paper, checked as a boolean.
#[derive(Clone, Debug)]
pub struct Claim {
    /// What the paper asserts.
    pub claim: &'static str,
    /// Whether the reproduction exhibits it.
    pub holds: bool,
}

/// Results of the scorecard.
#[derive(Clone, Debug)]
pub struct Scorecard {
    /// All graded cells.
    pub cells: Vec<Cell>,
    /// The paper's structural claims, checked.
    pub claims: Vec<Claim>,
}

impl Scorecard {
    /// Counts of (match, close, off).
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in &self.cells {
            match c.verdict {
                Verdict::Match => t.0 += 1,
                Verdict::Close => t.1 += 1,
                Verdict::Off => t.2 += 1,
            }
        }
        t
    }

    /// Fraction of cells graded `match` or `close`.
    pub fn agreement(&self) -> f64 {
        let (m, c, _) = self.tally();
        (m + c) as f64 / self.cells.len().max(1) as f64
    }
}

/// Runs the scorecard: four metrics per benchmark against the paper.
///
/// The three stream configurations share one replay pass per benchmark,
/// and the nested Figure 9 / Table 4 runs reuse the same [`TraceStore`]
/// as this driver (via the shared options), so no L1 is simulated twice.
///
/// [`TraceStore`]: crate::TraceStore
pub fn run(options: &ExperimentOptions) -> Scorecard {
    let configs = [
        StreamConfig::paper_basic(10).expect("valid"),
        StreamConfig::paper_filtered(10).expect("valid"),
        StreamConfig::paper_strided(10, 16).expect("valid"),
    ];
    let mut cells = Vec::new();
    for (name, trace) in miss_traces(options) {
        let Some(p) = paper::benchmark(&name) else {
            continue;
        };
        let mut stats = replay_streams(&trace, &configs).into_iter();
        let basic = stats.next().expect("three configs");
        let filtered = stats.next().expect("three configs");
        let strided = stats.next().expect("three configs");

        let mut grade = |metric, measured: f64, reported: f64, tol| {
            cells.push(Cell {
                bench: name.clone(),
                metric,
                measured,
                reported,
                verdict: Verdict::grade(measured, reported, tol),
            });
        };
        grade(
            "hit (10 streams)",
            basic.hit_rate() * 100.0,
            p.hit_basic_pct,
            HIT_TOLERANCE,
        );
        grade(
            "hit (filtered)",
            filtered.hit_rate() * 100.0,
            p.hit_filtered_pct,
            HIT_TOLERANCE,
        );
        grade(
            "hit (strided)",
            strided.hit_rate() * 100.0,
            p.hit_strided_pct,
            HIT_TOLERANCE,
        );
        grade(
            "EB (no filter)",
            basic.extra_bandwidth() * 100.0,
            p.eb_basic_pct,
            EB_TOLERANCE,
        );
    }

    // Structural claims: the Figure 9 window and the Table 4 scaling.
    let mut claims = Vec::new();
    let f9 = fig9::run(options);
    if let Some(fftpde) = f9.row("fftpde") {
        let inside = fftpde.hit_at(18).unwrap_or(0.0);
        let below = fftpde.hit_at(10).unwrap_or(1.0);
        let above = fftpde.hit_at(26).unwrap_or(1.0);
        claims.push(Claim {
            claim: "fftpde czone detection works in a bounded window (Fig 9)",
            holds: inside > below + 0.1 && inside > above + 0.1,
        });
    }
    let t4 = table4::run(options);
    let mut grows = 0;
    let mut pairs = 0;
    for (name, _, _) in crate::experiments::table4_pairs(options.scale) {
        if name == "cgm" {
            continue; // the anomaly, checked separately
        }
        if let Some((small, large)) = t4.pair(name) {
            pairs += 1;
            let s = small.min_l2_bytes.unwrap_or(u64::MAX);
            let l = large.min_l2_bytes.unwrap_or(u64::MAX);
            if l >= s {
                grows += 1;
            }
        }
    }
    claims.push(Claim {
        claim: "equivalent L2 grows with the data set for regular codes (Table 4)",
        holds: pairs > 0 && grows == pairs,
    });
    if let Some((cgm_small, cgm_large)) = t4.pair("cgm") {
        claims.push(Claim {
            claim: "the cgm anomaly: larger input, lower stream hit rate (Table 4)",
            holds: cgm_large.stream_hit < cgm_small.stream_hit,
        });
    }

    Scorecard { cells, claims }
}

impl Artifact for Scorecard {
    fn artifact(&self) -> &'static str {
        "scorecard"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "verdicts",
            &format!(
                "Reproduction scorecard (hit ±{HIT_TOLERANCE} pts = match, EB ±{EB_TOLERANCE} pts)"
            ),
            &[
                col("bench", "bench"),
                col("metric", "metric"),
                col("measured", "measured"),
                col("paper", "reported"),
                col("verdict", "verdict"),
            ],
        );
        for c in &self.cells {
            sink.row(&[
                SinkCell::text(c.bench.clone()),
                SinkCell::text(c.metric),
                SinkCell::num(c.measured, format!("{:.0}", c.measured)),
                SinkCell::num(c.reported, format!("{:.0}", c.reported)),
                SinkCell::text(c.verdict.to_string()),
            ]);
        }
        sink.begin_table(
            self.artifact(),
            "claims",
            "structural claims:",
            &[col("verdict", "holds"), col("claim", "claim")],
        );
        for c in &self.claims {
            sink.row(&[
                SinkCell::text(if c.holds { "[HOLDS]" } else { "[FAILS]" }),
                SinkCell::text(c.claim),
            ]);
        }
        let (m, close, off) = self.tally();
        sink.note(&format!(
            "tally: {m} match, {close} close, {off} off ({:.0}% agreement)",
            self.agreement() * 100.0
        ));
    }
}

impl fmt::Display for Scorecard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grading_boundaries() {
        assert_eq!(Verdict::grade(50.0, 55.0, 10.0), Verdict::Match);
        assert_eq!(Verdict::grade(50.0, 65.0, 10.0), Verdict::Close);
        assert_eq!(Verdict::grade(50.0, 75.0, 10.0), Verdict::Off);
    }

    #[test]
    fn quick_scorecard_covers_all_benchmarks() {
        let card = run(&ExperimentOptions::quick());
        assert_eq!(card.cells.len(), 15 * 4);
        let (m, c, o) = card.tally();
        assert_eq!(m + c + o, card.cells.len());
        // The quick-scale runs deviate more than paper scale, but the
        // broad agreement must hold even there.
        assert!(
            card.agreement() > 0.5,
            "agreement {:.2} too low",
            card.agreement()
        );
    }

    #[test]
    fn display_includes_the_tally() {
        let card = run(&ExperimentOptions::quick());
        let text = card.to_string();
        assert!(text.contains("tally:"), "{text}");
        assert!(text.contains("agreement"), "{text}");
        assert!(text.contains("structural claims:"), "{text}");
    }

    #[test]
    fn structural_claims_hold_at_quick_scale() {
        let card = run(&ExperimentOptions::quick());
        assert!(!card.claims.is_empty());
        for c in &card.claims {
            assert!(c.holds, "claim failed: {}", c.claim);
        }
    }
}
