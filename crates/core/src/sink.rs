//! Structured experiment output: one emission, two renderings.
//!
//! Every experiment driver describes its results once — tables of typed
//! cells plus free-form notes — through an [`ArtifactSink`]. The sink
//! decides the rendering: [`TextSink`] reproduces the aligned
//! [`TextTable`](crate::report::TextTable) output the drivers always
//! printed, [`JsonLinesSink`] emits one JSON object per data row
//! (extending the convention the `streamsim-bench` timing harness set),
//! and [`MultiSink`] fans one emission out to both. A driver's result
//! type implements [`Artifact`]; its `Display` impl is just
//! [`render_text`].
//!
//! The JSONL schema is flat by design: every line carries `artifact` and
//! `table` keys naming its origin, then one key per column. Text cells
//! keep their human formatting; numeric cells carry the *unrounded*
//! value, so downstream diffing (`streamsim-report --diff`) compares real
//! numbers, not prints. [`parse_flat_json_line`] reads the format back.

use std::fmt::Write as _;

use crate::report::TextTable;

/// The machine-readable value of a table cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A label or other non-numeric content.
    Text(String),
    /// A real number (emitted unrounded to JSON).
    Num(f64),
    /// An integer (exact in JSON).
    Int(i64),
}

/// One table cell: human text plus the machine value behind it.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// What the text rendering shows (e.g. `"78.0"` or `"64 KB"`).
    pub text: String,
    /// What the JSON rendering records (e.g. `77.9583`).
    pub value: Value,
}

impl Cell {
    /// A text cell; the value is the text itself.
    pub fn text(text: impl Into<String>) -> Self {
        let text = text.into();
        Cell {
            value: Value::Text(text.clone()),
            text,
        }
    }

    /// A numeric cell: `text` is the rounded human rendering, `value`
    /// the full-precision number.
    pub fn num(value: f64, text: impl Into<String>) -> Self {
        Cell {
            text: text.into(),
            value: Value::Num(value),
        }
    }

    /// An integer cell.
    pub fn int(value: i64, text: impl Into<String>) -> Self {
        Cell {
            text: text.into(),
            value: Value::Int(value),
        }
    }
}

/// A table column: display header plus the JSON key it maps to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Header shown by the text rendering (e.g. `"hit %"`).
    pub header: String,
    /// Key used by the JSON rendering (e.g. `"hit_pct"`).
    pub key: String,
}

/// Shorthand [`Column`] constructor.
pub fn col(header: impl Into<String>, key: impl Into<String>) -> Column {
    Column {
        header: header.into(),
        key: key.into(),
    }
}

/// Receives a driver's structured output.
///
/// Call order per table: one `begin_table`, then its `row`s. `note`
/// carries free-form text (preambles, chart sketches, paper commentary)
/// and implicitly closes any open table.
pub trait ArtifactSink {
    /// Starts a table belonging to `artifact` (driver name, e.g.
    /// `"fig3"`), identified as `table` within it, with a human title.
    fn begin_table(&mut self, artifact: &str, table: &str, title: &str, columns: &[Column]);

    /// One data row of the current table. Cells beyond the declared
    /// columns are allowed (the text table grows; JSON keys them `c<i>`).
    fn row(&mut self, cells: &[Cell]);

    /// Free-form text outside any table (may span lines).
    fn note(&mut self, text: &str);
}

/// A result type that can describe itself to an [`ArtifactSink`].
pub trait Artifact {
    /// The driver name used as the `artifact` JSON key (e.g. `"fig3"`).
    fn artifact(&self) -> &'static str;

    /// Emits every table and note of this result.
    fn emit(&self, sink: &mut dyn ArtifactSink);
}

/// Renders an artifact the way the drivers' `Display` impls always have.
pub fn render_text(artifact: &dyn Artifact) -> String {
    let mut sink = TextSink::new();
    artifact.emit(&mut sink);
    sink.into_string()
}

/// Renders an artifact as JSON lines (one per data row).
pub fn render_json_lines(artifact: &dyn Artifact) -> Vec<String> {
    let mut sink = JsonLinesSink::new();
    artifact.emit(&mut sink);
    sink.into_lines()
}

/// Renders tables as titles plus aligned [`TextTable`]s, notes verbatim.
#[derive(Debug, Default)]
pub struct TextSink {
    out: String,
    pending: Option<TextTable>,
}

impl TextSink {
    /// An empty sink.
    pub fn new() -> Self {
        TextSink::default()
    }

    fn flush(&mut self) {
        if let Some(table) = self.pending.take() {
            let _ = write!(self.out, "{table}");
        }
    }

    /// The accumulated text.
    pub fn into_string(mut self) -> String {
        self.flush();
        self.out
    }
}

impl ArtifactSink for TextSink {
    fn begin_table(&mut self, _artifact: &str, _table: &str, title: &str, columns: &[Column]) {
        self.flush();
        if !title.is_empty() {
            let _ = writeln!(self.out, "{title}");
        }
        self.pending = Some(TextTable::new(
            columns.iter().map(|c| c.header.clone()).collect(),
        ));
    }

    fn row(&mut self, cells: &[Cell]) {
        if let Some(table) = self.pending.as_mut() {
            table.row(cells.iter().map(|c| c.text.clone()).collect());
        }
    }

    fn note(&mut self, text: &str) {
        self.flush();
        let _ = writeln!(self.out, "{text}");
    }
}

/// Renders each data row as one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonLinesSink {
    lines: Vec<String>,
    artifact: String,
    table: String,
    keys: Vec<String>,
    stamp: Vec<(String, Value)>,
}

impl JsonLinesSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonLinesSink::default()
    }

    /// A sink that appends `stamp` key/value pairs to every row — run
    /// provenance (`run_seed`, `run_config`, ...) that identifies where
    /// a row came from. `streamsim-report --diff` ignores `run_`-prefixed
    /// keys, so stamps never register as drift.
    pub fn with_stamp(stamp: Vec<(String, Value)>) -> Self {
        JsonLinesSink {
            stamp,
            ..JsonLinesSink::default()
        }
    }

    /// The accumulated JSON lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the sink, returning its JSON lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

impl ArtifactSink for JsonLinesSink {
    fn begin_table(&mut self, artifact: &str, table: &str, _title: &str, columns: &[Column]) {
        self.artifact = artifact.to_owned();
        self.table = table.to_owned();
        self.keys = columns.iter().map(|c| c.key.clone()).collect();
    }

    fn row(&mut self, cells: &[Cell]) {
        let mut line = String::from("{");
        let _ = write!(
            line,
            "\"artifact\":{},\"table\":{}",
            json_string(&self.artifact),
            json_string(&self.table)
        );
        for (i, cell) in cells.iter().enumerate() {
            let fallback;
            let key = match self.keys.get(i) {
                Some(k) => k,
                None => {
                    fallback = format!("c{i}");
                    &fallback
                }
            };
            let _ = write!(line, ",{}:", json_string(key));
            match &cell.value {
                Value::Text(s) => line.push_str(&json_string(s)),
                Value::Num(n) => line.push_str(&json_number(*n)),
                Value::Int(n) => {
                    let _ = write!(line, "{n}");
                }
            }
        }
        for (key, value) in &self.stamp {
            let _ = write!(line, ",{}:", json_string(key));
            match value {
                Value::Text(s) => line.push_str(&json_string(s)),
                Value::Num(n) => line.push_str(&json_number(*n)),
                Value::Int(n) => {
                    let _ = write!(line, "{n}");
                }
            }
        }
        line.push('}');
        self.lines.push(line);
    }

    fn note(&mut self, _text: &str) {}
}

/// Forwards every call to each wrapped sink.
#[derive(Debug, Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn ArtifactSink>,
}

impl std::fmt::Debug for dyn ArtifactSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ArtifactSink")
    }
}

impl<'a> MultiSink<'a> {
    /// Fans one emission out to all of `sinks`.
    pub fn new(sinks: Vec<&'a mut dyn ArtifactSink>) -> Self {
        MultiSink { sinks }
    }
}

impl ArtifactSink for MultiSink<'_> {
    fn begin_table(&mut self, artifact: &str, table: &str, title: &str, columns: &[Column]) {
        for s in &mut self.sinks {
            s.begin_table(artifact, table, title, columns);
        }
    }

    fn row(&mut self, cells: &[Cell]) {
        for s in &mut self.sinks {
            s.row(cells);
        }
    }

    fn note(&mut self, text: &str) {
        for s in &mut self.sinks {
            s.note(text);
        }
    }
}

/// A fail-stop wrapper that models a faulty artifact consumer.
///
/// Every `row` is first offered to a *gate* with its global row index
/// (counted across tables); if the gate returns `Err`, the error is
/// recorded, the row is dropped, and the sink goes quiet — no later
/// call reaches the inner sink, so the inner artifact is always a clean
/// prefix of the intended output rather than a torn one. This is the
/// DST seam for `ArtifactSink` flushing: tests feed
/// `FaultContext::sink_write` as the gate and assert the prefix
/// property under every interleaving.
pub struct GuardedSink<'a> {
    inner: &'a mut dyn ArtifactSink,
    gate: Box<dyn FnMut(usize) -> Result<(), String> + 'a>,
    rows: usize,
    error: Option<String>,
}

impl std::fmt::Debug for GuardedSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedSink")
            .field("rows", &self.rows)
            .field("error", &self.error)
            .finish()
    }
}

impl<'a> GuardedSink<'a> {
    /// Wraps `inner`, consulting `gate` before each row write.
    pub fn new(
        inner: &'a mut dyn ArtifactSink,
        gate: impl FnMut(usize) -> Result<(), String> + 'a,
    ) -> Self {
        GuardedSink {
            inner,
            gate: Box::new(gate),
            rows: 0,
            error: None,
        }
    }

    /// Rows successfully forwarded to the inner sink.
    pub fn rows_written(&self) -> usize {
        self.rows
    }

    /// The recorded write failure, if the gate ever refused a row.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }
}

impl ArtifactSink for GuardedSink<'_> {
    fn begin_table(&mut self, artifact: &str, table: &str, title: &str, columns: &[Column]) {
        if self.error.is_none() {
            self.inner.begin_table(artifact, table, title, columns);
        }
    }

    fn row(&mut self, cells: &[Cell]) {
        if self.error.is_some() {
            return;
        }
        match (self.gate)(self.rows) {
            Ok(()) => {
                self.inner.row(cells);
                self.rows += 1;
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn note(&mut self, text: &str) {
        if self.error.is_none() {
            self.inner.note(text);
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for non-finite values).
fn json_number(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else {
        "null".to_owned()
    }
}

/// A value read back from a flat JSON line.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Text(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

/// Parses one flat JSON object line (string/number/bool/null values, no
/// nesting) into key/value pairs in file order.
///
/// This covers exactly what [`JsonLinesSink`] and the bench timing
/// harness write; it is not a general JSON parser.
///
/// # Errors
///
/// Returns a description of the first syntax problem encountered.
pub fn parse_flat_json_line(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 sequence (input is a &str, so
                    // the bytes are valid).
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Text(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected literal {word}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo;

    impl Artifact for Demo {
        fn artifact(&self) -> &'static str {
            "demo"
        }

        fn emit(&self, sink: &mut dyn ArtifactSink) {
            sink.begin_table(
                self.artifact(),
                "hit_rate",
                "Demo: hit rate",
                &[col("bench", "bench"), col("hit %", "hit_pct")],
            );
            sink.row(&[Cell::text("mgrid"), Cell::num(77.95831, "78.0")]);
            sink.row(&[Cell::text("adm"), Cell::num(4.25, "4.2")]);
            sink.note("a closing remark");
        }
    }

    #[test]
    fn text_rendering_has_title_table_and_note() {
        let text = render_text(&Demo);
        assert!(text.starts_with("Demo: hit rate\n"), "{text}");
        assert!(text.contains("bench"));
        assert!(text.contains("78.0"));
        assert!(text.ends_with("a closing remark\n"), "{text}");
    }

    #[test]
    fn json_rendering_is_one_line_per_row() {
        let lines = render_json_lines(&Demo);
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"artifact\":\"demo\",\"table\":\"hit_rate\",\"bench\":\"mgrid\",\"hit_pct\":77.95831}"
        );
        assert_eq!(
            lines[1],
            "{\"artifact\":\"demo\",\"table\":\"hit_rate\",\"bench\":\"adm\",\"hit_pct\":4.25}"
        );
    }

    #[test]
    fn multi_sink_feeds_both_renderings() {
        let mut text = TextSink::new();
        let mut json = JsonLinesSink::new();
        {
            let mut both = MultiSink::new(vec![&mut text, &mut json]);
            Demo.emit(&mut both);
        }
        assert!(text.into_string().contains("mgrid"));
        assert_eq!(json.lines().len(), 2);
    }

    #[test]
    fn json_lines_round_trip_through_the_parser() {
        for line in render_json_lines(&Demo) {
            let pairs = parse_flat_json_line(&line).unwrap();
            assert_eq!(pairs[0].0, "artifact");
            assert_eq!(pairs[0].1, JsonValue::Text("demo".into()));
            assert!(matches!(pairs[3].1, JsonValue::Num(_)));
        }
    }

    #[test]
    fn stamped_sink_appends_provenance_to_every_row() {
        let mut sink = JsonLinesSink::with_stamp(vec![
            ("run_seed".to_owned(), Value::Int(7)),
            ("run_config".to_owned(), Value::Text("00ff".to_owned())),
        ]);
        Demo.emit(&mut sink);
        for line in sink.lines() {
            assert!(
                line.ends_with(",\"run_seed\":7,\"run_config\":\"00ff\"}"),
                "{line}"
            );
            parse_flat_json_line(line).expect("stamped line stays valid JSON");
        }
    }

    #[test]
    fn extra_cells_get_positional_keys() {
        let mut sink = JsonLinesSink::new();
        sink.begin_table("demo", "t", "", &[col("a", "a")]);
        sink.row(&[Cell::int(1, "1"), Cell::int(2, "2")]);
        assert_eq!(
            sink.lines()[0],
            "{\"artifact\":\"demo\",\"table\":\"t\",\"a\":1,\"c1\":2}"
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "he said \"hi\\there\"\nnew\tline\u{1}";
        let quoted = json_string(s);
        let line = format!("{{\"k\":{quoted}}}");
        let pairs = parse_flat_json_line(&line).unwrap();
        assert_eq!(pairs[0].1, JsonValue::Text(s.to_owned()));
    }

    #[test]
    fn parser_handles_all_value_kinds() {
        let pairs = parse_flat_json_line(
            "{\"s\":\"x\",\"n\":-1.5e3,\"i\":42,\"b\":true,\"f\":false,\"z\":null}",
        )
        .unwrap();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[1].1, JsonValue::Num(-1500.0));
        assert_eq!(pairs[2].1, JsonValue::Num(42.0));
        assert_eq!(pairs[3].1, JsonValue::Bool(true));
        assert_eq!(pairs[5].1, JsonValue::Null);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_json_line("").is_err());
        assert!(parse_flat_json_line("{\"a\":}").is_err());
        assert!(parse_flat_json_line("{\"a\":1} extra").is_err());
        assert!(parse_flat_json_line("{\"a\" 1}").is_err());
        assert!(parse_flat_json_line("{\"a\":1").is_err());
    }

    #[test]
    fn unicode_survives_the_round_trip() {
        let line = "{\"k\":\"café ≤ 3\"}";
        let pairs = parse_flat_json_line(line).unwrap();
        assert_eq!(pairs[0].1, JsonValue::Text("café ≤ 3".into()));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(2.5), "2.5");
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat_json_line("{}").unwrap(), vec![]);
    }

    #[test]
    fn guarded_sink_with_open_gate_is_transparent() {
        let mut guarded_json = JsonLinesSink::new();
        {
            let mut guarded = GuardedSink::new(&mut guarded_json, |_| Ok(()));
            Demo.emit(&mut guarded);
            assert_eq!(guarded.rows_written(), 2);
            assert_eq!(guarded.error(), None);
        }
        assert_eq!(guarded_json.lines(), render_json_lines(&Demo).as_slice());
    }

    #[test]
    fn guarded_sink_failure_is_fail_stop_with_a_clean_prefix() {
        let mut json = JsonLinesSink::new();
        {
            let mut guarded = GuardedSink::new(&mut json, |row| {
                if row == 1 {
                    Err("disk full".into())
                } else {
                    Ok(())
                }
            });
            Demo.emit(&mut guarded);
            assert_eq!(guarded.rows_written(), 1);
            assert_eq!(guarded.error(), Some("disk full"));
            // A second table after the failure must not reopen the sink.
            guarded.begin_table("demo", "late", "too late", &[col("x", "x")]);
            guarded.row(&[Cell::text("nope")]);
            guarded.note("never lands");
        }
        // Exactly the rows before the failure — a prefix, never a tear.
        let reference = render_json_lines(&Demo);
        assert_eq!(json.lines(), &reference[..1]);
    }
}
