//! Single-pass replay of a miss trace into many observers.
//!
//! The paper sweeps configurations, not workloads: ten stream counts,
//! dozens of secondary-cache geometries, all judged against the *same*
//! recorded miss stream. Replaying that stream once per configuration
//! walks the event vector N times; [`replay`] instead walks it once and
//! fans each event out to N [`MissObserver`]s. Observers are independent
//! (a stream system cannot see an L2's state), so the fan-out is
//! behaviour-preserving by construction — the property tests in
//! `tests/replay_properties.rs` pin this down.
//!
//! Two observers cover the common cases: [`StreamObserver`] wraps a
//! [`StreamSystem`], [`L2Observer`] wraps a [`SetAssocCache`]. Drivers
//! with bespoke plumbing (e.g. the Jouppi topology, where a secondary
//! cache sees only the stream-miss residual) implement [`MissObserver`]
//! themselves and join the same pass.

// lint:hot-module — the replay loop touches every recorded miss event per observer

use streamsim_cache::{CacheConfig, CacheConfigError, CacheStats, SetAssocCache, SetSampling};
use streamsim_streams::{StreamConfig, StreamStats, StreamSystem};
use streamsim_trace::{AccessKind, Addr};

use crate::{MissEvent, MissTrace};

/// Anything that consumes a primary-cache miss stream.
///
/// [`replay`] delivers every event of a [`MissTrace`] to each observer in
/// program order, then calls [`finish`](MissObserver::finish) once.
pub trait MissObserver {
    /// A demand fetch (primary-cache miss) of the block containing
    /// `addr`; `kind` is the missing reference's access kind.
    fn on_fetch(&mut self, addr: Addr, kind: AccessKind);

    /// A dirty block written back from the primary cache; `base` is the
    /// block's base byte address.
    fn on_writeback(&mut self, base: Addr);

    /// Called once after the last event (e.g. to flush in-flight state).
    fn finish(&mut self) {}
}

/// Replays `trace` into every observer in a single pass over the events.
pub fn replay(trace: &MissTrace, observers: &mut [&mut dyn MissObserver]) {
    let mut span = streamsim_obs::span("replay");
    let events = trace.events().len() as u64;
    streamsim_obs::count(streamsim_obs::Counter::ReplayMissEvents, events);
    // Items = event deliveries: each event fans out to every observer,
    // so the span's throughput reads as miss-events/s per observer when
    // divided by the observer count.
    span.items(events * observers.len() as u64);
    for event in trace.events() {
        match *event {
            MissEvent::Fetch { addr, kind } => {
                for o in observers.iter_mut() {
                    o.on_fetch(addr, kind);
                }
            }
            MissEvent::Writeback { base } => {
                for o in observers.iter_mut() {
                    o.on_writeback(base);
                }
            }
        }
    }
    for o in observers.iter_mut() {
        o.finish();
    }
}

/// [`replay`] with batched delivery: the event vector is walked in
/// chunks of `chunk_len` events, and within each chunk every observer
/// consumes the whole batch before the next observer runs.
///
/// Because observers are independent, this is behaviour-preserving for
/// any chunk length — `tests/replay_properties.rs` sweeps boundaries to
/// pin exactly that. It exists as the groundwork for the replay-loop
/// batching rewrite (ROADMAP): per-chunk delivery keeps one observer's
/// state hot in cache across a run of events instead of touching every
/// observer per event. A `chunk_len` of `0` delivers the whole trace as
/// one chunk.
pub fn replay_chunked(
    trace: &MissTrace,
    observers: &mut [&mut dyn MissObserver],
    chunk_len: usize,
) {
    let mut span = streamsim_obs::span("replay");
    let events = trace.events().len() as u64;
    streamsim_obs::count(streamsim_obs::Counter::ReplayMissEvents, events);
    span.items(events * observers.len() as u64);
    let chunk_len = if chunk_len == 0 {
        trace.events().len().max(1)
    } else {
        chunk_len
    };
    for chunk in trace.events().chunks(chunk_len) {
        for o in observers.iter_mut() {
            for event in chunk {
                match *event {
                    MissEvent::Fetch { addr, kind } => o.on_fetch(addr, kind),
                    MissEvent::Writeback { base } => o.on_writeback(base),
                }
            }
        }
    }
    for o in observers.iter_mut() {
        o.finish();
    }
}

/// A stream-buffer system as a replay observer.
#[derive(Debug)]
pub struct StreamObserver {
    sys: StreamSystem,
}

impl StreamObserver {
    /// Wraps a fresh [`StreamSystem`] of the given configuration,
    /// charging internal-event counts to the global observability set.
    pub fn new(config: StreamConfig) -> Self {
        Self::with_counters(config, streamsim_obs::Counters::global())
    }

    /// Like [`StreamObserver::new`], but charging allocation and filter
    /// counts to `counters`. With a [scoped](streamsim_obs::Counters::scoped)
    /// handle per observer, one replay pass attributes stream-buffer
    /// churn to each configuration cell individually instead of summing
    /// the whole sweep into the process-global set.
    pub fn with_counters(config: StreamConfig, counters: streamsim_obs::Counters) -> Self {
        StreamObserver {
            sys: StreamSystem::with_counters(config, counters),
        }
    }

    /// The counter set this observer charges (scoped or global).
    pub fn counters(&self) -> &streamsim_obs::Counters {
        self.sys.counters()
    }

    /// The finalized statistics (call after [`replay`]).
    pub fn stats(&self) -> StreamStats {
        self.sys.stats()
    }
}

impl MissObserver for StreamObserver {
    fn on_fetch(&mut self, addr: Addr, _kind: AccessKind) {
        self.sys.on_l1_miss(addr);
    }

    fn on_writeback(&mut self, base: Addr) {
        self.sys.on_writeback(base.block(self.sys.config().block()));
    }

    fn finish(&mut self) {
        self.sys.finalize();
    }
}

/// A secondary cache as a replay observer.
///
/// Fetches become demand accesses; a write-back from L1 is a store access
/// at the L2.
#[derive(Debug)]
pub struct L2Observer {
    cache: SetAssocCache,
    counters: streamsim_obs::Counters,
}

impl L2Observer {
    /// Wraps a fresh cache of the given geometry, charging probe counts
    /// to the global observability set.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the configuration or sampling is
    /// invalid.
    pub fn new(
        config: CacheConfig,
        sampling: Option<SetSampling>,
    ) -> Result<Self, CacheConfigError> {
        Self::with_counters(config, sampling, streamsim_obs::Counters::global())
    }

    /// Like [`L2Observer::new`], but charging probe counts to
    /// `counters` for per-cell attribution inside a shared replay pass.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the configuration or sampling is
    /// invalid.
    pub fn with_counters(
        config: CacheConfig,
        sampling: Option<SetSampling>,
        counters: streamsim_obs::Counters,
    ) -> Result<Self, CacheConfigError> {
        let cache = match sampling {
            Some(s) => SetAssocCache::with_sampling(config, s)?,
            None => SetAssocCache::new(config)?,
        };
        Ok(L2Observer { cache, counters })
    }

    /// The counter set this observer charges (scoped or global).
    pub fn counters(&self) -> &streamsim_obs::Counters {
        &self.counters
    }

    /// The cache statistics (call after [`replay`]).
    pub fn stats(&self) -> CacheStats {
        *self.cache.stats()
    }
}

impl MissObserver for L2Observer {
    fn on_fetch(&mut self, addr: Addr, kind: AccessKind) {
        self.counters.add(streamsim_obs::Counter::L2Probes, 1);
        self.cache.access(addr, kind);
    }

    fn on_writeback(&mut self, base: Addr) {
        self.counters.add(streamsim_obs::Counter::L2Probes, 1);
        self.cache.access(base, AccessKind::Store);
    }
}

/// Replays `trace` against every stream configuration in one pass.
///
/// Equivalent to N calls of [`crate::run_streams`], but the event vector
/// is walked once.
pub fn replay_streams(trace: &MissTrace, configs: &[StreamConfig]) -> Vec<StreamStats> {
    let mut observers: Vec<StreamObserver> =
        configs.iter().map(|&c| StreamObserver::new(c)).collect();
    {
        let mut refs: Vec<&mut dyn MissObserver> = observers
            .iter_mut()
            .map(|o| o as &mut dyn MissObserver)
            .collect();
        replay(trace, &mut refs);
    }
    observers.iter().map(StreamObserver::stats).collect()
}

/// Replays `trace` against every secondary-cache cell in one pass.
///
/// Equivalent to N calls of [`crate::run_l2`], but the event vector is
/// walked once.
///
/// # Errors
///
/// Returns [`CacheConfigError`] if any cell's configuration or sampling
/// is invalid.
pub fn replay_l2(
    trace: &MissTrace,
    cells: &[(CacheConfig, Option<SetSampling>)],
) -> Result<Vec<CacheStats>, CacheConfigError> {
    let mut observers = cells
        .iter()
        .map(|&(config, sampling)| L2Observer::new(config, sampling))
        .collect::<Result<Vec<_>, _>>()?;
    {
        let mut refs: Vec<&mut dyn MissObserver> = observers
            .iter_mut()
            .map(|o| o as &mut dyn MissObserver)
            .collect();
        replay(trace, &mut refs);
    }
    Ok(observers.iter().map(L2Observer::stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_miss_trace, run_l2, run_streams, RecordOptions};
    use streamsim_trace::BlockSize;
    use streamsim_workloads::generators::{RandomGather, SequentialSweep};

    fn trace() -> MissTrace {
        let w = SequentialSweep {
            arrays: 2,
            bytes_per_array: 128 * 1024,
            passes: 2,
            elem: 8,
        };
        record_miss_trace(&w, &RecordOptions::default()).unwrap()
    }

    #[test]
    fn multi_stream_replay_matches_independent_passes() {
        let trace = trace();
        let configs = [
            StreamConfig::paper_basic(1).unwrap(),
            StreamConfig::paper_basic(4).unwrap(),
            StreamConfig::paper_filtered(10).unwrap(),
            StreamConfig::paper_strided(6, 16).unwrap(),
        ];
        let together = replay_streams(&trace, &configs);
        for (config, joint) in configs.iter().zip(&together) {
            assert_eq!(*joint, run_streams(&trace, *config));
        }
    }

    #[test]
    fn multi_l2_replay_matches_independent_passes() {
        let trace = record_miss_trace(&RandomGather::default(), &RecordOptions::default()).unwrap();
        let block = BlockSize::new(64).unwrap();
        let cells = [
            (CacheConfig::new(64 << 10, 1, block).unwrap(), None),
            (CacheConfig::new(1 << 20, 2, block).unwrap(), None),
            (
                CacheConfig::new(4 << 20, 4, block).unwrap(),
                Some(SetSampling::new(4, 1)),
            ),
        ];
        let together = replay_l2(&trace, &cells).unwrap();
        for (&(config, sampling), joint) in cells.iter().zip(&together) {
            assert_eq!(*joint, run_l2(&trace, config, sampling).unwrap());
        }
    }

    #[test]
    fn mixed_observer_kinds_share_one_pass() {
        let trace = trace();
        let mut streams = StreamObserver::new(StreamConfig::paper_filtered(4).unwrap());
        let mut l2 = L2Observer::new(
            CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
            None,
        )
        .unwrap();
        replay(&trace, &mut [&mut streams, &mut l2]);
        assert_eq!(
            streams.stats(),
            run_streams(&trace, StreamConfig::paper_filtered(4).unwrap())
        );
        assert_eq!(
            l2.stats(),
            run_l2(
                &trace,
                CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
                None
            )
            .unwrap()
        );
    }

    #[test]
    fn empty_observer_list_is_fine() {
        replay(&trace(), &mut []);
        replay_chunked(&trace(), &mut [], 7);
    }

    /// Chunked delivery matches per-event delivery for assorted chunk
    /// lengths (the full boundary sweep is a property test in
    /// `tests/replay_properties.rs`).
    #[test]
    fn chunked_replay_matches_per_event_replay() {
        let trace = trace();
        let config = StreamConfig::paper_filtered(4).unwrap();
        let l2_cfg = CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap();
        let reference = {
            let mut streams = StreamObserver::new(config);
            let mut l2 = L2Observer::new(l2_cfg, None).unwrap();
            replay(&trace, &mut [&mut streams, &mut l2]);
            (streams.stats(), l2.stats())
        };
        for chunk_len in [0, 1, 7, 1024, trace.events().len() + 3] {
            let mut streams = StreamObserver::new(config);
            let mut l2 = L2Observer::new(l2_cfg, None).unwrap();
            replay_chunked(&trace, &mut [&mut streams, &mut l2], chunk_len);
            assert_eq!(
                (streams.stats(), l2.stats()),
                reference,
                "diverged at chunk_len {chunk_len}"
            );
        }
    }

    #[test]
    fn scoped_counters_attribute_per_observer() {
        use streamsim_obs::{Counter, Counters};

        // Two stream cells and one L2 cell share one pass; each holds a
        // scoped counter set, so the churn of one configuration is
        // attributable without reference to the others (and without any
        // STREAMSIM_LOG level: scoped handles always count).
        let trace = trace();
        let mut narrow = StreamObserver::with_counters(
            StreamConfig::paper_basic(1).unwrap(),
            Counters::scoped(),
        );
        let mut wide = StreamObserver::with_counters(
            StreamConfig::paper_filtered(8).unwrap(),
            Counters::scoped(),
        );
        let mut l2 = L2Observer::with_counters(
            CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
            None,
            Counters::scoped(),
        )
        .unwrap();
        replay(&trace, &mut [&mut narrow, &mut wide, &mut l2]);

        // Each scoped set matches its own observer's statistics exactly.
        assert_eq!(
            narrow.counters().get(Counter::StreamAllocations),
            narrow.stats().allocations
        );
        assert_eq!(
            wide.counters().get(Counter::StreamAllocations),
            wide.stats().allocations
        );
        assert_eq!(
            wide.counters().get(Counter::UnitFilterAccepts)
                + wide.counters().get(Counter::UnitFilterRejects),
            wide.stats().unit_filter.lookups,
            "filter decisions land in the owning observer's set"
        );
        assert_eq!(
            l2.counters().get(Counter::L2Probes),
            trace.events().len() as u64
        );
        // And the cells genuinely differ — the point of attribution.
        assert_ne!(
            narrow.counters().get(Counter::StreamAllocations),
            wide.counters().get(Counter::StreamAllocations)
        );
        assert_eq!(narrow.counters().get(Counter::UnitFilterAccepts), 0);
    }

    #[test]
    fn default_observers_still_replay_identically() {
        // with_counters must not perturb simulation results.
        let trace = trace();
        let config = StreamConfig::paper_strided(6, 16).unwrap();
        let mut scoped = StreamObserver::with_counters(config, streamsim_obs::Counters::scoped());
        replay(&trace, &mut [&mut scoped]);
        assert_eq!(scoped.stats(), run_streams(&trace, config));
    }
}
