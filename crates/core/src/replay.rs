//! Single-pass replay of a miss trace into many observers.
//!
//! The paper sweeps configurations, not workloads: ten stream counts,
//! dozens of secondary-cache geometries, all judged against the *same*
//! recorded miss stream. Replaying that stream once per configuration
//! walks the event vector N times; [`replay`] instead walks it once and
//! fans each event out to N [`MissObserver`]s. Observers are independent
//! (a stream system cannot see an L2's state), so the fan-out is
//! behaviour-preserving by construction — the property tests in
//! `tests/replay_properties.rs` pin this down.
//!
//! Delivery is *batched*: the event vector is walked in chunks of
//! [`REPLAY_CHUNK_EVENTS`] events and each observer consumes a whole
//! chunk before the next observer runs, so one observer's tables stay
//! hot in cache across a run of events instead of every observer being
//! dragged through cache per event. Within a chunk the dispatch is a
//! single devirtualized [`MissObserver::on_events`] call; the two
//! dominant observer kinds override it with monomorphized loops that
//! hoist per-event work (geometry decode, counter charges) out of the
//! loop body.
//!
//! Two observers cover the common cases: [`StreamObserver`] wraps a
//! [`StreamSystem`], [`L2Observer`] wraps a [`SetAssocCache`]. A third,
//! [`FusedStreamObserver`], evaluates a whole *family* of stream
//! configurations sharing one block/word geometry — the shape of every
//! paper sweep (ten stream counts, four filter sizes...) — splitting
//! each address into block and word exactly once per event instead of
//! once per configuration. Drivers with bespoke plumbing (e.g. the
//! Jouppi topology, where a secondary cache sees only the stream-miss
//! residual) implement [`MissObserver`] themselves and join the same
//! pass.

// lint:hot-module — the replay loop touches every recorded miss event per observer

use std::fmt;

use streamsim_cache::{CacheConfig, CacheConfigError, CacheStats, SetAssocCache, SetSampling};
use streamsim_streams::{StreamConfig, StreamStats, StreamSystem};
use streamsim_trace::{AccessKind, Addr, BlockAddr, BlockSize, WordAddr, WordSize};

use crate::{MissEvent, MissTrace};

/// Events per replay chunk: 16 KiB of [`MissEvent`]s, small enough that
/// a chunk plus one observer's hot tables stay L1/L2-resident (the same
/// cache-residency rationale as the recording loop's chunk size).
///
/// Pinned by measurement, not taste: the replay bench's
/// `STREAMSIM_REPLAY_CHUNK_SWEEP=1` mode times the fused stream path at
/// 256/512/1024/2048 over every (workload, family) pair. 1024 has the
/// best aggregate; the candidates sit within ~2% of each other and no
/// other length is better outside run-to-run noise — smaller chunks pay
/// more per-chunk observer switching, larger ones start evicting the
/// widest families' tables. Chunking is behaviour-preserving for any
/// length ([`replay_chunked`]), so retuning on new hardware is a
/// one-line change.
pub const REPLAY_CHUNK_EVENTS: usize = 1024;

/// Anything that consumes a primary-cache miss stream.
///
/// [`replay`] delivers every event of a [`MissTrace`] to each observer in
/// program order, then calls [`finish`](MissObserver::finish) once.
pub trait MissObserver {
    /// A demand fetch (primary-cache miss) of the block containing
    /// `addr`; `kind` is the missing reference's access kind.
    fn on_fetch(&mut self, addr: Addr, kind: AccessKind);

    /// A dirty block written back from the primary cache; `base` is the
    /// block's base byte address.
    fn on_writeback(&mut self, base: Addr);

    /// Delivers a batch of events in program order. The default simply
    /// forwards to the per-event methods — this is the *only* event
    /// match/dispatch body in the engine, so batched and per-event
    /// delivery cannot drift. Hot observers override it with a loop the
    /// compiler can monomorphize and hoist invariants out of.
    fn on_events(&mut self, events: &[MissEvent]) {
        for event in events {
            match *event {
                MissEvent::Fetch { addr, kind } => self.on_fetch(addr, kind),
                MissEvent::Writeback { base } => self.on_writeback(base),
            }
        }
    }

    /// Called once after the last event (e.g. to flush in-flight state).
    fn finish(&mut self) {}

    /// Number of logical simulation cells this observer evaluates per
    /// event — `1` for plain observers, the family size for fused ones.
    /// Replay spans weight their delivery throughput by this, so fusing
    /// does not deflate the reported deliveries/s.
    fn fan_out(&self) -> u64 {
        1
    }
}

/// Replays `trace` into every observer in a single pass over the events,
/// delivering [`REPLAY_CHUNK_EVENTS`]-sized batches.
pub fn replay(trace: &MissTrace, observers: &mut [&mut dyn MissObserver]) {
    replay_chunked(trace, observers, REPLAY_CHUNK_EVENTS);
}

/// [`replay`] with an explicit chunk length: the event vector is walked
/// in chunks of `chunk_len` events, and within each chunk every observer
/// consumes the whole batch before the next observer runs.
///
/// Because observers are independent, this is behaviour-preserving for
/// any chunk length — `tests/replay_properties.rs` sweeps boundaries to
/// pin exactly that. A `chunk_len` of `0` delivers the whole trace as
/// one chunk.
pub fn replay_chunked(
    trace: &MissTrace,
    observers: &mut [&mut dyn MissObserver],
    chunk_len: usize,
) {
    let mut span = streamsim_obs::span("replay");
    let events = trace.events().len() as u64;
    streamsim_obs::count(streamsim_obs::Counter::ReplayMissEvents, events);
    // Items = event deliveries: each event fans out to every observer
    // (weighted by fused family sizes), so the span's throughput reads
    // as miss-events/s per cell when divided by the cell count.
    span.items(events * observers.iter().map(|o| o.fan_out()).sum::<u64>());
    let chunk_len = if chunk_len == 0 {
        trace.events().len().max(1)
    } else {
        chunk_len
    };
    for chunk in trace.events().chunks(chunk_len) {
        // Two relaxed loads per ~1024-event chunk when disabled: the
        // chunk-size histogram is deterministic (trace-derived), the
        // nanos one is wall clock and never pinned byte-for-byte.
        streamsim_obs::record_hist(streamsim_obs::HistId::ReplayChunkEvents, chunk.len() as u64);
        let _chunk_timer = streamsim_obs::hist_timer(streamsim_obs::HistId::ReplayChunkNanos);
        for o in observers.iter_mut() {
            o.on_events(chunk);
        }
    }
    for o in observers.iter_mut() {
        o.finish();
    }
}

/// A stream-buffer system as a replay observer.
#[derive(Debug)]
pub struct StreamObserver {
    sys: StreamSystem,
}

impl StreamObserver {
    /// Wraps a fresh [`StreamSystem`] of the given configuration,
    /// charging internal-event counts to the global observability set.
    pub fn new(config: StreamConfig) -> Self {
        Self::with_counters(config, streamsim_obs::Counters::global())
    }

    /// Like [`StreamObserver::new`], but charging allocation and filter
    /// counts to `counters`. With a [scoped](streamsim_obs::Counters::scoped)
    /// handle per observer, one replay pass attributes stream-buffer
    /// churn to each configuration cell individually instead of summing
    /// the whole sweep into the process-global set.
    pub fn with_counters(config: StreamConfig, counters: streamsim_obs::Counters) -> Self {
        StreamObserver {
            sys: StreamSystem::with_counters(config, counters),
        }
    }

    /// The counter set this observer charges (scoped or global).
    pub fn counters(&self) -> &streamsim_obs::Counters {
        self.sys.counters()
    }

    /// The finalized statistics (call after [`replay`]).
    pub fn stats(&self) -> StreamStats {
        self.sys.stats()
    }
}

impl MissObserver for StreamObserver {
    fn on_fetch(&mut self, addr: Addr, _kind: AccessKind) {
        self.sys.on_l1_miss(addr);
    }

    fn on_writeback(&mut self, base: Addr) {
        self.sys.on_writeback(base.block(self.sys.config().block()));
    }

    fn on_events(&mut self, events: &[MissEvent]) {
        // Monomorphized fast path: the geometry reads are hoisted out of
        // the loop and the system's decoded entry point skips re-deriving
        // block and word per call.
        let block = self.sys.config().block();
        let word = self.sys.config().word();
        for event in events {
            match *event {
                MissEvent::Fetch { addr, .. } => {
                    self.sys
                        .on_l1_miss_decoded(addr, addr.block(block), addr.word(word));
                }
                MissEvent::Writeback { base } => self.sys.on_writeback(base.block(block)),
            }
        }
    }

    fn finish(&mut self) {
        self.sys.finalize();
    }
}

/// A secondary cache as a replay observer.
///
/// Fetches become demand accesses; a write-back from L1 is a store access
/// at the L2.
#[derive(Debug)]
pub struct L2Observer {
    cache: SetAssocCache,
    counters: streamsim_obs::Counters,
}

impl L2Observer {
    /// Wraps a fresh cache of the given geometry, charging probe counts
    /// to the global observability set.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the configuration or sampling is
    /// invalid.
    pub fn new(
        config: CacheConfig,
        sampling: Option<SetSampling>,
    ) -> Result<Self, CacheConfigError> {
        Self::with_counters(config, sampling, streamsim_obs::Counters::global())
    }

    /// Like [`L2Observer::new`], but charging probe counts to
    /// `counters` for per-cell attribution inside a shared replay pass.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the configuration or sampling is
    /// invalid.
    pub fn with_counters(
        config: CacheConfig,
        sampling: Option<SetSampling>,
        counters: streamsim_obs::Counters,
    ) -> Result<Self, CacheConfigError> {
        let cache = match sampling {
            Some(s) => SetAssocCache::with_sampling(config, s)?,
            None => SetAssocCache::new(config)?,
        };
        Ok(L2Observer { cache, counters })
    }

    /// The counter set this observer charges (scoped or global).
    pub fn counters(&self) -> &streamsim_obs::Counters {
        &self.counters
    }

    /// The cache statistics (call after [`replay`]).
    pub fn stats(&self) -> CacheStats {
        *self.cache.stats()
    }
}

impl MissObserver for L2Observer {
    fn on_fetch(&mut self, addr: Addr, kind: AccessKind) {
        self.counters.add(streamsim_obs::Counter::L2Probes, 1);
        self.cache.access(addr, kind);
    }

    fn on_writeback(&mut self, base: Addr) {
        self.counters.add(streamsim_obs::Counter::L2Probes, 1);
        self.cache.access(base, AccessKind::Store);
    }

    fn on_events(&mut self, events: &[MissEvent]) {
        // Monomorphized fast path: every event is exactly one probe, so
        // the counter charge is hoisted to a single batched add (same
        // totals, pinned by the scoped-counter attribution test).
        self.counters
            .add(streamsim_obs::Counter::L2Probes, events.len() as u64);
        for event in events {
            match *event {
                MissEvent::Fetch { addr, kind } => {
                    self.cache.access(addr, kind);
                }
                MissEvent::Writeback { base } => {
                    self.cache.access(base, AccessKind::Store);
                }
            }
        }
    }
}

/// Error fusing stream configurations whose block or word sizes differ:
/// a fused pass decodes each address once, which is only sound when the
/// whole family shares that decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixedGeometry;

impl fmt::Display for MixedGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("stream configurations do not share one block/word geometry")
    }
}

impl std::error::Error for MixedGeometry {}

/// A pre-decoded miss event: the block/word split is computed once per
/// event and shared by every system in the fused family.
#[derive(Clone, Copy, Debug)]
enum DecodedEvent {
    Fetch {
        addr: Addr,
        block: BlockAddr,
        word: WordAddr,
    },
    Writeback {
        block: BlockAddr,
    },
}

/// N stream-buffer systems sharing one block/word geometry, evaluated as
/// a single observer.
///
/// Every paper sweep walks a *family* of stream configurations differing
/// only in count, depth, filter or match policy — never in geometry. A
/// fused observer exploits that: each chunk of events is decoded into
/// `(block, word)` form once, then every system consumes the decoded
/// batch back-to-back while its tables are hot. Compared with N
/// independent [`StreamObserver`]s this removes N−1 address decodes and
/// N−1 virtual dispatches per event.
///
/// Statistics are byte-identical to N independent passes (observers
/// cannot interact); `tests/replay_properties.rs` pins this across
/// seeded random families and chunk boundaries.
#[derive(Debug)]
pub struct FusedStreamObserver {
    systems: Vec<StreamSystem>,
    block: BlockSize,
    word: WordSize,
    /// Per-chunk decode scratch, reused across chunks.
    decoded: Vec<DecodedEvent>,
}

impl FusedStreamObserver {
    /// Fuses `configs` into one observer, charging internal-event counts
    /// to the global observability set.
    ///
    /// # Errors
    ///
    /// Returns [`MixedGeometry`] unless every configuration shares one
    /// block size and one word size. An empty family is allowed.
    pub fn new(configs: &[StreamConfig]) -> Result<Self, MixedGeometry> {
        Self::with_counters(configs, streamsim_obs::Counters::global())
    }

    /// Like [`FusedStreamObserver::new`], but charging every system's
    /// allocation and filter counts to `counters`. (For per-cell
    /// attribution, use independent [`StreamObserver`]s with scoped
    /// handles instead — fusion trades attribution for speed.)
    ///
    /// # Errors
    ///
    /// Returns [`MixedGeometry`] unless every configuration shares one
    /// block size and one word size.
    pub fn with_counters(
        configs: &[StreamConfig],
        counters: streamsim_obs::Counters,
    ) -> Result<Self, MixedGeometry> {
        let (block, word) = match configs.first() {
            Some(first) => (first.block(), first.word()),
            None => (BlockSize::default(), WordSize::default()),
        };
        if configs
            .iter()
            .any(|c| c.block() != block || c.word() != word)
        {
            return Err(MixedGeometry);
        }
        Ok(FusedStreamObserver {
            systems: configs
                .iter()
                .map(|&c| StreamSystem::with_counters(c, counters.clone()))
                .collect(),
            block,
            word,
            decoded: Vec::new(),
        })
    }

    /// Number of systems in the family.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// The finalized statistics of every system, in configuration order
    /// (call after [`replay`]).
    pub fn stats(&self) -> Vec<StreamStats> {
        self.systems.iter().map(StreamSystem::stats).collect()
    }
}

impl MissObserver for FusedStreamObserver {
    fn on_fetch(&mut self, addr: Addr, _kind: AccessKind) {
        let block = addr.block(self.block);
        let word = addr.word(self.word);
        for sys in &mut self.systems {
            sys.on_l1_miss_decoded(addr, block, word);
        }
    }

    fn on_writeback(&mut self, base: Addr) {
        let block = base.block(self.block);
        for sys in &mut self.systems {
            sys.on_writeback(block);
        }
    }

    fn on_events(&mut self, events: &[MissEvent]) {
        // Decode the chunk once for the whole family...
        self.decoded.clear();
        self.decoded.extend(events.iter().map(|event| match *event {
            MissEvent::Fetch { addr, .. } => DecodedEvent::Fetch {
                addr,
                block: addr.block(self.block),
                word: addr.word(self.word),
            },
            MissEvent::Writeback { base } => DecodedEvent::Writeback {
                block: base.block(self.block),
            },
        }));
        // ...then run each system over the decoded batch while its
        // tables are hot.
        for sys in &mut self.systems {
            for event in &self.decoded {
                match *event {
                    DecodedEvent::Fetch { addr, block, word } => {
                        sys.on_l1_miss_decoded(addr, block, word);
                    }
                    DecodedEvent::Writeback { block } => sys.on_writeback(block),
                }
            }
        }
    }

    fn finish(&mut self) {
        for sys in &mut self.systems {
            sys.finalize();
        }
    }

    fn fan_out(&self) -> u64 {
        self.systems.len() as u64
    }
}

/// Replays `trace` against every stream configuration in one pass.
///
/// Equivalent to N calls of [`crate::run_streams`], but the event vector
/// is walked once — and when the family shares one block/word geometry
/// (every paper sweep does), the configurations are fused so each
/// address is decoded once per event rather than once per cell.
pub fn replay_streams(trace: &MissTrace, configs: &[StreamConfig]) -> Vec<StreamStats> {
    match FusedStreamObserver::new(configs) {
        Ok(mut fused) => {
            replay(trace, &mut [&mut fused]);
            fused.stats()
        }
        Err(MixedGeometry) => {
            // Mixed geometries cannot share a decode; fall back to
            // independent observers in the same single pass.
            let mut observers: Vec<StreamObserver> =
                configs.iter().map(|&c| StreamObserver::new(c)).collect();
            {
                let mut refs: Vec<&mut dyn MissObserver> = observers
                    .iter_mut()
                    .map(|o| o as &mut dyn MissObserver)
                    .collect();
                replay(trace, &mut refs);
            }
            observers.iter().map(StreamObserver::stats).collect()
        }
    }
}

/// Replays `trace` against every secondary-cache cell in one pass.
///
/// Equivalent to N calls of [`crate::run_l2`], but the event vector is
/// walked once.
///
/// # Errors
///
/// Returns [`CacheConfigError`] if any cell's configuration or sampling
/// is invalid.
pub fn replay_l2(
    trace: &MissTrace,
    cells: &[(CacheConfig, Option<SetSampling>)],
) -> Result<Vec<CacheStats>, CacheConfigError> {
    let mut observers = cells
        .iter()
        .map(|&(config, sampling)| L2Observer::new(config, sampling))
        .collect::<Result<Vec<_>, _>>()?;
    {
        let mut refs: Vec<&mut dyn MissObserver> = observers
            .iter_mut()
            .map(|o| o as &mut dyn MissObserver)
            .collect();
        replay(trace, &mut refs);
    }
    Ok(observers.iter().map(L2Observer::stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_miss_trace, run_l2, run_streams, RecordOptions};
    use streamsim_trace::BlockSize;
    use streamsim_workloads::generators::{RandomGather, SequentialSweep};

    fn trace() -> MissTrace {
        let w = SequentialSweep {
            arrays: 2,
            bytes_per_array: 128 * 1024,
            passes: 2,
            elem: 8,
        };
        record_miss_trace(&w, &RecordOptions::default()).unwrap()
    }

    #[test]
    fn multi_stream_replay_matches_independent_passes() {
        let trace = trace();
        let configs = [
            StreamConfig::paper_basic(1).unwrap(),
            StreamConfig::paper_basic(4).unwrap(),
            StreamConfig::paper_filtered(10).unwrap(),
            StreamConfig::paper_strided(6, 16).unwrap(),
        ];
        let together = replay_streams(&trace, &configs);
        for (config, joint) in configs.iter().zip(&together) {
            assert_eq!(*joint, run_streams(&trace, *config));
        }
    }

    #[test]
    fn mixed_geometry_families_fall_back_to_independent_passes() {
        let trace = trace();
        let configs = [
            StreamConfig::paper_basic(4).unwrap(),
            StreamConfig::paper_basic(4)
                .unwrap()
                .with_block(BlockSize::new(64).unwrap()),
        ];
        assert!(matches!(
            FusedStreamObserver::new(&configs),
            Err(MixedGeometry)
        ));
        let together = replay_streams(&trace, &configs);
        for (config, joint) in configs.iter().zip(&together) {
            assert_eq!(*joint, run_streams(&trace, *config));
        }
    }

    #[test]
    fn fused_observer_reports_family_metadata() {
        let configs = [
            StreamConfig::paper_basic(2).unwrap(),
            StreamConfig::paper_filtered(8).unwrap(),
        ];
        let fused = FusedStreamObserver::new(&configs).unwrap();
        assert_eq!(fused.len(), 2);
        assert!(!fused.is_empty());
        assert_eq!(fused.fan_out(), 2);
        let empty = FusedStreamObserver::new(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.stats(), Vec::new());
    }

    #[test]
    fn fused_per_event_entry_points_match_batched_delivery() {
        // The fused observer's on_fetch/on_writeback (used when someone
        // drives it manually) agree with its batched on_events.
        let trace = trace();
        let configs = [
            StreamConfig::paper_basic(4).unwrap(),
            StreamConfig::paper_strided(6, 16).unwrap(),
        ];
        let mut manual = FusedStreamObserver::new(&configs).unwrap();
        for event in trace.events() {
            match *event {
                MissEvent::Fetch { addr, kind } => manual.on_fetch(addr, kind),
                MissEvent::Writeback { base } => manual.on_writeback(base),
            }
        }
        manual.finish();
        assert_eq!(manual.stats(), replay_streams(&trace, &configs));
    }

    #[test]
    fn multi_l2_replay_matches_independent_passes() {
        let trace = record_miss_trace(&RandomGather::default(), &RecordOptions::default()).unwrap();
        let block = BlockSize::new(64).unwrap();
        let cells = [
            (CacheConfig::new(64 << 10, 1, block).unwrap(), None),
            (CacheConfig::new(1 << 20, 2, block).unwrap(), None),
            (
                CacheConfig::new(4 << 20, 4, block).unwrap(),
                Some(SetSampling::new(4, 1)),
            ),
        ];
        let together = replay_l2(&trace, &cells).unwrap();
        for (&(config, sampling), joint) in cells.iter().zip(&together) {
            assert_eq!(*joint, run_l2(&trace, config, sampling).unwrap());
        }
    }

    #[test]
    fn mixed_observer_kinds_share_one_pass() {
        let trace = trace();
        let mut streams = StreamObserver::new(StreamConfig::paper_filtered(4).unwrap());
        let mut l2 = L2Observer::new(
            CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
            None,
        )
        .unwrap();
        replay(&trace, &mut [&mut streams, &mut l2]);
        assert_eq!(
            streams.stats(),
            run_streams(&trace, StreamConfig::paper_filtered(4).unwrap())
        );
        assert_eq!(
            l2.stats(),
            run_l2(
                &trace,
                CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
                None
            )
            .unwrap()
        );
    }

    #[test]
    fn empty_observer_list_is_fine() {
        replay(&trace(), &mut []);
        replay_chunked(&trace(), &mut [], 7);
    }

    /// Chunked delivery matches per-event delivery for assorted chunk
    /// lengths (the full boundary sweep is a property test in
    /// `tests/replay_properties.rs`).
    #[test]
    fn chunked_replay_matches_per_event_replay() {
        let trace = trace();
        let config = StreamConfig::paper_filtered(4).unwrap();
        let l2_cfg = CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap();
        let reference = {
            let mut streams = StreamObserver::new(config);
            let mut l2 = L2Observer::new(l2_cfg, None).unwrap();
            // Strict per-event delivery through the default trait body.
            for event in trace.events() {
                for o in [&mut streams as &mut dyn MissObserver, &mut l2] {
                    match *event {
                        MissEvent::Fetch { addr, kind } => o.on_fetch(addr, kind),
                        MissEvent::Writeback { base } => o.on_writeback(base),
                    }
                }
            }
            streams.finish();
            l2.finish();
            (streams.stats(), l2.stats())
        };
        for chunk_len in [0, 1, 7, 1024, usize::MAX] {
            let mut streams = StreamObserver::new(config);
            let mut l2 = L2Observer::new(l2_cfg, None).unwrap();
            let chunk_len = chunk_len.min(trace.events().len() + 3);
            replay_chunked(&trace, &mut [&mut streams, &mut l2], chunk_len);
            assert_eq!(
                (streams.stats(), l2.stats()),
                reference,
                "diverged at chunk_len {chunk_len}"
            );
        }
    }

    #[test]
    fn scoped_counters_attribute_per_observer() {
        use streamsim_obs::{Counter, Counters};

        // Two stream cells and one L2 cell share one pass; each holds a
        // scoped counter set, so the churn of one configuration is
        // attributable without reference to the others (and without any
        // STREAMSIM_LOG level: scoped handles always count).
        let trace = trace();
        let mut narrow = StreamObserver::with_counters(
            StreamConfig::paper_basic(1).unwrap(),
            Counters::scoped(),
        );
        let mut wide = StreamObserver::with_counters(
            StreamConfig::paper_filtered(8).unwrap(),
            Counters::scoped(),
        );
        let mut l2 = L2Observer::with_counters(
            CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap(),
            None,
            Counters::scoped(),
        )
        .unwrap();
        replay(&trace, &mut [&mut narrow, &mut wide, &mut l2]);

        // Each scoped set matches its own observer's statistics exactly.
        assert_eq!(
            narrow.counters().get(Counter::StreamAllocations),
            narrow.stats().allocations
        );
        assert_eq!(
            wide.counters().get(Counter::StreamAllocations),
            wide.stats().allocations
        );
        assert_eq!(
            wide.counters().get(Counter::UnitFilterAccepts)
                + wide.counters().get(Counter::UnitFilterRejects),
            wide.stats().unit_filter.lookups,
            "filter decisions land in the owning observer's set"
        );
        assert_eq!(
            l2.counters().get(Counter::L2Probes),
            trace.events().len() as u64
        );
        // And the cells genuinely differ — the point of attribution.
        assert_ne!(
            narrow.counters().get(Counter::StreamAllocations),
            wide.counters().get(Counter::StreamAllocations)
        );
        assert_eq!(narrow.counters().get(Counter::UnitFilterAccepts), 0);
    }

    #[test]
    fn default_observers_still_replay_identically() {
        // with_counters must not perturb simulation results.
        let trace = trace();
        let config = StreamConfig::paper_strided(6, 16).unwrap();
        let mut scoped = StreamObserver::with_counters(config, streamsim_obs::Counters::scoped());
        replay(&trace, &mut [&mut scoped]);
        assert_eq!(scoped.stats(), run_streams(&trace, config));
    }
}
