//! Parallel execution of independent simulations.
//!
//! Experiments run many independent (workload × configuration) cells;
//! [`parallel_map`] spreads them over the machine's cores with plain
//! scoped threads. Results come back in input order, so experiment output
//! is deterministic regardless of scheduling.
//!
//! The work-queue protocol itself is generic over the
//! [`Executor`](streamsim_dst::Executor) seam: [`parallel_map_on`] runs
//! the same queue/abort/panic-parking protocol on any executor, so the
//! production thread pool and the deterministic-simulation scheduler
//! ([`streamsim_dst::SimExecutor`]) exercise identical code. Tests
//! sweep seeds through the simulated executor to explore interleavings
//! real threads may never produce.

use std::any::Any;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use streamsim_dst::{Executor, StepOutcome, ThreadExecutor};

/// Applies `f` to every item, using up to `available_parallelism` worker
/// threads, and returns the results in input order.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
/// Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    parallel_map_with_threads(items, threads, f)
}

/// [`parallel_map`] with an explicit worker-thread cap instead of
/// `available_parallelism`.
///
/// Results are returned in input order whatever the scheduling, so for a
/// pure `f` the output is a function of the input alone — experiment
/// results must be byte-identical across any thread count, and the
/// determinism regression tests below pin exactly that.
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    parallel_map_on(&ThreadExecutor::new(threads), items, f)
}

/// The work-queue protocol, generic over who schedules the workers.
///
/// One shared queue of (index, item); each worker drains it into a
/// private (index, result) list, and the lists are merged and sorted
/// back into input order at the end. The executor decides *when* each
/// worker runs; the protocol is expressed as a step function with a
/// yield point between claiming an item, computing it and publishing
/// the result, so a simulated scheduler can interleave workers at every
/// boundary that matters.
///
/// Panic safety (pinned by the tests below and swept across seeds in
/// `tests/dst_engine.rs`): a panic in `f` must reach the caller with
/// its original payload. Workers run `f` under `catch_unwind`; the
/// first payload is parked aside and re-thrown after the executor
/// returns, and the abort flag stops the other workers from draining
/// doomed work. Locks recover poisoned state with `into_inner` — an
/// `expect` here would panic *during* the cleanup and mask the payload
/// the caller actually needs to see.
pub fn parallel_map_on<T, R, F>(exec: &dyn Executor, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    struct WorkerState<T, R> {
        /// Item claimed from the queue, not yet computed.
        pending: Option<(usize, T)>,
        /// Result computed, not yet published.
        staged: Option<(usize, R)>,
        /// Published results.
        done: Vec<(usize, R)>,
    }

    let workers = exec.workers().max(1).min(items.len().max(1));
    let queue = Mutex::new(items.into_iter().enumerate());
    let aborted = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let states: Vec<Mutex<WorkerState<T, R>>> = (0..workers)
        .map(|_| {
            Mutex::new(WorkerState {
                pending: None,
                staged: None,
                done: Vec::new(),
            })
        })
        .collect();

    let step = |w: usize| -> StepOutcome {
        let mut state = states[w].lock().unwrap_or_else(|e| e.into_inner());
        // Publish phase: a computed result becomes visible.
        if let Some(result) = state.staged.take() {
            state.done.push(result);
            return StepOutcome::Progress;
        }
        // Work phase: compute the claimed item.
        if let Some((i, item)) = state.pending.take() {
            return match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => {
                    state.staged = Some((i, r));
                    StepOutcome::Progress
                }
                Err(payload) => {
                    aborted.store(true, Ordering::Relaxed);
                    panic_payload
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get_or_insert(payload);
                    StepOutcome::Done
                }
            };
        }
        // Poll phase: observe the abort flag or claim the next item.
        if aborted.load(Ordering::Relaxed) {
            return StepOutcome::Done;
        }
        match queue.lock().unwrap_or_else(|e| e.into_inner()).next() {
            Some(claimed) => {
                state.pending = Some(claimed);
                StepOutcome::Progress
            }
            None => StepOutcome::Done,
        }
    };
    exec.drive(workers, &step);

    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        resume_unwind(payload);
    }
    let mut indexed: Vec<(usize, R)> = states
        .into_iter()
        .flat_map(|m| {
            let state = m.into_inner().unwrap_or_else(|e| e.into_inner());
            debug_assert!(
                state.pending.is_none() && state.staged.is_none(),
                "a worker retired with in-flight work on the success path"
            );
            state.done
        })
        .collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A cheap-clone, shareable executor for [`ExperimentOptions`]
/// (`Arc<dyn Executor>` inside).
///
/// The default is the production thread pool sized to the machine; DST
/// tests swap in a seeded [`streamsim_dst::SimExecutor`] to drive a
/// whole experiment — prefill, replay fan-out, everything that goes
/// through the options — under one reproducible schedule.
///
/// [`ExperimentOptions`]: crate::experiments::ExperimentOptions
#[derive(Clone)]
pub struct ExecutorHandle {
    exec: Arc<dyn Executor + Send + Sync>,
}

impl ExecutorHandle {
    /// Wraps an executor for sharing.
    pub fn new(exec: impl Executor + Send + Sync + 'static) -> Self {
        ExecutorHandle {
            exec: Arc::new(exec),
        }
    }

    /// Wraps an already-shared executor. Use this to keep a handle on a
    /// [`streamsim_dst::SimExecutor`] so its recorded schedule can be
    /// inspected after the run.
    pub fn from_arc(exec: Arc<dyn Executor + Send + Sync>) -> Self {
        ExecutorHandle { exec }
    }

    /// The production pool with an explicit thread count.
    pub fn threads(threads: usize) -> Self {
        ExecutorHandle::new(ThreadExecutor::new(threads))
    }

    /// The wrapped executor.
    pub fn executor(&self) -> &(dyn Executor + Send + Sync) {
        self.exec.as_ref()
    }

    /// [`parallel_map_on`] over this handle's executor.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        parallel_map_on(self.exec.as_ref(), items, f)
    }
}

impl Default for ExecutorHandle {
    /// The production pool sized by `available_parallelism`.
    fn default() -> Self {
        ExecutorHandle::new(ThreadExecutor::auto())
    }
}

impl fmt::Debug for ExecutorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorHandle")
            .field("workers", &self.exec.workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn runs_non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out[0], 1);
        assert_eq!(out[10], 2);
    }

    /// Determinism regression: an experiment-shaped workload (record a
    /// seeded kernel's miss trace, replay it through streams) returns
    /// identical results whether it runs on 1, 2, 3, or 7 worker
    /// threads. This is the property every table/figure driver relies on
    /// when it spreads (benchmark × config) cells over cores.
    #[test]
    fn results_are_identical_across_thread_counts() {
        use streamsim_cache::{CacheConfig, Replacement};
        use streamsim_streams::StreamConfig;
        use streamsim_trace::BlockSize;
        use streamsim_workloads::generators::RandomGather;

        let cell = |seed: u64| {
            let workload = RandomGather {
                footprint: 1 << 16,
                count: 3_000,
                seed,
            };
            let cfg = CacheConfig::new(4 * 1024, 2, BlockSize::new(32).unwrap())
                .unwrap()
                .with_replacement(Replacement::Random { seed });
            let opts = crate::RecordOptions {
                icache: cfg,
                dcache: cfg,
                sampling: None,
            };
            let rec = crate::record_miss_trace(&workload, &opts).unwrap();
            let streams = crate::run_streams(&rec, StreamConfig::paper_filtered(4).unwrap());
            (rec.fetches(), rec.writebacks(), streams)
        };
        let seeds: Vec<u64> = (0..12).collect();
        let reference = parallel_map_with_threads(seeds.clone(), 1, cell);
        for threads in [2, 3, 7] {
            let got = parallel_map_with_threads(seeds.clone(), threads, cell);
            assert_eq!(got, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn thread_cap_of_zero_is_clamped_to_one() {
        let out = parallel_map_with_threads(vec![1, 2, 3], 0, |i: i32| i * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
        payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>")
    }

    /// Panic-safety regression: a panic in `f` must reach the caller
    /// with its *original* payload. The old implementation `expect`ed
    /// the queue lock un-poisoned, so an unwinding worker could replace
    /// "boom on 7" with "queue not poisoned" — the message that
    /// actually diagnoses the failure never surfaced.
    #[test]
    fn worker_panic_propagates_the_original_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads((0..64).collect(), 4, |i: i32| {
                if i == 7 {
                    panic!("boom on {i}");
                }
                i * 2
            })
        });
        let payload = result.expect_err("the panic must propagate");
        let msg = payload_message(payload.as_ref());
        assert!(msg.contains("boom on 7"), "masked payload: {msg}");
    }

    #[test]
    fn serial_path_panic_also_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads(vec![1], 4, |_| -> i32 { panic!("solo boom") })
        });
        let msg_owner = result.expect_err("the panic must propagate");
        assert!(payload_message(msg_owner.as_ref()).contains("solo boom"));
    }

    /// The DST scheduler runs the same protocol: results match the
    /// serial reference under arbitrary seeded interleavings. The full
    /// seed sweep lives in `tests/dst_engine.rs`; this is the in-crate
    /// smoke.
    #[test]
    fn sim_executor_matches_serial_results() {
        use streamsim_dst::SimExecutor;
        let serial: Vec<i32> = (0..40).map(|i| i * 3).collect();
        for seed in 0..8 {
            let exec = SimExecutor::new(seed, 4);
            let got = parallel_map_on(&exec, (0..40).collect(), |i: i32| i * 3);
            assert_eq!(got, serial, "seed {seed}");
        }
    }

    #[test]
    fn sim_executor_panic_propagates_the_original_payload() {
        let exec = streamsim_dst::SimExecutor::new(3, 3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map_on(&exec, (0..16).collect(), |i: i32| {
                if i == 5 {
                    panic!("sim boom on {i}");
                }
                i
            })
        }));
        let payload = result.expect_err("the panic must propagate");
        assert!(payload_message(payload.as_ref()).contains("sim boom on 5"));
    }

    #[test]
    fn executor_handle_default_runs_and_is_debuggable() {
        let handle = ExecutorHandle::default();
        assert!(format!("{handle:?}").contains("workers"));
        let out = handle.parallel_map((0..10).collect(), |i: i32| i + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    /// After a worker panics, the abort flag stops the other workers
    /// from draining the rest of the queue.
    #[test]
    fn panic_aborts_remaining_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let processed = AtomicUsize::new(0);
        let total = 10_000;
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads((0..total).collect(), 2, |i: i32| {
                processed.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("early boom");
                }
                // Give the panicking worker time to raise the flag
                // before this one re-polls the queue.
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            })
        });
        assert!(result.is_err());
        let n = processed.load(Ordering::Relaxed);
        assert!(
            n < total as usize / 2,
            "workers kept draining after the panic: {n}/{total}"
        );
    }
}
