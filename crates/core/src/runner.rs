//! Parallel execution of independent simulations.
//!
//! Experiments run many independent (workload × configuration) cells;
//! [`parallel_map`] spreads them over the machine's cores with plain
//! scoped threads. Results come back in input order, so experiment output
//! is deterministic regardless of scheduling.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Applies `f` to every item, using up to `available_parallelism` worker
/// threads, and returns the results in input order.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
/// Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    parallel_map_with_threads(items, threads, f)
}

/// [`parallel_map`] with an explicit worker-thread cap instead of
/// `available_parallelism`.
///
/// Results are returned in input order whatever the scheduling, so for a
/// pure `f` the output is a function of the input alone — experiment
/// results must be byte-identical across any thread count, and the
/// determinism regression tests below pin exactly that.
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // One shared queue of (index, item); each worker drains it into a
    // private (index, result) list, and the lists are merged and sorted
    // back into input order at the end.
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue not poisoned").next();
                        match next {
                            Some((i, item)) => done.push((i, f(item))),
                            None => break done,
                        }
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| {
                w.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn runs_non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out[0], 1);
        assert_eq!(out[10], 2);
    }

    /// Determinism regression: an experiment-shaped workload (record a
    /// seeded kernel's miss trace, replay it through streams) returns
    /// identical results whether it runs on 1, 2, 3, or 7 worker
    /// threads. This is the property every table/figure driver relies on
    /// when it spreads (benchmark × config) cells over cores.
    #[test]
    fn results_are_identical_across_thread_counts() {
        use streamsim_cache::{CacheConfig, Replacement};
        use streamsim_streams::StreamConfig;
        use streamsim_trace::BlockSize;
        use streamsim_workloads::generators::RandomGather;

        let cell = |seed: u64| {
            let workload = RandomGather {
                footprint: 1 << 16,
                count: 3_000,
                seed,
            };
            let cfg = CacheConfig::new(4 * 1024, 2, BlockSize::new(32).unwrap())
                .unwrap()
                .with_replacement(Replacement::Random { seed });
            let opts = crate::RecordOptions {
                icache: cfg,
                dcache: cfg,
                sampling: None,
            };
            let rec = crate::record_miss_trace(&workload, &opts).unwrap();
            let streams = crate::run_streams(&rec, StreamConfig::paper_filtered(4).unwrap());
            (rec.fetches(), rec.writebacks(), streams)
        };
        let seeds: Vec<u64> = (0..12).collect();
        let reference = parallel_map_with_threads(seeds.clone(), 1, cell);
        for threads in [2, 3, 7] {
            let got = parallel_map_with_threads(seeds.clone(), threads, cell);
            assert_eq!(got, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn thread_cap_of_zero_is_clamped_to_one() {
        let out = parallel_map_with_threads(vec![1, 2, 3], 0, |i: i32| i * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
