//! Parallel execution of independent simulations.
//!
//! Experiments run many independent (workload × configuration) cells;
//! [`parallel_map`] spreads them over the machine's cores with plain
//! scoped threads. Results come back in input order, so experiment output
//! is deterministic regardless of scheduling.

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, using up to `available_parallelism` worker
/// threads, and returns the results in input order.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
/// Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    parallel_map_with_threads(items, threads, f)
}

/// [`parallel_map`] with an explicit worker-thread cap instead of
/// `available_parallelism`.
///
/// Results are returned in input order whatever the scheduling, so for a
/// pure `f` the output is a function of the input alone — experiment
/// results must be byte-identical across any thread count, and the
/// determinism regression tests below pin exactly that.
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // One shared queue of (index, item); each worker drains it into a
    // private (index, result) list, and the lists are merged and sorted
    // back into input order at the end.
    //
    // Panic safety: a panic in `f` must reach the caller with its
    // original payload. Workers run `f` under `catch_unwind`; the first
    // payload is parked aside and re-thrown after the scope joins, and
    // the abort flag stops the other workers from draining doomed work.
    // Locks recover poisoned state with `into_inner` — an `expect` here
    // would panic *during* the cleanup and mask the payload the caller
    // actually needs to see.
    let queue = Mutex::new(items.into_iter().enumerate());
    let aborted = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        if aborted.load(Ordering::Relaxed) {
                            break done;
                        }
                        let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                        match next {
                            Some((i, item)) => match catch_unwind(AssertUnwindSafe(|| f(item))) {
                                Ok(r) => done.push((i, r)),
                                Err(payload) => {
                                    aborted.store(true, Ordering::Relaxed);
                                    panic_payload
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .get_or_insert(payload);
                                    break done;
                                }
                            },
                            None => break done,
                        }
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| {
                // `f` panics are caught above; this backstop covers a
                // panic outside `f` (e.g. allocation failure).
                w.join().unwrap_or_else(|panic| resume_unwind(panic))
            })
            .collect()
    });
    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        resume_unwind(payload);
    }
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn runs_non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out[0], 1);
        assert_eq!(out[10], 2);
    }

    /// Determinism regression: an experiment-shaped workload (record a
    /// seeded kernel's miss trace, replay it through streams) returns
    /// identical results whether it runs on 1, 2, 3, or 7 worker
    /// threads. This is the property every table/figure driver relies on
    /// when it spreads (benchmark × config) cells over cores.
    #[test]
    fn results_are_identical_across_thread_counts() {
        use streamsim_cache::{CacheConfig, Replacement};
        use streamsim_streams::StreamConfig;
        use streamsim_trace::BlockSize;
        use streamsim_workloads::generators::RandomGather;

        let cell = |seed: u64| {
            let workload = RandomGather {
                footprint: 1 << 16,
                count: 3_000,
                seed,
            };
            let cfg = CacheConfig::new(4 * 1024, 2, BlockSize::new(32).unwrap())
                .unwrap()
                .with_replacement(Replacement::Random { seed });
            let opts = crate::RecordOptions {
                icache: cfg,
                dcache: cfg,
                sampling: None,
            };
            let rec = crate::record_miss_trace(&workload, &opts).unwrap();
            let streams = crate::run_streams(&rec, StreamConfig::paper_filtered(4).unwrap());
            (rec.fetches(), rec.writebacks(), streams)
        };
        let seeds: Vec<u64> = (0..12).collect();
        let reference = parallel_map_with_threads(seeds.clone(), 1, cell);
        for threads in [2, 3, 7] {
            let got = parallel_map_with_threads(seeds.clone(), threads, cell);
            assert_eq!(got, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn thread_cap_of_zero_is_clamped_to_one() {
        let out = parallel_map_with_threads(vec![1, 2, 3], 0, |i: i32| i * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
        payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>")
    }

    /// Panic-safety regression: a panic in `f` must reach the caller
    /// with its *original* payload. The old implementation `expect`ed
    /// the queue lock un-poisoned, so an unwinding worker could replace
    /// "boom on 7" with "queue not poisoned" — the message that
    /// actually diagnoses the failure never surfaced.
    #[test]
    fn worker_panic_propagates_the_original_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads((0..64).collect(), 4, |i: i32| {
                if i == 7 {
                    panic!("boom on {i}");
                }
                i * 2
            })
        });
        let payload = result.expect_err("the panic must propagate");
        let msg = payload_message(payload.as_ref());
        assert!(msg.contains("boom on 7"), "masked payload: {msg}");
    }

    #[test]
    fn serial_path_panic_also_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads(vec![1], 4, |_| -> i32 { panic!("solo boom") })
        });
        let msg_owner = result.expect_err("the panic must propagate");
        assert!(payload_message(msg_owner.as_ref()).contains("solo boom"));
    }

    /// After a worker panics, the abort flag stops the other workers
    /// from draining the rest of the queue.
    #[test]
    fn panic_aborts_remaining_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let processed = AtomicUsize::new(0);
        let total = 10_000;
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads((0..total).collect(), 2, |i: i32| {
                processed.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("early boom");
                }
                // Give the panicking worker time to raise the flag
                // before this one re-polls the queue.
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            })
        });
        assert!(result.is_err());
        let n = processed.load(Ordering::Relaxed);
        assert!(
            n < total as usize / 2,
            "workers kept draining after the panic: {n}/{total}"
        );
    }
}
