//! Parallel execution of independent simulations.
//!
//! Experiments run many independent (workload × configuration) cells;
//! [`parallel_map`] spreads them over the machine's cores with plain
//! scoped threads. Results come back in input order, so experiment output
//! is deterministic regardless of scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, using up to `available_parallelism` worker
/// threads, and returns the results in input order.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
/// Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot not poisoned")
                    .take()
                    .expect("each slot taken once");
                let r = f(item);
                *results[i].lock().expect("result slot not poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot not poisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn runs_non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out[0], 1);
        assert_eq!(out[10], 2);
    }
}
