//! The paper's reported results, transcribed for side-by-side comparison.
//!
//! Table values are taken verbatim from the paper; figure values (hit
//! rates read off Figures 3, 5, 8 and 9) are approximate to a few
//! percentage points, with exact anchors where the prose states numbers
//! (e.g. "for fftpde the hit rate increases from 26 % to 71 %"). Table
//! 3's middle buckets did not survive the source's text extraction; the
//! reliable 1–5 and >20 columns are kept and the middle three are `None`.

/// Reported values for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkPaperData {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Table 1: data-set size in megabytes.
    pub data_set_mb: f64,
    /// Table 1: primary data-cache miss rate, percent.
    pub data_miss_rate_pct: f64,
    /// Table 1: misses per instruction, percent.
    pub mpi_pct: f64,
    /// Figure 3 (≈): stream hit rate with 10 streams, no filter, percent.
    pub hit_basic_pct: f64,
    /// Table 2: extra bandwidth of ordinary streams, percent.
    pub eb_basic_pct: f64,
    /// Figure 5 (≈): hit rate with the 16-entry unit filter, percent.
    pub hit_filtered_pct: f64,
    /// Figure 5 (≈): extra bandwidth with the filter, percent.
    pub eb_filtered_pct: f64,
    /// Figure 8 (≈): hit rate with unit + czone filters, percent.
    pub hit_strided_pct: f64,
    /// Table 3: percent of hits from runs of 1–5.
    pub len_1_5_pct: f64,
    /// Table 3: percent of hits from runs over 20.
    pub len_over_20_pct: f64,
}

/// All fifteen benchmarks, in Table 1 order.
pub const BENCHMARKS: [BenchmarkPaperData; 15] = [
    BenchmarkPaperData {
        name: "embar",
        data_set_mb: 1.0,
        data_miss_rate_pct: 0.28,
        mpi_pct: 0.10,
        hit_basic_pct: 96.0,
        eb_basic_pct: 8.0,
        hit_filtered_pct: 95.0,
        eb_filtered_pct: 4.0,
        hit_strided_pct: 96.0,
        len_1_5_pct: 1.0,
        len_over_20_pct: 99.0,
    },
    BenchmarkPaperData {
        name: "mgrid",
        data_set_mb: 1.0,
        data_miss_rate_pct: 0.84,
        mpi_pct: 0.08,
        hit_basic_pct: 78.0,
        eb_basic_pct: 36.0,
        hit_filtered_pct: 75.0,
        eb_filtered_pct: 16.0,
        hit_strided_pct: 76.0,
        len_1_5_pct: 13.0,
        len_over_20_pct: 86.0,
    },
    BenchmarkPaperData {
        name: "cgm",
        data_set_mb: 2.9,
        data_miss_rate_pct: 3.33,
        mpi_pct: 1.43,
        hit_basic_pct: 85.0,
        eb_basic_pct: 30.0,
        hit_filtered_pct: 84.0,
        eb_filtered_pct: 13.0,
        hit_strided_pct: 85.0,
        len_1_5_pct: 3.0,
        len_over_20_pct: 97.0,
    },
    BenchmarkPaperData {
        name: "fftpde",
        data_set_mb: 14.7,
        data_miss_rate_pct: 3.08,
        mpi_pct: 0.50,
        hit_basic_pct: 26.0,
        eb_basic_pct: 158.0,
        hit_filtered_pct: 29.0,
        eb_filtered_pct: 37.0,
        hit_strided_pct: 71.0,
        len_1_5_pct: 41.0,
        len_over_20_pct: 59.0,
    },
    BenchmarkPaperData {
        name: "is",
        data_set_mb: 0.80,
        data_miss_rate_pct: 0.53,
        mpi_pct: 0.20,
        hit_basic_pct: 76.0,
        eb_basic_pct: 48.0,
        hit_filtered_pct: 75.0,
        eb_filtered_pct: 7.0,
        hit_strided_pct: 76.0,
        len_1_5_pct: 4.0,
        len_over_20_pct: 93.0,
    },
    BenchmarkPaperData {
        name: "appsp",
        data_set_mb: 2.2,
        data_miss_rate_pct: 2.24,
        mpi_pct: 0.38,
        hit_basic_pct: 33.0,
        eb_basic_pct: 134.0,
        hit_filtered_pct: 32.0,
        eb_filtered_pct: 45.0,
        hit_strided_pct: 65.0,
        len_1_5_pct: 5.0,
        len_over_20_pct: 84.0,
    },
    BenchmarkPaperData {
        name: "appbt",
        data_set_mb: 4.2,
        data_miss_rate_pct: 1.88,
        mpi_pct: 0.45,
        hit_basic_pct: 65.0,
        eb_basic_pct: 62.0,
        hit_filtered_pct: 45.0,
        eb_filtered_pct: 48.0,
        hit_strided_pct: 65.0,
        len_1_5_pct: 63.0,
        len_over_20_pct: 37.0,
    },
    BenchmarkPaperData {
        name: "applu",
        data_set_mb: 5.4,
        data_miss_rate_pct: 1.26,
        mpi_pct: 0.18,
        hit_basic_pct: 62.0,
        eb_basic_pct: 38.0,
        hit_filtered_pct: 58.0,
        eb_filtered_pct: 20.0,
        hit_strided_pct: 64.0,
        len_1_5_pct: 22.0,
        len_over_20_pct: 64.0,
    },
    BenchmarkPaperData {
        name: "spec77",
        data_set_mb: 1.3,
        data_miss_rate_pct: 0.50,
        mpi_pct: 0.15,
        hit_basic_pct: 73.0,
        eb_basic_pct: 44.0,
        hit_filtered_pct: 71.0,
        eb_filtered_pct: 18.0,
        hit_strided_pct: 73.0,
        len_1_5_pct: 14.0,
        len_over_20_pct: 84.0,
    },
    BenchmarkPaperData {
        name: "adm",
        data_set_mb: 0.6,
        data_miss_rate_pct: 0.04,
        mpi_pct: 0.00,
        hit_basic_pct: 25.0,
        eb_basic_pct: 150.0,
        hit_filtered_pct: 22.0,
        eb_filtered_pct: 40.0,
        hit_strided_pct: 27.0,
        len_1_5_pct: 73.0,
        len_over_20_pct: 9.0,
    },
    BenchmarkPaperData {
        name: "bdna",
        data_set_mb: 2.1,
        data_miss_rate_pct: 1.39,
        mpi_pct: 0.42,
        hit_basic_pct: 58.0,
        eb_basic_pct: 68.0,
        hit_filtered_pct: 52.0,
        eb_filtered_pct: 30.0,
        hit_strided_pct: 59.0,
        len_1_5_pct: 36.0,
        len_over_20_pct: 33.0,
    },
    BenchmarkPaperData {
        name: "dyfesm",
        data_set_mb: 0.1,
        data_miss_rate_pct: 0.01,
        mpi_pct: 0.00,
        hit_basic_pct: 30.0,
        eb_basic_pct: 108.0,
        hit_filtered_pct: 26.0,
        eb_filtered_pct: 40.0,
        hit_strided_pct: 32.0,
        len_1_5_pct: 50.0,
        len_over_20_pct: 25.0,
    },
    BenchmarkPaperData {
        name: "mdg",
        data_set_mb: 0.2,
        data_miss_rate_pct: 0.03,
        mpi_pct: 0.01,
        hit_basic_pct: 48.0,
        eb_basic_pct: 76.0,
        hit_filtered_pct: 44.0,
        eb_filtered_pct: 30.0,
        hit_strided_pct: 49.0,
        len_1_5_pct: 32.0,
        len_over_20_pct: 46.0,
    },
    BenchmarkPaperData {
        name: "qcd",
        data_set_mb: 9.2,
        data_miss_rate_pct: 0.16,
        mpi_pct: 0.06,
        hit_basic_pct: 45.0,
        eb_basic_pct: 74.0,
        hit_filtered_pct: 40.0,
        eb_filtered_pct: 32.0,
        hit_strided_pct: 46.0,
        len_1_5_pct: 50.0,
        len_over_20_pct: 43.0,
    },
    BenchmarkPaperData {
        name: "trfd",
        data_set_mb: 8.0,
        data_miss_rate_pct: 0.05,
        mpi_pct: 0.00,
        hit_basic_pct: 50.0,
        eb_basic_pct: 96.0,
        hit_filtered_pct: 49.0,
        eb_filtered_pct: 11.0,
        hit_strided_pct: 65.0,
        len_1_5_pct: 7.0,
        len_over_20_pct: 90.0,
    },
];

/// Looks up a benchmark's reported values.
pub fn benchmark(name: &str) -> Option<&'static BenchmarkPaperData> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// One row of the paper's Table 4 (streams vs secondary cache scaling).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Human-readable input description.
    pub input: &'static str,
    /// `true` for the larger of the benchmark's two inputs.
    pub large: bool,
    /// Reported stream hit rate, percent.
    pub stream_hit_pct: u32,
    /// Reported minimum secondary-cache size for the same local hit rate,
    /// bytes.
    pub min_l2_bytes: u64,
}

/// Table 4 as printed in the paper.
pub const TABLE4: [Table4Row; 10] = [
    Table4Row {
        name: "appsp",
        input: "12 x 12 x 12",
        large: false,
        stream_hit_pct: 43,
        min_l2_bytes: 128 << 10,
    },
    Table4Row {
        name: "appsp",
        input: "24 x 24 x 24",
        large: true,
        stream_hit_pct: 65,
        min_l2_bytes: 1 << 20,
    },
    Table4Row {
        name: "appbt",
        input: "12 x 12 x 12",
        large: false,
        stream_hit_pct: 50,
        min_l2_bytes: 512 << 10,
    },
    Table4Row {
        name: "appbt",
        input: "24 x 24 x 24",
        large: true,
        stream_hit_pct: 52,
        min_l2_bytes: 2 << 20,
    },
    Table4Row {
        name: "applu",
        input: "12 x 12 x 12",
        large: false,
        stream_hit_pct: 62,
        min_l2_bytes: 1 << 20,
    },
    Table4Row {
        name: "applu",
        input: "24 x 24 x 24",
        large: true,
        stream_hit_pct: 73,
        min_l2_bytes: 2 << 20,
    },
    Table4Row {
        name: "cgm",
        input: "1400 x 1400",
        large: false,
        stream_hit_pct: 85,
        min_l2_bytes: 1 << 20,
    },
    Table4Row {
        name: "cgm",
        input: "5600 x 5600",
        large: true,
        stream_hit_pct: 51,
        min_l2_bytes: 64 << 10,
    },
    Table4Row {
        name: "mgrid",
        input: "32 x 32 x 32",
        large: false,
        stream_hit_pct: 76,
        min_l2_bytes: 2 << 20,
    },
    Table4Row {
        name: "mgrid",
        input: "64 x 64 x 64",
        large: true,
        stream_hit_pct: 88,
        min_l2_bytes: 4 << 20,
    },
];

/// Figure 9 (≈): czone sensitivity anchors. For `fftpde` detection works
/// in a 16–23-bit window; `appsp` and `trfd` plateau once the czone
/// covers their strides.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig9Anchor {
    /// Benchmark name.
    pub name: &'static str,
    /// Czone size in bits below which detection fails (hit rate near the
    /// unit-only level).
    pub works_from_bits: u32,
    /// Czone size in bits above which detection degrades again, if the
    /// paper shows one.
    pub degrades_after_bits: Option<u32>,
    /// Peak hit rate in percent.
    pub peak_hit_pct: f64,
}

/// Figure 9's three benchmarks.
pub const FIG9: [Fig9Anchor; 3] = [
    Fig9Anchor {
        name: "fftpde",
        works_from_bits: 16,
        degrades_after_bits: Some(23),
        peak_hit_pct: 71.0,
    },
    Fig9Anchor {
        name: "appsp",
        works_from_bits: 13,
        degrades_after_bits: None,
        peak_hit_pct: 65.0,
    },
    Fig9Anchor {
        name: "trfd",
        works_from_bits: 10,
        degrades_after_bits: None,
        peak_hit_pct: 65.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_benchmarks_in_table_order() {
        assert_eq!(BENCHMARKS.len(), 15);
        assert_eq!(BENCHMARKS[0].name, "embar");
        assert_eq!(BENCHMARKS[14].name, "trfd");
    }

    #[test]
    fn lookup_works() {
        assert_eq!(benchmark("fftpde").unwrap().hit_strided_pct, 71.0);
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn table2_values_match_prose() {
        // §6: "for trfd the extra bandwidth required is as high as 96%".
        assert_eq!(benchmark("trfd").unwrap().eb_basic_pct, 96.0);
        // §6.1: "EB falls from 158% to 37%" for fftpde.
        assert_eq!(benchmark("fftpde").unwrap().eb_basic_pct, 158.0);
        assert_eq!(benchmark("fftpde").unwrap().eb_filtered_pct, 37.0);
        // §6.1: appbt "hit rate drops from 65% to 45%".
        assert_eq!(benchmark("appbt").unwrap().hit_basic_pct, 65.0);
        assert_eq!(benchmark("appbt").unwrap().hit_filtered_pct, 45.0);
    }

    #[test]
    fn fig8_values_match_prose() {
        // §7.1: fftpde 26→71, appsp 33→65, trfd 50→65.
        for (name, basic, strided) in [
            ("fftpde", 26.0, 71.0),
            ("appsp", 33.0, 65.0),
            ("trfd", 50.0, 65.0),
        ] {
            let b = benchmark(name).unwrap();
            assert_eq!(b.hit_basic_pct, basic, "{name}");
            assert_eq!(b.hit_strided_pct, strided, "{name}");
        }
    }

    #[test]
    fn table4_has_five_benchmark_pairs() {
        assert_eq!(TABLE4.len(), 10);
        for pair in TABLE4.chunks(2) {
            assert_eq!(pair[0].name, pair[1].name);
            assert!(!pair[0].large && pair[1].large);
        }
        // The cgm anomaly: larger input, *smaller* equivalent cache.
        let cgm_small = &TABLE4[6];
        let cgm_large = &TABLE4[7];
        assert!(cgm_large.min_l2_bytes < cgm_small.min_l2_bytes);
        assert!(cgm_large.stream_hit_pct < cgm_small.stream_hit_pct);
    }

    #[test]
    fn every_benchmark_has_a_table3_tail() {
        for b in &BENCHMARKS {
            assert!(b.len_1_5_pct + b.len_over_20_pct <= 100.0, "{}", b.name);
        }
    }
}
