//! The `--profile` artifact: per-phase wall clock and throughput.
//!
//! [`ProfileArtifact`] snapshots the observability span registry
//! ([`streamsim_obs::registry_snapshot`]) and renders it through the
//! ordinary [`Artifact`](crate::Artifact) machinery, so a profiling run
//! emits its timing table exactly like any paper table — aligned text
//! in the report, one flat JSON object per phase under `--json`.
//!
//! Registry paths are hierarchical (`report/record` when recording runs
//! on the main thread under a driver span, bare `record` when it runs on
//! a `parallel_map` worker, whose span stack starts empty). The profile
//! aggregates by *leaf* name so each engine phase — `record`, `replay`,
//! `report` — accumulates into one row regardless of which thread did
//! the work.

use std::collections::BTreeMap;

use streamsim_obs::PhaseStat;

use crate::sink::{col, Artifact, ArtifactSink, Cell};

/// A snapshot of per-phase timings, ready to render as an artifact.
///
/// # Example
///
/// ```
/// use streamsim_core::ProfileArtifact;
/// use streamsim_obs as obs;
///
/// obs::set_level(obs::Level::Info);
/// obs::reset();
/// {
///     let mut span = obs::span("replay");
///     span.items(1000);
/// }
/// let profile = ProfileArtifact::capture();
/// assert_eq!(profile.phases().len(), 1);
/// assert_eq!(profile.phases()[0].0, "replay");
/// # obs::set_level(obs::Level::Off);
/// # obs::reset();
/// ```
#[derive(Clone, Debug)]
pub struct ProfileArtifact {
    phases: Vec<(String, PhaseStat)>,
}

impl ProfileArtifact {
    /// Captures the current span registry, aggregated by leaf phase
    /// name and sorted alphabetically.
    pub fn capture() -> Self {
        let mut by_leaf: BTreeMap<String, PhaseStat> = BTreeMap::new();
        for (path, stat) in streamsim_obs::registry_snapshot() {
            let leaf = path.rsplit('/').next().unwrap_or(path.as_str()).to_owned();
            let agg = by_leaf.entry(leaf).or_default();
            agg.calls += stat.calls;
            agg.nanos += stat.nanos;
            agg.items += stat.items;
        }
        ProfileArtifact {
            phases: by_leaf.into_iter().collect(),
        }
    }

    /// The aggregated `(phase, stat)` rows.
    pub fn phases(&self) -> &[(String, PhaseStat)] {
        &self.phases
    }

    /// Whether no phase recorded any span (e.g. observability was off).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

impl Artifact for ProfileArtifact {
    fn artifact(&self) -> &'static str {
        "profile"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "phases",
            "Profile: wall clock and throughput per engine phase",
            &[
                col("phase", "phase"),
                col("calls", "calls"),
                col("wall ms", "wall_ms"),
                col("items", "items"),
                col("Mitem/s", "mitems_per_s"),
            ],
        );
        for (phase, stat) in &self.phases {
            let rate = stat.mitems_per_sec();
            sink.row(&[
                Cell::text(phase.clone()),
                Cell::int(stat.calls as i64, stat.calls.to_string()),
                Cell::num(stat.wall_ms(), format!("{:.2}", stat.wall_ms())),
                Cell::int(stat.items as i64, stat.items.to_string()),
                match rate {
                    Some(r) => Cell::num(r, format!("{r:.2}")),
                    None => Cell::text("-"),
                },
            ]);
        }
        if self.phases.is_empty() {
            sink.note("(no spans recorded — is STREAMSIM_LOG at least info?)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{render_json_lines, render_text};

    fn stat(calls: u64, nanos: u128, items: u64) -> PhaseStat {
        PhaseStat {
            calls,
            nanos,
            items,
        }
    }

    #[test]
    fn renders_phases_in_both_sinks() {
        let profile = ProfileArtifact {
            phases: vec![
                ("record".to_owned(), stat(3, 2_000_000, 4_000)),
                ("replay".to_owned(), stat(5, 1_000_000, 0)),
            ],
        };
        let text = render_text(&profile);
        assert!(text.contains("record"), "{text}");
        assert!(text.contains("2.00"), "{text}");
        let lines = render_json_lines(&profile);
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"artifact\":\"profile\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"phase\":\"record\""), "{}", lines[0]);
        assert!(lines[1].contains("\"mitems_per_s\":\"-\""), "{}", lines[1]);
    }

    #[test]
    fn capture_aggregates_by_leaf_name() {
        use streamsim_obs as obs;
        // Unique span names so concurrent tests in this binary (which
        // may open their own spans while the level is raised) cannot
        // perturb the aggregation under inspection.
        obs::set_level(obs::Level::Info);
        {
            let _outer = obs::span("prof_test_outer");
            let mut nested = obs::span("prof_test_leaf");
            nested.items(10);
        }
        {
            let mut bare = obs::span("prof_test_leaf");
            bare.items(5);
        }
        let profile = ProfileArtifact::capture();
        let leaf = profile
            .phases()
            .iter()
            .find(|(name, _)| name == "prof_test_leaf")
            .expect("leaf phase present");
        assert_eq!(leaf.1.calls, 2, "nested and bare paths merge by leaf");
        assert_eq!(leaf.1.items, 15);
        obs::set_level(obs::Level::Off);
    }

    #[test]
    fn empty_capture_notes_the_likely_cause() {
        let profile = ProfileArtifact { phases: vec![] };
        assert!(profile.is_empty());
        let text = render_text(&profile);
        assert!(text.contains("STREAMSIM_LOG"), "{text}");
    }
}
