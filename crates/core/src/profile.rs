//! The `--profile` artifact: per-phase wall clock, throughput and
//! latency quantiles.
//!
//! [`ProfileArtifact`] snapshots the observability span registry
//! ([`streamsim_obs::registry_hists`]) and renders it through the
//! ordinary [`Artifact`](crate::Artifact) machinery, so a profiling run
//! emits its timing table exactly like any paper table — aligned text
//! in the report, one flat JSON object per phase under `--json`.
//!
//! Registry paths are hierarchical (`report/record` when recording runs
//! on the main thread under a driver span, bare `record` when it runs on
//! a `parallel_map` worker, whose span stack starts empty). The profile
//! aggregates by *leaf* name so each engine phase — `record`, `replay`,
//! `report` — accumulates into one row regardless of which thread did
//! the work. Since obs v2 every registry entry carries a log-linear
//! duration histogram; merging those histograms is bucket-wise addition
//! (deterministic regardless of thread count), and the merged
//! distribution yields the `p50`/`p90`/`p99`/`max` columns.

use std::collections::BTreeMap;

use streamsim_obs::{Hist, PhaseStat};

use crate::sink::{col, Artifact, ArtifactSink, Cell};

/// One aggregated profile row: an engine phase with its total stat and
/// per-call duration quantiles (nanoseconds; rendered as milliseconds).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfilePhase {
    /// Leaf phase name (`record`, `replay`, `report`, ...).
    pub name: String,
    /// Aggregate calls / wall clock / items across every path ending in
    /// this leaf.
    pub stat: PhaseStat,
    /// Median per-call duration in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile per-call duration in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile per-call duration in nanoseconds.
    pub p99_ns: u64,
    /// Longest single call in nanoseconds.
    pub max_ns: u64,
}

impl ProfilePhase {
    fn from_hist(name: String, stat: PhaseStat, hist: &Hist) -> Self {
        ProfilePhase {
            name,
            stat,
            p50_ns: hist.quantile(0.50),
            p90_ns: hist.quantile(0.90),
            p99_ns: hist.quantile(0.99),
            max_ns: hist.max().unwrap_or(0),
        }
    }
}

/// A snapshot of per-phase timings, ready to render as an artifact.
///
/// # Example
///
/// ```
/// use streamsim_core::ProfileArtifact;
/// use streamsim_obs as obs;
///
/// obs::set_level(obs::Level::Info);
/// obs::reset();
/// {
///     let mut span = obs::span("replay");
///     span.items(1000);
/// }
/// let profile = ProfileArtifact::capture();
/// assert_eq!(profile.phases().len(), 1);
/// assert_eq!(profile.phases()[0].name, "replay");
/// assert!(profile.phases()[0].max_ns >= profile.phases()[0].p50_ns);
/// # obs::set_level(obs::Level::Off);
/// # obs::reset();
/// ```
#[derive(Clone, Debug)]
pub struct ProfileArtifact {
    phases: Vec<ProfilePhase>,
}

impl ProfileArtifact {
    /// Captures the current span registry, aggregated by leaf phase
    /// name and sorted alphabetically. Per-path duration histograms
    /// merge bucket-wise, so the quantile columns are exact over the
    /// merged distribution no matter which threads recorded the spans.
    pub fn capture() -> Self {
        let mut by_leaf: BTreeMap<String, (PhaseStat, Hist)> = BTreeMap::new();
        for (path, stat, hist) in streamsim_obs::registry_hists() {
            let leaf = path.rsplit('/').next().unwrap_or(path.as_str()).to_owned();
            let (agg, agg_hist) = by_leaf.entry(leaf).or_default();
            agg.calls += stat.calls;
            agg.nanos += stat.nanos;
            agg.items += stat.items;
            agg_hist.merge(&hist);
        }
        ProfileArtifact {
            phases: by_leaf
                .into_iter()
                .map(|(name, (stat, hist))| ProfilePhase::from_hist(name, stat, &hist))
                .collect(),
        }
    }

    /// The aggregated phase rows.
    pub fn phases(&self) -> &[ProfilePhase] {
        &self.phases
    }

    /// Total span-declared items across every phase: the span-derived
    /// `run_steps` work count the report layer stamps into the trailing
    /// manifest record.
    pub fn total_items(&self) -> u64 {
        self.phases.iter().map(|p| p.stat.items).sum()
    }

    /// Whether no phase recorded any span (e.g. observability was off).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

impl Artifact for ProfileArtifact {
    fn artifact(&self) -> &'static str {
        "profile"
    }

    fn emit(&self, sink: &mut dyn ArtifactSink) {
        sink.begin_table(
            self.artifact(),
            "phases",
            "Profile: wall clock, throughput and per-call latency per engine phase",
            &[
                col("phase", "phase"),
                col("calls", "calls"),
                col("wall ms", "wall_ms"),
                col("items", "items"),
                col("Mitem/s", "mitems_per_s"),
                col("p50 ms", "p50_ms"),
                col("p90 ms", "p90_ms"),
                col("p99 ms", "p99_ms"),
                col("max ms", "max_ms"),
            ],
        );
        for phase in &self.phases {
            let stat = &phase.stat;
            let rate = stat.mitems_per_sec();
            sink.row(&[
                Cell::text(phase.name.clone()),
                Cell::int(stat.calls as i64, stat.calls.to_string()),
                Cell::num(stat.wall_ms(), format!("{:.2}", stat.wall_ms())),
                Cell::int(stat.items as i64, stat.items.to_string()),
                match rate {
                    Some(r) => Cell::num(r, format!("{r:.2}")),
                    None => Cell::text("-"),
                },
                Cell::num(ms(phase.p50_ns), format!("{:.3}", ms(phase.p50_ns))),
                Cell::num(ms(phase.p90_ns), format!("{:.3}", ms(phase.p90_ns))),
                Cell::num(ms(phase.p99_ns), format!("{:.3}", ms(phase.p99_ns))),
                Cell::num(ms(phase.max_ns), format!("{:.3}", ms(phase.max_ns))),
            ]);
        }
        if self.phases.is_empty() {
            sink.note("(no spans recorded — is STREAMSIM_LOG at least info?)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{render_json_lines, render_text};

    fn stat(calls: u64, nanos: u128, items: u64) -> PhaseStat {
        PhaseStat {
            calls,
            nanos,
            items,
        }
    }

    fn phase(name: &str, stat: PhaseStat) -> ProfilePhase {
        ProfilePhase {
            name: name.to_owned(),
            stat,
            p50_ns: 500_000,
            p90_ns: 900_000,
            p99_ns: 990_000,
            max_ns: 1_000_000,
        }
    }

    #[test]
    fn renders_phases_in_both_sinks() {
        let profile = ProfileArtifact {
            phases: vec![
                phase("record", stat(3, 2_000_000, 4_000)),
                phase("replay", stat(5, 1_000_000, 0)),
            ],
        };
        let text = render_text(&profile);
        assert!(text.contains("record"), "{text}");
        assert!(text.contains("2.00"), "{text}");
        assert!(text.contains("p99 ms"), "{text}");
        let lines = render_json_lines(&profile);
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"artifact\":\"profile\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"phase\":\"record\""), "{}", lines[0]);
        assert!(lines[0].contains("\"p50_ms\":0.5"), "{}", lines[0]);
        assert!(lines[0].contains("\"max_ms\":1"), "{}", lines[0]);
        assert!(lines[1].contains("\"mitems_per_s\":\"-\""), "{}", lines[1]);
    }

    #[test]
    fn capture_aggregates_by_leaf_name() {
        use streamsim_obs as obs;
        // Unique span names so concurrent tests in this binary (which
        // may open their own spans while the level is raised) cannot
        // perturb the aggregation under inspection.
        obs::set_level(obs::Level::Info);
        {
            let _outer = obs::span("prof_test_outer");
            let mut nested = obs::span("prof_test_leaf");
            nested.items(10);
        }
        {
            let mut bare = obs::span("prof_test_leaf");
            bare.items(5);
        }
        let profile = ProfileArtifact::capture();
        let leaf = profile
            .phases()
            .iter()
            .find(|p| p.name == "prof_test_leaf")
            .expect("leaf phase present");
        assert_eq!(leaf.stat.calls, 2, "nested and bare paths merge by leaf");
        assert_eq!(leaf.stat.items, 15);
        // Two calls merged from two registry paths: the quantiles come
        // from the merged histogram, so the extremes stay ordered.
        assert!(leaf.p50_ns <= leaf.max_ns);
        assert!(profile.total_items() >= 15);
        obs::set_level(obs::Level::Off);
    }

    #[test]
    fn empty_capture_notes_the_likely_cause() {
        let profile = ProfileArtifact { phases: vec![] };
        assert!(profile.is_empty());
        assert_eq!(profile.total_items(), 0);
        let text = render_text(&profile);
        assert!(text.contains("STREAMSIM_LOG"), "{text}");
    }
}
