//! Bridge between recorded miss traces and the analytical models in
//! `streamsim-model`.
//!
//! The model crate is deliberately ignorant of simulator types — it
//! consumes raw block/word indices and returns plain estimates. This
//! module does the translation in both directions: a [`MissTrace`] is
//! walked once into a [`LocalityProfile`] ([`profile_trace`]), and the
//! simulator's [`StreamConfig`] / [`CacheConfig`] are mapped onto the
//! model's geometry types ([`stream_geometry`], [`l2_geometry`]).
//!
//! Not every simulator configuration is modelled: the profile is taken
//! at the trace's own L1 block and the default word size, and the
//! predictors only understand the paper's head-only match policy and
//! its three allocation policies. [`stream_geometry`] returns `None`
//! for anything else, and callers fall back to simulation for those
//! cells — the model prunes work, it never silently mis-scores a
//! configuration it cannot represent.

use streamsim_cache::CacheConfig;
use streamsim_model::{AllocModel, L2Geometry, LocalityProfile, ProfileBuilder, StreamGeometry};
use streamsim_streams::{Allocation, MatchPolicy, StreamConfig};
use streamsim_trace::WordSize;

use crate::{MissEvent, MissTrace};

/// Builds `trace`'s locality profile in one pass over the events.
///
/// The profile is taken at the trace's L1 block granularity with the
/// default word size (the granularities every paper sweep uses), and
/// carries the recorded L1's exact reference/miss counts.
pub fn profile_trace(trace: &MissTrace) -> LocalityProfile {
    let mut span = streamsim_obs::span("locality");
    span.items(trace.events().len() as u64);
    let block = trace.l1_block();
    let word = WordSize::default();
    let mut builder = ProfileBuilder::new(block.bytes(), word.bytes(), trace.events().len());
    for event in trace.events() {
        match *event {
            MissEvent::Fetch { addr, .. } => {
                builder.fetch(addr.block(block).index(), addr.word(word).index());
            }
            MissEvent::Writeback { base } => {
                builder.writeback(base.block(block).index());
            }
        }
    }
    let mut profile = builder.finish();
    profile.l1_refs = trace.l1().refs();
    profile.l1_misses = trace.l1().misses();
    profile
}

/// Maps a simulator stream configuration onto the model's geometry, or
/// `None` if the configuration is outside the modelled space (block or
/// word geometry differing from the profile's, a non-head-only match
/// policy, or the min-delta ablation allocator).
pub fn stream_geometry(profile: &LocalityProfile, config: &StreamConfig) -> Option<StreamGeometry> {
    if config.block().bytes() != profile.l1_block_bytes
        || config.word().bytes() != profile.word_bytes
        || config.match_policy() != MatchPolicy::HeadOnly
    {
        return None;
    }
    let alloc = match config.allocation() {
        Allocation::OnMiss => AllocModel::OnMiss,
        Allocation::UnitFilter { entries } => AllocModel::UnitFilter { entries },
        Allocation::UnitAndStrideFilters {
            unit_entries,
            czone_bits,
            ..
        } => AllocModel::UnitStride {
            entries: unit_entries,
            czone_bits,
        },
        _ => return None,
    };
    Some(StreamGeometry {
        num_streams: config.num_streams(),
        depth: config.depth(),
        alloc,
    })
}

/// Maps a secondary-cache configuration onto the model's geometry.
///
/// The model assumes LRU replacement (the simulator's secondary-cache
/// default); other replacement policies are approximated by the same
/// curve.
pub fn l2_geometry(config: &CacheConfig) -> L2Geometry {
    L2Geometry {
        bytes: config.size_bytes(),
        assoc: config.assoc() as u64,
        block_bytes: config.block().bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_miss_trace, RecordOptions};
    use streamsim_model::predict_streams;
    use streamsim_trace::BlockSize;
    use streamsim_workloads::generators::SequentialSweep;

    fn trace() -> MissTrace {
        let w = SequentialSweep {
            arrays: 2,
            bytes_per_array: 128 * 1024,
            passes: 2,
            elem: 8,
        };
        record_miss_trace(&w, &RecordOptions::default()).unwrap()
    }

    #[test]
    fn profile_counts_match_the_trace() {
        let t = trace();
        let p = profile_trace(&t);
        assert_eq!(p.events, t.events().len() as u64);
        assert_eq!(p.fetches, t.fetches());
        assert_eq!(p.writebacks, t.writebacks());
        assert_eq!(p.l1_block_bytes, t.l1_block().bytes());
        assert_eq!(p.l1_refs, t.l1().refs());
        assert_eq!(p.l1_misses, t.l1().misses());
        assert!((p.l1_miss_rate() - t.l1().misses() as f64 / t.l1().refs() as f64).abs() < 1e-12);
    }

    #[test]
    fn sequential_sweep_predicts_high_stream_hit_rate() {
        let t = trace();
        let p = profile_trace(&t);
        let config = StreamConfig::paper_basic(4).unwrap();
        let geom = stream_geometry(&p, &config).unwrap();
        let est = predict_streams(&p, geom);
        let measured = crate::run_streams(&t, config).hit_rate();
        assert!(
            (est.hit_rate - measured).abs() < 0.05,
            "model {est:?} vs measured {measured}"
        );
    }

    #[test]
    fn unmodelled_configurations_are_rejected() {
        let p = profile_trace(&trace());
        let odd_block = StreamConfig::paper_basic(4)
            .unwrap()
            .with_block(BlockSize::new(64).unwrap());
        assert!(stream_geometry(&p, &odd_block).is_none());
        let min_delta = StreamConfig::new(
            4,
            2,
            Allocation::MinDelta {
                entries: 16,
                max_stride_words: 64,
            },
        )
        .unwrap();
        assert!(stream_geometry(&p, &min_delta).is_none());
    }

    #[test]
    fn geometry_mapping_preserves_parameters() {
        let p = profile_trace(&trace());
        let strided = StreamConfig::paper_strided(6, 14).unwrap();
        let geom = stream_geometry(&p, &strided).unwrap();
        assert_eq!(geom.num_streams, 6);
        assert_eq!(geom.depth, strided.depth());
        assert_eq!(
            geom.alloc,
            AllocModel::UnitStride {
                entries: 16,
                czone_bits: 14
            }
        );
        let cache = CacheConfig::new(1 << 20, 2, BlockSize::new(64).unwrap()).unwrap();
        let l2 = l2_geometry(&cache);
        assert_eq!(l2.bytes, 1 << 20);
        assert_eq!(l2.assoc, 2);
        assert_eq!(l2.block_bytes, 64);
    }
}
