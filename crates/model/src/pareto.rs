//! Pareto-frontier selection over (hit rate, extra bandwidth)
//! objective pairs, plus the tolerance-banded pruning rule the
//! pre-screened sweep relies on.
//!
//! The sweep maximizes hit rate and minimizes extra bandwidth. A cell
//! `p` is *dominated* by `q` when `q` is at least as good on both axes
//! and strictly better on one. Pruning with predicted scores uses a
//! relaxed rule: `p` is dropped only when some `q` beats it by more
//! than a band on *both* axes. If the band is at least twice the
//! model's worst-case per-axis error, every true-frontier cell
//! survives pruning: for a true-frontier `p` and any `q`, the true
//! scores satisfy `q.hit <= p.hit or q.eb >= p.eb` (up to ties), so the
//! predicted gap can exceed the band on both axes only if the model
//! erred by more than half the band on some axis — a contradiction.

/// One sweep cell's objective pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objectives {
    /// Stream hit rate — higher is better.
    pub hit: f64,
    /// Extra-bandwidth fraction — lower is better.
    pub eb: f64,
}

/// Per-axis pruning slack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Band {
    /// Slack on the hit-rate axis.
    pub hit: f64,
    /// Slack on the extra-bandwidth axis.
    pub eb: f64,
}

/// Marks the exact Pareto frontier: `true` for every cell no other
/// cell strictly dominates. Ties survive on both sides (two identical
/// points are both frontier members). O(n²), deterministic.
pub fn frontier(cells: &[Objectives]) -> Vec<bool> {
    cells
        .iter()
        .map(|p| {
            !cells
                .iter()
                .any(|q| q.hit >= p.hit && q.eb <= p.eb && (q.hit > p.hit || q.eb < p.eb))
        })
        .collect()
}

/// Marks the cells to keep under banded pruning: a cell is dropped
/// only when some other cell exceeds it by more than `band.hit` on hit
/// rate *and* undercuts it by more than `band.eb` on bandwidth.
/// Zero bands reduce to keeping everything non-strictly-dominated on
/// both axes (a superset of [`frontier`]).
pub fn keep_with_band(cells: &[Objectives], band: Band) -> Vec<bool> {
    cells
        .iter()
        .map(|p| {
            !cells.iter().any(|q| {
                q.hit >= p.hit + band.hit
                    && q.eb <= p.eb - band.eb
                    // Strictness on one axis keeps ties (and, at zero
                    // band, the cell itself) from pruning a cell.
                    && (q.hit > p.hit || q.eb < p.eb)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(hit: f64, eb: f64) -> Objectives {
        Objectives { hit, eb }
    }

    #[test]
    fn frontier_marks_non_dominated() {
        let cells = [
            o(0.9, 0.5), // frontier: best hit
            o(0.5, 0.1), // frontier: best eb
            o(0.7, 0.3), // frontier: in between
            o(0.6, 0.4), // dominated by (0.7, 0.3)
            o(0.5, 0.5), // dominated
        ];
        assert_eq!(frontier(&cells), [true, true, true, false, false]);
    }

    #[test]
    fn ties_stay_on_the_frontier() {
        let cells = [o(0.8, 0.2), o(0.8, 0.2), o(0.1, 0.9)];
        assert_eq!(frontier(&cells), [true, true, false]);
    }

    #[test]
    fn band_keeps_near_frontier_cells() {
        let cells = [
            o(0.80, 0.20), // frontier
            o(0.79, 0.21), // within band of the frontier point
            o(0.50, 0.60), // far off
        ];
        let band = Band {
            hit: 0.05,
            eb: 0.05,
        };
        assert_eq!(keep_with_band(&cells, band), [true, true, false]);
        // With zero band the near cell is still kept only if not
        // strictly beaten on both axes — here it is beaten.
        let tight = keep_with_band(&cells, Band { hit: 0.0, eb: 0.0 });
        assert_eq!(tight, [true, false, false]);
    }

    #[test]
    fn banded_keep_is_superset_of_frontier() {
        let cells: Vec<Objectives> = (0..50)
            .map(|i| {
                let x = i as f64 / 50.0;
                o(x, (1.0 - x) * (0.5 + 0.5 * ((i * 7919 % 13) as f64 / 13.0)))
            })
            .collect();
        let f = frontier(&cells);
        let k = keep_with_band(
            &cells,
            Band {
                hit: 0.02,
                eb: 0.02,
            },
        );
        for (i, (&on_f, &kept)) in f.iter().zip(k.iter()).enumerate() {
            assert!(!on_f || kept, "frontier cell {i} pruned");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(frontier(&[]).is_empty());
        assert!(keep_with_band(&[], Band { hit: 0.1, eb: 0.1 }).is_empty());
    }
}
