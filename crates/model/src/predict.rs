//! Closed-form performance predictors over a [`LocalityProfile`].
//!
//! Given a profile measured once per workload, these functions estimate
//! in microseconds what a full replay computes in milliseconds:
//!
//! * [`predict_streams`] — hit rate and extra-bandwidth fraction of a
//!   stream-buffer system (allocate-on-miss, unit-filtered, or
//!   unit + stride-filtered) with any buffer count and depth, from the
//!   stream-stack-distance histograms.
//! * [`predict_l2`] — hit rate of a set-associative LRU secondary
//!   cache, from the reuse-distance histogram via the standard
//!   binomial/Poisson set-occupancy approximation.
//!
//! The estimates are approximations with documented error bounds (see
//! the validation harness in the root crate's tests); their job is to
//! *rank* configurations well enough that pruning a sweep to the
//! predicted Pareto frontier plus a tolerance band never drops a true
//! frontier point.

use crate::profile::{LocalityProfile, StreamProfile};

/// Stream-allocation policy, mirrored from the simulator's
/// `Allocation` but carrying only what the model consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocModel {
    /// Allocate a buffer on every stream miss (§4 baseline).
    OnMiss,
    /// Allocate only on the second consecutive-block miss, gated by a
    /// unit-stride filter with this many entries (§6).
    UnitFilter {
        /// Filter table entries.
        entries: usize,
    },
    /// Unit filter plus the §7 czone stride filter.
    UnitStride {
        /// Unit filter table entries.
        entries: usize,
        /// Czone size in bits of the word address.
        czone_bits: u32,
    },
}

/// A stream-buffer system geometry to score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamGeometry {
    /// Number of stream buffers.
    pub num_streams: usize,
    /// Entries per buffer.
    pub depth: usize,
    /// Allocation policy.
    pub alloc: AllocModel,
}

/// Predicted stream-system metrics, on the same scale as the
/// simulator's `StreamStats` accessors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamEstimate {
    /// Predicted fraction of L1 misses served by a stream buffer.
    pub hit_rate: f64,
    /// Predicted extra-bandwidth fraction by the paper's closed form:
    /// `allocations x depth / lookups`.
    pub extra_bandwidth: f64,
}

/// Unit-filtered hits and allocations: position-≥3 continuations whose
/// allocation distance fits in `n` buffers hit; runs whose second fetch
/// arrives while the filter entry is still resident allocate.
fn unit_filter_parts(s: &StreamProfile, n: usize, entries: usize) -> (f64, f64) {
    (s.pos3p_alloc_below(n) as f64, s.pos2_below(entries) as f64)
}

/// Predicts hit rate and extra bandwidth for `geom` against the
/// profiled workload. Returns zeros for an empty fetch stream.
pub fn predict_streams(profile: &LocalityProfile, geom: StreamGeometry) -> StreamEstimate {
    let s = &profile.streams;
    if s.fetches == 0 {
        return StreamEstimate {
            hit_rate: 0.0,
            extra_bandwidth: 0.0,
        };
    }
    let n = geom.num_streams;
    let fetches = s.fetches as f64;

    let (hits, allocs) = match geom.alloc {
        AllocModel::OnMiss => {
            // Every miss allocates, so a continuation hits iff fewer
            // than n distinct runs were touched since the run's last
            // fetch. Evicted continuations re-allocate instantly, so
            // there is no retrain penalty.
            let hits = (s.pos2_below(n) + s.pos3p_below(n)) as f64;
            (hits, fetches - hits)
        }
        AllocModel::UnitFilter { entries } => {
            // Only establishments (position-2 continuations) allocate,
            // so a buffer survives any interruption during which fewer
            // than n runs established; position-2 fetches themselves
            // allocate rather than hit.
            unit_filter_parts(s, n, entries)
        }
        AllocModel::UnitStride {
            entries,
            czone_bits,
        } => {
            let (unit_hits, unit_allocs) = unit_filter_parts(s, n, entries);
            let cz = s.nearest_czone(czone_bits);
            let hits = unit_hits + cz.cont_below(n) as f64;
            (hits, unit_allocs + cz.trained as f64)
        }
    };

    StreamEstimate {
        hit_rate: (hits / fetches).clamp(0.0, 1.0),
        extra_bandwidth: (allocs.max(0.0) * geom.depth as f64 / fetches).max(0.0),
    }
}

/// A secondary-cache geometry to score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Geometry {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity (ways).
    pub assoc: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
}

/// Predicted secondary-cache metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct L2Estimate {
    /// Predicted fraction of L2 accesses (fetches + write-backs) that
    /// hit, matching `CacheStats::hit_rate`.
    pub hit_rate: f64,
}

/// `P(X < assoc)` for `X ~ Poisson(lambda)` — the probability that
/// fewer than `assoc` of the intervening distinct blocks landed in the
/// victim's set, i.e. that an LRU set-associative cache still holds the
/// block.
fn poisson_hit(assoc: u64, lambda: f64) -> f64 {
    let mut term = (-lambda).exp();
    let mut sum = 0.0;
    for i in 0..assoc {
        sum += term;
        term *= lambda / (i + 1) as f64;
    }
    sum.clamp(0.0, 1.0)
}

/// Predicts the hit rate of a set-associative LRU secondary cache from
/// the reuse-distance histogram nearest `geom.block_bytes`.
///
/// Fully associative caches use the exact Mattson inclusion property
/// (hit iff stack distance < capacity); set-associative ones weight
/// each distance by the Poisson set-occupancy survival probability.
/// Cold misses never hit. Returns zero for an empty trace.
pub fn predict_l2(profile: &LocalityProfile, geom: L2Geometry) -> L2Estimate {
    // Snap to the profiled granularity and express capacity in its
    // units so distances and capacity agree.
    let hist = profile.reuse_at(geom.block_bytes);
    let unit_bytes = profile.l1_block_bytes.max(1).saturating_mul(
        match profile.reuse.iter().position(|h| std::ptr::eq(h, hist)) {
            Some(i) => crate::profile::REUSE_GRANULARITIES[i],
            None => 1,
        },
    );
    let accesses = hist.accesses();
    if accesses == 0 {
        return L2Estimate { hit_rate: 0.0 };
    }
    let blocks = (geom.bytes / unit_bytes).max(1);
    let assoc = geom.assoc.clamp(1, blocks);
    let sets = (blocks / assoc).max(1);

    let hits = if sets == 1 {
        hist.count_below(blocks)
    } else {
        let mut h = 0.0;
        hist.for_each_bucket(|d, c| {
            let p = if d < assoc as f64 {
                1.0
            } else {
                poisson_hit(assoc, d / sets as f64)
            };
            h += p * c as f64;
        });
        h
    };
    L2Estimate {
        hit_rate: (hits / accesses as f64).clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileBuilder;

    fn sequential_profile(runs: u64, len: u64) -> LocalityProfile {
        // `runs` far-apart unit runs of `len` blocks each, visited
        // round-robin so every continuation sees `runs - 1` others.
        let mut b = ProfileBuilder::new(32, 4, (runs * len) as usize);
        for step in 0..len {
            for r in 0..runs {
                let block = r * 1_000_000 + step;
                b.fetch(block, block * 8);
            }
        }
        b.finish()
    }

    #[test]
    fn on_miss_hits_match_buffer_count() {
        let p = sequential_profile(4, 50);
        // 4 interleaved runs: with >= 5 buffers every continuation
        // hits; with 4 they also all hit (distance 3 < 4).
        let geom = |n| StreamGeometry {
            num_streams: n,
            depth: 2,
            alloc: AllocModel::OnMiss,
        };
        let e4 = predict_streams(&p, geom(4));
        let e2 = predict_streams(&p, geom(2));
        // 49 continuations per run, 196 of 200 fetches.
        assert!((e4.hit_rate - 196.0 / 200.0).abs() < 1e-9, "{e4:?}");
        assert_eq!(e2.hit_rate, 0.0, "2 buffers can't hold 4 streams");
        // 4 allocations at depth 2 over 200 fetches.
        assert!((e4.extra_bandwidth - 8.0 / 200.0).abs() < 1e-9);
        assert!(e2.extra_bandwidth > e4.extra_bandwidth);
    }

    #[test]
    fn unit_filter_trades_pos2_hits_for_bandwidth() {
        let p = sequential_profile(2, 100);
        let om = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::OnMiss,
            },
        );
        let uf = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::UnitFilter { entries: 16 },
            },
        );
        // The filter forfeits the two position-2 hits...
        assert!(uf.hit_rate < om.hit_rate);
        assert!(uf.hit_rate > 0.9, "long runs still mostly hit: {uf:?}");
        // ...but allocates the same two streams (no isolated misses
        // here), so bandwidth is identical for this trace.
        assert!((uf.extra_bandwidth - om.extra_bandwidth).abs() < 1e-9);
    }

    #[test]
    fn unit_filter_suppresses_isolated_allocations() {
        // One real run drowned in isolated noise.
        let mut b = ProfileBuilder::new(32, 4, 300);
        for i in 0..100u64 {
            b.fetch(10_000 + i, (10_000 + i) * 8); // run
            let noise = 1_000_000 + i * 7919;
            b.fetch(noise, noise * 8); // isolated
        }
        let p = b.finish();
        let om = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::OnMiss,
            },
        );
        let uf = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::UnitFilter { entries: 16 },
            },
        );
        assert!(
            uf.extra_bandwidth < om.extra_bandwidth / 10.0,
            "filter kills noise allocations: uf={uf:?} om={om:?}"
        );
    }

    #[test]
    fn stride_filter_adds_strided_hits() {
        // A long strided (non-unit) run: stride 4 blocks = 32 words.
        let mut b = ProfileBuilder::new(32, 4, 200);
        for i in 0..200u64 {
            let block = i * 4;
            b.fetch(block, block * 8);
        }
        let p = b.finish();
        let uf = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::UnitFilter { entries: 16 },
            },
        );
        let us = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::UnitStride {
                    entries: 16,
                    czone_bits: 12,
                },
            },
        );
        assert_eq!(uf.hit_rate, 0.0, "no unit runs to catch");
        assert!(us.hit_rate > 0.9, "stride filter catches the run: {us:?}");
    }

    #[test]
    fn l2_fully_associative_is_exact_mattson() {
        // 64 distinct blocks touched twice round-robin: distance 63.
        let mut b = ProfileBuilder::new(32, 4, 128);
        for _ in 0..2 {
            for blk in 0..64u64 {
                b.fetch(blk * 100, blk * 800);
            }
        }
        let p = b.finish();
        // Fully associative, capacity 64 blocks of 32B = 2048B.
        let big = predict_l2(
            &p,
            L2Geometry {
                bytes: 2048,
                assoc: 64,
                block_bytes: 32,
            },
        );
        let small = predict_l2(
            &p,
            L2Geometry {
                bytes: 1024,
                assoc: 32,
                block_bytes: 32,
            },
        );
        assert!((big.hit_rate - 64.0 / 128.0).abs() < 1e-9, "{big:?}");
        assert_eq!(small.hit_rate, 0.0, "distance 63 >= 32 blocks");
    }

    #[test]
    fn l2_set_associative_interpolates() {
        let mut b = ProfileBuilder::new(32, 4, 128);
        for _ in 0..2 {
            for blk in 0..64u64 {
                b.fetch(blk * 100, blk * 800);
            }
        }
        let p = b.finish();
        // Same capacity, 4-way: distance 63 across 16 sets gives
        // lambda ~ 3.9; P(< 4) is strictly between 0 and 1.
        let e = predict_l2(
            &p,
            L2Geometry {
                bytes: 2048,
                assoc: 4,
                block_bytes: 32,
            },
        );
        assert!(e.hit_rate > 0.05 && e.hit_rate < 0.5, "{e:?}");
    }

    #[test]
    fn poisson_tail_sanity() {
        assert!((poisson_hit(1, 0.0) - 1.0).abs() < 1e-12);
        assert!(poisson_hit(4, 0.1) > 0.99);
        assert!(poisson_hit(4, 100.0) < 1e-12);
        assert!(poisson_hit(8, 4.0) > poisson_hit(4, 4.0));
    }

    #[test]
    fn empty_profile_predicts_zero() {
        let p = ProfileBuilder::new(32, 4, 0).finish();
        let e = predict_streams(
            &p,
            StreamGeometry {
                num_streams: 4,
                depth: 2,
                alloc: AllocModel::OnMiss,
            },
        );
        assert_eq!(e.hit_rate, 0.0);
        assert_eq!(e.extra_bandwidth, 0.0);
        let l2 = predict_l2(
            &p,
            L2Geometry {
                bytes: 1 << 20,
                assoc: 2,
                block_bytes: 32,
            },
        );
        assert_eq!(l2.hit_rate, 0.0);
    }
}
