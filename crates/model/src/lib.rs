//! Analytical locality models for streamsim.
//!
//! The simulator answers "how does geometry X perform on workload W?"
//! by replaying W's recorded miss trace against X — exact, but linear
//! in trace length per cell, which makes thousand-cell design-space
//! sweeps expensive. This crate answers the same question in closed
//! form from a [`LocalityProfile`] measured in **one** extra pass over
//! the trace:
//!
//! * [`ProfileBuilder`] extracts reuse-distance histograms (Mattson
//!   stack distances over a Fenwick tree) and a unit-run / stride
//!   profile of the fetch stream, including stream-stack-distance
//!   histograms that capture LRU buffer reallocation exactly.
//! * [`predict_streams`] / [`predict_l2`] turn the profile into hit
//!   rate and extra-bandwidth estimates for *any* stream-buffer or
//!   secondary-cache geometry — microseconds per cell instead of a
//!   full replay.
//! * [`pareto`] selects the predicted Pareto frontier plus a tolerance
//!   band, so a sweep needs to simulate only the cells that could
//!   plausibly be optimal.
//!
//! The crate is hermetic by construction: no dependencies, no clocks,
//! no hash-order nondeterminism (`BTreeMap` only). Profiles and
//! predictions are pure functions of the event stream, byte-identical
//! across runs, threads and executors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fenwick;
pub mod hist;
pub mod pareto;
pub mod predict;
pub mod profile;

pub use fenwick::Fenwick;
pub use hist::DistHist;
pub use pareto::{frontier, keep_with_band, Band, Objectives};
pub use predict::{
    predict_l2, predict_streams, AllocModel, L2Estimate, L2Geometry, StreamEstimate, StreamGeometry,
};
pub use profile::{
    CzoneSketch, LocalityProfile, ProfileBuilder, StreamProfile, CZONE_GRID, REUSE_GRANULARITIES,
    SD_BUCKETS,
};
