//! One-pass locality profiling of a recorded miss stream.
//!
//! The builder walks the L1 miss/write-back event stream once and
//! extracts everything the closed-form predictors need:
//!
//! * **Reuse profile** — Mattson LRU stack-distance histograms of the
//!   *whole* event stream (fetches and write-backs: a secondary cache
//!   sees both) at 1×, 2× and 4× the L1 block size, computed with a
//!   Fenwick tree over latest-access marks in `O(N log N)`.
//! * **Stream profile** — the fetch stream decomposed into unit-stride
//!   *runs* (maximal chains of misses to consecutive blocks). Each run
//!   continuation is recorded with its position class (second block of
//!   the run vs third-or-later) and two notions of **stream stack
//!   distance** since this run's previous fetch:
//!
//!   - the *touched* distance — distinct other runs fetched in between.
//!     Under allocate-on-miss every miss reallocates a buffer, so a
//!     continuation hits an `n`-buffer LRU system exactly when this is
//!     below `n`.
//!   - the *allocation* distance — run establishments (a run reaching
//!     its second block) in between. Under a unit filter only those
//!     allocate, so buffers survive arbitrarily long interruptions as
//!     long as few new streams establish; this distance, not the
//!     touched one, is the filtered system's eviction pressure.
//!
//!   Either histogram turns into a hit-rate curve for *any* stream
//!   count without simulation.
//! * **Czone sketches** — for a fixed grid of czone sizes, a replica of
//!   the §7 partition FSM counts how many non-unit-stride runs each
//!   czone size would train, and how their continuations distribute
//!   over stream stack distance.
//!
//! The profile is a pure function of the event stream: no clocks, no
//! randomness, no capacity-dependent iteration order (`BTreeMap`
//! throughout), so two builds over the same trace are byte-identical.

use std::collections::BTreeMap;

use crate::fenwick::Fenwick;
use crate::hist::DistHist;

/// Reuse-distance granularities profiled, as multiples of the L1 block
/// size (so a 32-byte L1 block yields 32/64/128-byte histograms).
pub const REUSE_GRANULARITIES: [u64; 3] = [1, 2, 4];

/// Czone sizes (bits of the word address) sketched during profiling;
/// predictions for other sizes snap to the nearest grid point.
pub const CZONE_GRID: [u32; 9] = [8, 10, 12, 14, 16, 18, 20, 22, 24];

/// Stream stack distances `0..SD_BUCKETS` are recorded exactly; larger
/// distances land in one overflow bucket (index `SD_BUCKETS`). No
/// stream system of interest has more buffers than this.
pub const SD_BUCKETS: usize = 64;

/// A trained strided run whose allocation distance reaches this is
/// dropped: its buffer is long gone in every configuration of interest.
const STALE_SD: u64 = SD_BUCKETS as u64;

/// Per-czone-size sketch of the §7 non-unit-stride filter.
#[derive(Clone, Debug, PartialEq)]
pub struct CzoneSketch {
    /// Czone size in bits of the word address.
    pub czone_bits: u32,
    /// Strided streams the czone FSM trains (three constant-stride
    /// misses in one partition).
    pub trained: u64,
    /// Trained-run continuations by allocation distance — unit and
    /// strided establishments since the run's previous fetch (length
    /// [`SD_BUCKETS`]` + 1`; last bucket = overflow).
    pub cont: Vec<u64>,
}

impl CzoneSketch {
    /// Continuations with allocation distance `< n` — the trained
    /// strided fetches that hit with `n` stream buffers.
    pub fn cont_below(&self, n: usize) -> u64 {
        self.cont[..n.min(SD_BUCKETS)].iter().sum()
    }
}

/// Unit-stride run statistics of the fetch stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamProfile {
    /// Demand fetches profiled.
    pub fetches: u64,
    /// Unit-stride runs started (every fetch either continues a run or
    /// starts one).
    pub runs: u64,
    /// Run continuations at position 2 (second consecutive block), by
    /// all-runs stack distance. Length [`SD_BUCKETS`]` + 1`.
    pub pos2: Vec<u64>,
    /// Continuations at position ≥ 3, by all-runs stack distance.
    pub pos3p: Vec<u64>,
    /// Continuations at position ≥ 3, by *allocation* distance — run
    /// establishments (position-2 continuations) since this run's
    /// previous fetch. Only those allocate past a unit filter.
    pub pos3p_alloc: Vec<u64>,
    /// Czone FSM sketches, in [`CZONE_GRID`] order.
    pub czone: Vec<CzoneSketch>,
}

impl StreamProfile {
    /// Position-2 continuations with all-runs stack distance `< n`.
    pub fn pos2_below(&self, n: usize) -> u64 {
        self.pos2[..n.min(SD_BUCKETS)].iter().sum()
    }

    /// Position-≥3 continuations with all-runs stack distance `< n`.
    pub fn pos3p_below(&self, n: usize) -> u64 {
        self.pos3p[..n.min(SD_BUCKETS)].iter().sum()
    }

    /// Position-≥3 continuations with allocation distance `< n`.
    pub fn pos3p_alloc_below(&self, n: usize) -> u64 {
        self.pos3p_alloc[..n.min(SD_BUCKETS)].iter().sum()
    }

    /// Total position-2 continuations.
    pub fn pos2_total(&self) -> u64 {
        self.pos2.iter().sum()
    }

    /// Total position-≥3 continuations.
    pub fn pos3p_total(&self) -> u64 {
        self.pos3p.iter().sum()
    }

    /// The sketch whose czone size is nearest `czone_bits` (ties go to
    /// the smaller size).
    pub fn nearest_czone(&self, czone_bits: u32) -> &CzoneSketch {
        self.czone
            .iter()
            .min_by_key(|s| (s.czone_bits.abs_diff(czone_bits), s.czone_bits))
            .expect("CZONE_GRID is non-empty")
    }
}

/// A workload's complete locality profile: everything the predictors in
/// [`crate::predict`] consume.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalityProfile {
    /// L1 block size in bytes (granularity of fetch events and of
    /// `reuse[0]`).
    pub l1_block_bytes: u64,
    /// Word size in bytes used for stride detection.
    pub word_bytes: u64,
    /// Total events profiled (fetches + write-backs).
    pub events: u64,
    /// Demand fetches (L1 misses) profiled.
    pub fetches: u64,
    /// Write-backs profiled.
    pub writebacks: u64,
    /// References the recorded L1 served (set by the recorder; zero if
    /// unknown).
    pub l1_refs: u64,
    /// Misses the recorded L1 took (set by the recorder; zero if
    /// unknown).
    pub l1_misses: u64,
    /// Reuse-distance histograms over all events, one per entry of
    /// [`REUSE_GRANULARITIES`].
    pub reuse: Vec<DistHist>,
    /// Unit-stride run and czone statistics of the fetch stream.
    pub streams: StreamProfile,
}

impl LocalityProfile {
    /// The recorded L1 miss rate (exact, not modelled): the profile is
    /// computed while recording, so the L1's own answer is simply
    /// carried along. Zero when the recorder did not supply it.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_refs == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_refs as f64
        }
    }

    /// The reuse histogram whose granularity is nearest
    /// `block_bytes / l1_block_bytes` (ties go to the smaller).
    pub fn reuse_at(&self, block_bytes: u64) -> &DistHist {
        let ratio = (block_bytes.max(1)) as f64 / self.l1_block_bytes.max(1) as f64;
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (i, &g) in REUSE_GRANULARITIES.iter().enumerate() {
            let err = (ratio.ln() - (g as f64).ln()).abs();
            if err < best_err {
                best = i;
                best_err = err;
            }
        }
        &self.reuse[best]
    }
}

/// A Mattson LRU stack over one granularity of block indices.
#[derive(Debug)]
struct ReuseStack {
    fen: Fenwick,
    last: BTreeMap<u64, usize>,
    hist: DistHist,
}

impl ReuseStack {
    fn new(capacity: usize) -> Self {
        ReuseStack {
            fen: Fenwick::new(capacity),
            last: BTreeMap::new(),
            hist: DistHist::new(),
        }
    }

    fn touch(&mut self, item: u64, now: usize) {
        match self.last.insert(item, now) {
            Some(prev) => {
                // Marks strictly between prev and now = distinct items
                // touched since = LRU stack distance.
                self.hist.record(self.fen.between(prev, now) as u64);
                self.fen.clear(prev);
            }
            None => self.hist.record_cold(),
        }
        self.fen.set(now);
    }
}

/// One tracked unit-stride run.
#[derive(Clone, Copy, Debug)]
struct Run {
    id: u64,
    /// Blocks fetched so far (1 after the run's first fetch).
    pos: u32,
    /// Allocation clock at this run's latest fetch.
    allocs: u64,
}

/// Per-run last-touch bookkeeping for the all-runs stream stack.
#[derive(Debug)]
struct RunStack {
    /// Marks at every run's latest touch (any position).
    all: Fenwick,
    last_all: BTreeMap<u64, usize>,
}

impl RunStack {
    fn new(capacity: usize) -> Self {
        RunStack {
            all: Fenwick::new(capacity),
            last_all: BTreeMap::new(),
        }
    }
}

/// The §7 czone FSM replica for one grid czone size, plus the expected
/// next words of the strided runs it has trained.
#[derive(Debug)]
struct CzoneState {
    czone_bits: u32,
    /// FIFO partition table: (tag, last word, candidate stride, in
    /// META2). Capacity [`CzoneState::CAPACITY`]; index 0 = oldest.
    table: Vec<(u64, u64, i64, bool)>,
    /// Trained strided runs keyed by their expected next word index:
    /// (stride in words, allocation clock at the run's previous fetch —
    /// unit establishments plus this czone size's own trainings).
    expect: BTreeMap<u64, (i64, u64)>,
    trained: u64,
    cont: Vec<u64>,
}

impl CzoneState {
    /// The paper's filter size; the sketch pins it rather than
    /// parameterising (every experiment uses 16 entries).
    const CAPACITY: usize = 16;

    fn new(czone_bits: u32) -> Self {
        CzoneState {
            czone_bits,
            table: Vec::with_capacity(Self::CAPACITY),
            expect: BTreeMap::new(),
            trained: 0,
            cont: vec![0; SD_BUCKETS + 1],
        }
    }

    /// Mirrors [`CzoneFilter::lookup`]'s FSM: returns the verified
    /// stride (in words) when a third constant-stride miss lands in one
    /// partition.
    fn fsm(&mut self, word: u64) -> Option<i64> {
        let tag = if self.czone_bits >= 64 {
            0
        } else {
            word >> self.czone_bits
        };
        if let Some(pos) = self.table.iter().position(|e| e.0 == tag) {
            let delta = word as i64 - self.table[pos].1 as i64;
            if delta == 0 {
                return None;
            }
            if self.table[pos].3 && delta == self.table[pos].2 {
                self.table.remove(pos);
                return Some(delta);
            }
            self.table[pos].1 = word;
            self.table[pos].2 = delta;
            self.table[pos].3 = true;
            return None;
        }
        if self.table.len() == Self::CAPACITY {
            self.table.remove(0);
        }
        self.table.push((tag, word, 0, false));
        None
    }
}

/// Streaming builder for a [`LocalityProfile`].
///
/// Feed the recorded events in program order via
/// [`fetch`](ProfileBuilder::fetch) and
/// [`writeback`](ProfileBuilder::writeback) (with addresses already
/// split into block and word indices), then call
/// [`finish`](ProfileBuilder::finish).
#[derive(Debug)]
pub struct ProfileBuilder {
    l1_block_bytes: u64,
    word_bytes: u64,
    reuse: Vec<ReuseStack>,
    event_clock: usize,
    fetch_clock: usize,
    fetches: u64,
    writebacks: u64,
    /// Expected next block index → the unit run that predicts it.
    unit_expect: BTreeMap<u64, Run>,
    run_stack: RunStack,
    next_run_id: u64,
    runs: u64,
    /// Run establishments so far — the allocation clock. A unit-
    /// filtered system allocates a buffer exactly at these events.
    alloc_clock: u64,
    pos2: Vec<u64>,
    pos3p: Vec<u64>,
    pos3p_alloc: Vec<u64>,
    czone: Vec<CzoneState>,
}

impl ProfileBuilder {
    /// A builder for a trace of (at most) `capacity_events` events whose
    /// L1 fetches blocks of `l1_block_bytes` and whose stride detection
    /// operates on `word_bytes` words.
    pub fn new(l1_block_bytes: u64, word_bytes: u64, capacity_events: usize) -> Self {
        ProfileBuilder {
            l1_block_bytes,
            word_bytes,
            reuse: REUSE_GRANULARITIES
                .iter()
                .map(|_| ReuseStack::new(capacity_events))
                .collect(),
            event_clock: 0,
            fetch_clock: 0,
            fetches: 0,
            writebacks: 0,
            unit_expect: BTreeMap::new(),
            run_stack: RunStack::new(capacity_events),
            next_run_id: 0,
            runs: 0,
            alloc_clock: 0,
            pos2: vec![0; SD_BUCKETS + 1],
            pos3p: vec![0; SD_BUCKETS + 1],
            pos3p_alloc: vec![0; SD_BUCKETS + 1],
            czone: CZONE_GRID.iter().map(|&b| CzoneState::new(b)).collect(),
        }
    }

    fn touch_reuse(&mut self, block: u64) {
        let now = self.event_clock;
        self.event_clock += 1;
        for (stack, &g) in self.reuse.iter_mut().zip(REUSE_GRANULARITIES.iter()) {
            stack.touch(block / g, now);
        }
    }

    /// A demand fetch of `block` (index at L1 block granularity) whose
    /// missing word has index `word`.
    pub fn fetch(&mut self, block: u64, word: u64) {
        self.touch_reuse(block);
        self.fetches += 1;
        let now = self.fetch_clock;
        self.fetch_clock += 1;

        // Unit-run continuation?
        match self.unit_expect.remove(&block) {
            Some(run) => {
                let pos = run.pos + 1;
                let sd = match self.run_stack.last_all.get(&run.id) {
                    Some(&prev) => self.run_stack.all.between(prev, now) as u64,
                    None => STALE_SD,
                };
                if pos == 2 {
                    self.pos2[(sd as usize).min(SD_BUCKETS)] += 1;
                    // Establishing: a unit-filtered system allocates a
                    // buffer on this fetch. Advance the clock *before*
                    // stamping the run so its own establishment does
                    // not count against its later continuations.
                    self.alloc_clock += 1;
                } else {
                    self.pos3p[(sd as usize).min(SD_BUCKETS)] += 1;
                    let da = self.alloc_clock - run.allocs;
                    self.pos3p_alloc[(da as usize).min(SD_BUCKETS)] += 1;
                }
                // Move the run's mark to this touch.
                if let Some(prev) = self.run_stack.last_all.insert(run.id, now) {
                    self.run_stack.all.clear(prev);
                }
                self.run_stack.all.set(now);
                self.unit_expect.insert(
                    block + 1,
                    Run {
                        id: run.id,
                        pos,
                        allocs: self.alloc_clock,
                    },
                );
            }
            None => {
                // A fresh unit run; in a filtered system this fetch
                // falls through the unit filter to the czone filters.
                let id = self.next_run_id;
                self.next_run_id += 1;
                self.runs += 1;
                self.run_stack.last_all.insert(id, now);
                self.run_stack.all.set(now);
                self.unit_expect.insert(
                    block + 1,
                    Run {
                        id,
                        pos: 1,
                        allocs: self.alloc_clock,
                    },
                );
                self.czone_fetch(word);
            }
        }
    }

    /// Drives the czone sketches with a fetch that fell through the
    /// unit filter.
    fn czone_fetch(&mut self, word: u64) {
        for cz in &mut self.czone {
            // This czone size's allocation clock: unit establishments
            // plus its own trainings, since both allocate a buffer.
            let clock = self.alloc_clock + cz.trained;
            // A trained strided run continuing at its expected word
            // hits the stream — it never reaches the filters.
            if let Some((stride, prev)) = cz.expect.remove(&word) {
                let da = clock - prev;
                cz.cont[(da as usize).min(SD_BUCKETS)] += 1;
                if da < STALE_SD {
                    if let Some(next) = word.checked_add_signed(stride) {
                        cz.expect.insert(next, (stride, clock));
                    }
                }
                continue;
            }
            if let Some(stride) = cz.fsm(word) {
                cz.trained += 1;
                if let Some(next) = word.checked_add_signed(stride) {
                    cz.expect
                        .insert(next, (stride, self.alloc_clock + cz.trained));
                }
            }
        }
    }

    /// A dirty block written back (index at L1 block granularity).
    pub fn writeback(&mut self, block: u64) {
        self.touch_reuse(block);
        self.writebacks += 1;
    }

    /// Finalizes the profile.
    pub fn finish(self) -> LocalityProfile {
        LocalityProfile {
            l1_block_bytes: self.l1_block_bytes,
            word_bytes: self.word_bytes,
            events: self.event_clock as u64,
            fetches: self.fetches,
            writebacks: self.writebacks,
            l1_refs: 0,
            l1_misses: 0,
            reuse: self.reuse.into_iter().map(|s| s.hist).collect(),
            streams: StreamProfile {
                fetches: self.fetches,
                runs: self.runs,
                pos2: self.pos2,
                pos3p: self.pos3p,
                pos3p_alloc: self.pos3p_alloc,
                czone: self
                    .czone
                    .into_iter()
                    .map(|cz| CzoneSketch {
                        czone_bits: cz.czone_bits,
                        trained: cz.trained,
                        cont: cz.cont,
                    })
                    .collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(events: &[(bool, u64)]) -> LocalityProfile {
        // (is_fetch, block index); word = block * 8 (32-byte blocks,
        // 4-byte words).
        let mut b = ProfileBuilder::new(32, 4, events.len());
        for &(is_fetch, block) in events {
            if is_fetch {
                b.fetch(block, block * 8);
            } else {
                b.writeback(block);
            }
        }
        b.finish()
    }

    #[test]
    fn reuse_distances_are_mattson() {
        // Blocks: A B C A  → A's re-touch sees 2 distinct blocks.
        let p = build(&[(true, 1), (true, 2), (true, 3), (true, 1)]);
        assert_eq!(p.reuse[0].cold(), 3);
        assert_eq!(p.reuse[0].total(), 1);
        assert_eq!(p.reuse[0].count_below(3), 1.0);
        assert_eq!(p.reuse[0].count_below(2), 0.0);
        assert_eq!(p.events, 4);
        assert_eq!(p.fetches, 4);
    }

    #[test]
    fn writebacks_join_the_reuse_stream_but_not_runs() {
        let p = build(&[(true, 1), (false, 1), (true, 2)]);
        assert_eq!(p.events, 3);
        assert_eq!(p.fetches, 2);
        assert_eq!(p.writebacks, 1);
        // The write-back re-touched block 1 at distance 0.
        assert_eq!(p.reuse[0].count_below(1), 1.0);
        // Fetch of block 2 continues the run started by fetch of 1
        // (the write-back does not interrupt the fetch stream).
        assert_eq!(p.streams.pos2_total(), 1);
    }

    #[test]
    fn coarser_granularities_merge_blocks() {
        // Blocks 0 and 1 share a 2x block; distance at 2x is a
        // re-touch, at 1x a cold pair.
        let p = build(&[(true, 0), (true, 1)]);
        assert_eq!(p.reuse[0].cold(), 2);
        assert_eq!(p.reuse[1].cold(), 1);
        assert_eq!(p.reuse[1].count_below(1), 1.0, "distance 0 at 2x");
    }

    #[test]
    fn sequential_fetches_form_one_run() {
        let p = build(&[(true, 10), (true, 11), (true, 12), (true, 13)]);
        assert_eq!(p.streams.runs, 1);
        assert_eq!(p.streams.pos2_total(), 1);
        assert_eq!(p.streams.pos3p_total(), 2);
        // All continuations at stack distance 0: one stream suffices.
        assert_eq!(p.streams.pos2_below(1), 1);
        assert_eq!(p.streams.pos3p_below(1), 2);
        assert_eq!(p.streams.pos3p_alloc_below(1), 2);
    }

    #[test]
    fn interleaved_runs_have_stack_distance_one() {
        // Two interleaved sequential streams: A10 B20 A11 B21 A12 B22.
        let p = build(&[
            (true, 10),
            (true, 20),
            (true, 11),
            (true, 21),
            (true, 12),
            (true, 22),
        ]);
        assert_eq!(p.streams.runs, 2);
        assert_eq!(p.streams.pos2_total() + p.streams.pos3p_total(), 4);
        // Every continuation saw exactly one other run in between.
        assert_eq!(p.streams.pos2_below(2) + p.streams.pos3p_below(2), 4);
        assert_eq!(p.streams.pos2_below(1) + p.streams.pos3p_below(1), 0);
    }

    #[test]
    fn isolated_fetches_do_not_pressure_the_allocation_clock() {
        // Run A advances while isolated blocks intervene: the all-runs
        // distance grows, the allocation distance stays 0 (isolated
        // misses never allocate past a unit filter, so run A's buffer
        // is untouched).
        let p = build(&[
            (true, 10),
            (true, 11), // pos2: establishes run A
            (true, 500),
            (true, 700),
            (true, 12), // pos3: all-sd 2, alloc-d 0
        ]);
        assert_eq!(p.streams.pos3p_below(1), 0);
        assert_eq!(p.streams.pos3p_below(3), 1);
        assert_eq!(p.streams.pos3p_alloc_below(1), 1);
    }

    #[test]
    fn interrupted_runs_survive_when_nothing_allocates() {
        // Run A establishes, then a long burst of isolated fetches
        // intervenes before A continues. Under allocate-on-miss the
        // buffer is long evicted (all-runs distance overflows); under a
        // unit filter nothing allocated, so A still hits.
        let mut events = vec![(true, 10u64), (true, 11)];
        for i in 0..100u64 {
            events.push((true, 1000 + i * 50));
        }
        events.push((true, 12));
        let p = build(&events);
        assert_eq!(p.streams.pos3p_total(), 1);
        assert_eq!(p.streams.pos3p_below(SD_BUCKETS), 0, "touched overflow");
        assert_eq!(p.streams.pos3p_alloc_below(1), 1, "no allocations between");
    }

    #[test]
    fn establishments_advance_the_allocation_clock() {
        // Run A establishes, run B establishes in between, A continues:
        // allocation distance 1 (B's establishment), so A hits with two
        // buffers but not one.
        let p = build(&[
            (true, 10),
            (true, 11), // A pos2
            (true, 20),
            (true, 21), // B pos2
            (true, 12), // A pos3: alloc-d 1
        ]);
        assert_eq!(p.streams.pos3p_alloc_below(1), 0);
        assert_eq!(p.streams.pos3p_alloc_below(2), 1);
    }

    #[test]
    fn czone_sketch_trains_strided_runs() {
        // Stride of 16 blocks = 128 words: a 12-bit czone keeps the run
        // in one partition; an 8-bit czone (256-word partitions) also
        // does (128 < 256)... use a large stride to split them.
        // Stride 512 words: partitions of 2^8=256 words miss it,
        // 2^12=4096 words catch it. Words 0..3584 stay inside one
        // 12-bit partition so training needs exactly three misses.
        let blocks: Vec<(bool, u64)> = (0..8u64).map(|i| (true, i * 64)).collect();
        let p = build(&blocks); // word stride = 64 * 8 = 512
        let s8 = p.streams.nearest_czone(8);
        let s12 = p.streams.nearest_czone(12);
        assert_eq!(s8.trained, 0, "8-bit czone cannot see a 512-word stride");
        assert!(s12.trained >= 1, "12-bit czone trains the run");
        // After training on fetches 1,2,3 the remaining 5 fetches are
        // continuations at distance 0.
        assert_eq!(s12.cont_below(1), 5);
    }

    #[test]
    fn nearest_czone_snaps_to_grid() {
        let p = build(&[(true, 0)]);
        assert_eq!(p.streams.nearest_czone(0).czone_bits, 8);
        assert_eq!(p.streams.nearest_czone(11).czone_bits, 10);
        assert_eq!(p.streams.nearest_czone(13).czone_bits, 12);
        assert_eq!(p.streams.nearest_czone(60).czone_bits, 24);
    }

    #[test]
    fn reuse_at_picks_nearest_granularity() {
        let p = build(&[(true, 0)]);
        assert!(std::ptr::eq(p.reuse_at(32), &p.reuse[0]));
        assert!(std::ptr::eq(p.reuse_at(64), &p.reuse[1]));
        assert!(std::ptr::eq(p.reuse_at(128), &p.reuse[2]));
        assert!(std::ptr::eq(p.reuse_at(4096), &p.reuse[2]));
        assert!(std::ptr::eq(p.reuse_at(8), &p.reuse[0]));
    }

    #[test]
    fn profiles_are_deterministic() {
        let events: Vec<(bool, u64)> = (0..500u64)
            .map(|i| {
                let block = (i * 2654435761) % 97;
                (i % 7 != 0, block)
            })
            .collect();
        let a = build(&events);
        let b = build(&events);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn l1_miss_rate_uses_recorded_counts() {
        let mut p = build(&[(true, 1)]);
        assert_eq!(p.l1_miss_rate(), 0.0);
        p.l1_refs = 200;
        p.l1_misses = 30;
        assert!((p.l1_miss_rate() - 0.15).abs() < 1e-12);
    }
}
