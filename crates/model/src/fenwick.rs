//! A Fenwick (binary indexed) tree over 0/1 occupancy marks — the
//! engine behind Mattson stack-distance computation.
//!
//! The classic trick: walk the access sequence left to right keeping a
//! mark at the *latest* position each distinct item was seen. The LRU
//! stack distance of a re-access is then the number of marks strictly
//! between the item's previous position and the current one — a range
//! count this tree answers in `O(log n)`.

/// A Fenwick tree of `u32` counts over a fixed index range.
///
/// Counts are only ever 0 or 1 per position here, so `u32` prefix sums
/// cannot overflow for any trace shorter than four billion events.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// A tree over positions `0..len`, all zero.
    pub fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
        }
    }

    /// Number of positions the tree covers.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree covers no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sets the mark at `pos` (adds one).
    pub fn set(&mut self, pos: usize) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(1);
            i += i & i.wrapping_neg();
        }
    }

    /// Clears the mark at `pos` (subtracts one). Wrapping arithmetic
    /// keeps prefix sums exact as long as every `clear` follows a `set`
    /// of the same position.
    pub fn clear(&mut self, pos: usize) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_sub(1);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of marks in `0..=pos`.
    pub fn prefix(&self, pos: usize) -> u32 {
        let mut i = (pos + 1).min(self.tree.len() - 1);
        let mut sum = 0u32;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Number of marks in the open interval `(lo, hi)` — i.e. positions
    /// `lo+1 ..= hi-1`. Zero when the interval is empty.
    pub fn between(&self, lo: usize, hi: usize) -> u32 {
        if hi <= lo + 1 {
            return 0;
        }
        self.prefix(hi - 1).wrapping_sub(self.prefix(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_prefix_roundtrip() {
        let mut f = Fenwick::new(10);
        assert_eq!(f.len(), 10);
        assert!(!f.is_empty());
        for p in [0, 3, 7, 9] {
            f.set(p);
        }
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 2);
        assert_eq!(f.prefix(9), 4);
        f.clear(3);
        assert_eq!(f.prefix(9), 3);
        assert_eq!(f.between(0, 9), 1, "only 7 lies strictly between");
        assert_eq!(f.between(7, 9), 0);
        assert_eq!(f.between(2, 2), 0);
    }

    #[test]
    fn between_matches_naive_counting() {
        // A deterministic pseudo-random mark pattern, checked against a
        // brute-force bit vector.
        let n = 257;
        let mut f = Fenwick::new(n);
        let mut marks = vec![false; n];
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let p = (x % n as u64) as usize;
            if marks[p] {
                f.clear(p);
                marks[p] = false;
            } else {
                f.set(p);
                marks[p] = true;
            }
        }
        for (lo, hi) in [(0, n), (5, 6), (10, 200), (100, 101), (200, 40)] {
            let naive = (lo + 1..hi.min(n)).filter(|&i| i > lo && marks[i]).count() as u32;
            assert_eq!(f.between(lo, hi), naive, "({lo}, {hi})");
        }
    }

    #[test]
    fn empty_tree_is_harmless() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.between(0, 0), 0);
    }
}
