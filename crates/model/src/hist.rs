//! A stack-distance histogram: exact at small distances, logarithmic
//! with linear sub-buckets above.
//!
//! Secondary-cache capacities of interest span ~2^9 to ~2^17 blocks.
//! Distances below [`DistHist::EXACT`] are counted exactly; above that
//! each power-of-two octave is split into [`DistHist::SUBS`] equal
//! sub-buckets (≤ ~6 % relative resolution), and queries interpolate
//! linearly inside a partially covered bucket.

/// Histogram of LRU stack distances.
#[derive(Clone, Debug, PartialEq)]
pub struct DistHist {
    /// Counts for distances `0..EXACT`.
    exact: Vec<u64>,
    /// Counts for distances `>= EXACT`, bucketed per octave/sub-bucket.
    coarse: Vec<u64>,
    /// First-touch accesses (no previous access; infinite distance).
    cold: u64,
    /// Total recorded finite distances.
    total: u64,
}

impl DistHist {
    /// Distances below this are counted exactly.
    pub const EXACT: u64 = 4096;
    /// Sub-buckets per power-of-two octave above the exact range.
    pub const SUBS: usize = 16;
    /// First octave covered by the coarse buckets (`log2(EXACT)`).
    const FIRST_OCTAVE: u32 = Self::EXACT.trailing_zeros();

    /// An empty histogram.
    pub fn new() -> Self {
        DistHist {
            exact: vec![0; Self::EXACT as usize],
            coarse: vec![0; (64 - Self::FIRST_OCTAVE as usize) * Self::SUBS],
            cold: 0,
            total: 0,
        }
    }

    /// The coarse bucket index for a distance `>= EXACT`, plus the
    /// bucket's `[lo, hi)` distance range.
    fn coarse_bucket(d: u64) -> (usize, u64, u64) {
        debug_assert!(d >= Self::EXACT);
        let octave = 63 - d.leading_zeros();
        let width = (1u64 << octave) / Self::SUBS as u64;
        let sub = ((d - (1 << octave)) / width) as usize;
        let idx = (octave - Self::FIRST_OCTAVE) as usize * Self::SUBS + sub;
        let lo = (1 << octave) + sub as u64 * width;
        (idx, lo, lo + width)
    }

    /// Records a finite stack distance.
    pub fn record(&mut self, d: u64) {
        self.total += 1;
        if d < Self::EXACT {
            self.exact[d as usize] += 1;
        } else {
            let (idx, _, _) = Self::coarse_bucket(d);
            self.coarse[idx] += 1;
        }
    }

    /// Records a first touch (cold / infinite distance).
    pub fn record_cold(&mut self) {
        self.cold += 1;
    }

    /// Cold (first-touch) accesses recorded.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Finite distances recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All recorded accesses (finite + cold).
    pub fn accesses(&self) -> u64 {
        self.total + self.cold
    }

    /// Estimated number of recorded distances strictly below `limit`.
    ///
    /// Exact below [`DistHist::EXACT`]; above, a partially covered
    /// coarse bucket contributes linearly.
    pub fn count_below(&self, limit: u64) -> f64 {
        let exact_end = limit.min(Self::EXACT) as usize;
        let mut n: f64 = self.exact[..exact_end].iter().map(|&c| c as f64).sum();
        if limit > Self::EXACT {
            let (cut, cut_lo, cut_hi) = Self::coarse_bucket(limit.min(u64::MAX >> 1));
            for (idx, &c) in self.coarse.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if idx < cut {
                    n += c as f64;
                } else if idx == cut {
                    n += c as f64 * (limit - cut_lo) as f64 / (cut_hi - cut_lo) as f64;
                }
            }
        }
        n
    }

    /// Visits every non-empty bucket as `(representative distance,
    /// count)` — the representative is the bucket midpoint. Used by the
    /// set-associative hit model, which needs a weighted sum over the
    /// distance distribution rather than a plain CDF query.
    pub fn for_each_bucket(&self, mut f: impl FnMut(f64, u64)) {
        for (d, &c) in self.exact.iter().enumerate() {
            if c > 0 {
                f(d as f64, c);
            }
        }
        for (idx, &c) in self.coarse.iter().enumerate() {
            if c > 0 {
                let octave = Self::FIRST_OCTAVE + (idx / Self::SUBS) as u32;
                let width = (1u64 << octave) / Self::SUBS as u64;
                let lo = (1u64 << octave) + (idx % Self::SUBS) as u64 * width;
                f(lo as f64 + width as f64 / 2.0, c);
            }
        }
    }
}

impl Default for DistHist {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_range_is_exact() {
        let mut h = DistHist::new();
        for d in [0, 1, 1, 5, 4095] {
            h.record(d);
        }
        h.record_cold();
        assert_eq!(h.total(), 5);
        assert_eq!(h.cold(), 1);
        assert_eq!(h.accesses(), 6);
        assert_eq!(h.count_below(1), 1.0);
        assert_eq!(h.count_below(2), 3.0);
        assert_eq!(h.count_below(4095), 4.0);
        assert_eq!(h.count_below(4096), 5.0);
        assert_eq!(h.count_below(u64::MAX >> 2), 5.0);
    }

    #[test]
    fn coarse_buckets_interpolate() {
        let mut h = DistHist::new();
        // 8192..8192+512 is one sub-bucket of the 2^13 octave
        // (width 8192/16 = 512).
        for _ in 0..100 {
            h.record(8192);
        }
        assert_eq!(h.count_below(8192), 0.0);
        assert_eq!(h.count_below(8704), 100.0, "bucket fully covered");
        let half = h.count_below(8448);
        assert!((half - 50.0).abs() < 1e-9, "half-covered bucket: {half}");
    }

    #[test]
    fn coarse_resolution_is_within_a_bucket() {
        let mut h = DistHist::new();
        h.record(1_000_000);
        // The true distance lies in its bucket: counting below anything
        // past the bucket end sees the whole count.
        assert_eq!(h.count_below(2_000_000), 1.0);
        assert_eq!(h.count_below(500_000), 0.0);
    }

    #[test]
    fn bucket_walk_recovers_total() {
        let mut h = DistHist::new();
        for d in [3, 700, 5000, 12345, 1 << 20] {
            h.record(d);
        }
        let mut n = 0;
        let mut weighted = 0.0;
        h.for_each_bucket(|rep, c| {
            n += c;
            weighted += rep * c as f64;
        });
        assert_eq!(n, 5);
        assert!(weighted > 0.0);
    }
}
