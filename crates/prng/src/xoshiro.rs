//! xoshiro256** (Blackman & Vigna, "Scrambled linear pseudorandom
//! number generators", TOMS 2021; public-domain reference code).

use crate::{RngCore, SplitMix64};

/// The workspace's general-purpose generator: 256 bits of state, period
/// 2^256 − 1, passes BigCrush, and runs in a handful of cycles — fast
/// enough to sit inside the cache simulator's eviction path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state from a single `u64` via [`SplitMix64`],
    /// exactly as the reference implementation recommends (this is also
    /// what `rand`'s `seed_from_u64` did, so old seeds remain distinct,
    /// though the streams they produce differ from `SmallRng`'s).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [mix.next(), mix.next(), mix.next(), mix.next()],
        }
    }

    /// Builds a generator from raw state. At least one word must be
    /// non-zero (the all-zero state is the one fixed point); a zero
    /// state is replaced by the seed-0 expansion rather than panicking.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            Xoshiro256StarStar { s }
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned to the reference implementation (xoshiro256starstar.c with
    /// splitmix64-expanded seeds), so the simulator's seeded streams are
    /// reproducible across platforms and future refactors.
    #[test]
    fn matches_reference_vectors() {
        let mut g = Xoshiro256StarStar::seed_from_u64(0);
        let got: Vec<u64> = (0..5).map(|_| g.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
                0xBBA5_AD4A_1F84_2E59,
            ]
        );
        let mut g = Xoshiro256StarStar::seed_from_u64(42);
        assert_eq!(g.next_u64(), 0x1578_0B2E_0C2E_C716);
        assert_eq!(g.next_u64(), 0x6104_D986_6D11_3A7E);
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut a = Xoshiro256StarStar::from_state([0; 4]);
        let mut b = Xoshiro256StarStar::seed_from_u64(0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
