//! The sampling surface: uniform ranges, coin flips, shuffles.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Uniform value in `[0, bound)` by Lemire's multiply-shift rejection
/// method — exactly uniform for every bound, with no modulo bias and at
/// most one multiply on the fast path.
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    if (m as u64) < bound {
        // Reject the small sliver of values that would over-represent
        // low results: 2^64 mod bound candidates per wrap.
        let threshold = bound.wrapping_neg() % bound;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
        }
    }
    (m >> 64) as u64
}

/// A range that can be sampled uniformly — the argument type of
/// [`Rng::gen_range`]. Implemented for half-open and inclusive ranges of
/// the integer types the simulator uses.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t; // full 64-bit range
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i64 => u64, i32 => u32);

/// Derived sampling methods, available on every [`RngCore`] — the
/// `rand`-shaped surface the simulator and kernels are written against.
pub trait Rng: RngCore + Sized {
    /// A uniform value from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased Fisher–Yates shuffle of `xs` in place.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element of `xs`, or `None` if empty.
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(123)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = rng();
        for _ in 0..10_000 {
            assert!(g.gen_range(10u64..20) < 20);
            assert!(g.gen_range(10u64..20) >= 10);
            let v = g.gen_range(5usize..=7);
            assert!((5..=7).contains(&v));
            let s = g.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&s));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut g = rng();
        let _ = g.gen_range(0u64..=u64::MAX);
        let _ = g.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut g = rng();
        let _ = g.gen_range(5u64..5);
    }

    #[test]
    fn small_ranges_are_roughly_uniform() {
        // Chi-squared style sanity check: 6 bins, 60k draws, each bin
        // within 5% of expectation (far looser than a real test, but it
        // catches modulo bias and shift bugs).
        let mut g = rng();
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[g.gen_range(0usize..6)] += 1;
        }
        for c in counts {
            assert!((9_500..10_500).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut g = rng();
        let heads = (0..100_000).filter(|_| g.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = rng();
        let mut xs: Vec<u32> = (0..100).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut g = rng();
        let xs = [1, 2, 3];
        assert_eq!(g.choose::<u8>(&[]), None);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*g.choose(&xs).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
