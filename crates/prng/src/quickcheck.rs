//! `streamsim-quickcheck`: a property-test mini-harness.
//!
//! This replaced the `proptest` dev-dependency so the workspace tests run
//! fully offline. It keeps the three properties the suites actually
//! relied on:
//!
//! * **seeded case generation** — every case draws its inputs from a
//!   [`Gen`] seeded deterministically from the property name and case
//!   index, so a run is reproducible end to end;
//! * **failure-seed reporting** — when a case panics, the harness prints
//!   the case seed and the exact environment variable to replay it
//!   before re-raising the panic;
//! * **a fixed default case count** ([`DEFAULT_CASES`]), overridable per
//!   property with [`check_with`] or globally with `STREAMSIM_QC_CASES`.
//!
//! What it deliberately does *not* do is input shrinking: with fully
//! deterministic generation, replaying the failing seed under a debugger
//! has proven to be enough, and shrinking is by far the largest part of
//! a real property-testing library.
//!
//! # Writing a property
//!
//! ```
//! use streamsim_prng::quickcheck::{check, Gen};
//! use streamsim_prng::Rng;
//!
//! fn reverse_twice_is_identity(g: &mut Gen) {
//!     let xs = g.vec(0usize..50, |g| g.gen_range(0u64..1000));
//!     let mut ys = xs.clone();
//!     ys.reverse();
//!     ys.reverse();
//!     assert_eq!(xs, ys);
//! }
//!
//! check("reverse_twice_is_identity", reverse_twice_is_identity);
//! ```
//!
//! # Replaying a failure
//!
//! A failing property prints a line like
//!
//! ```text
//! [streamsim-quickcheck] property 'lru_keeps_the_most_recent_blocks' failed
//!     on case 17 of 96; replay with STREAMSIM_QC_SEED=0x4f3a99... cargo test lru_keeps
//! ```
//!
//! Setting `STREAMSIM_QC_SEED` runs every checked property once, with
//! exactly that generator seed and no panic catching, so the assertion
//! failure surfaces with its own message and backtrace.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{Rng, SampleRange, SplitMix64, Xoshiro256StarStar};

/// Cases run per property unless overridden. Matches the order of
/// magnitude the former proptest suites used (48–128).
pub const DEFAULT_CASES: u32 = 64;

/// A property that generates more than `MAX_DISCARD_RATIO` discarded
/// cases per executed case fails — its preconditions are too narrow to
/// be testing anything.
pub const MAX_DISCARD_RATIO: u32 = 16;

/// Per-case input source: a seeded [`Xoshiro256StarStar`] plus vector
/// and choice helpers. All [`Rng`] methods are available through
/// `Deref`, so `g.gen_range(..)` / `g.gen_bool(..)` work directly.
pub struct Gen {
    rng: Xoshiro256StarStar,
}

impl Gen {
    /// A generator for one case; normally built by [`check`], public so
    /// properties can be driven manually (e.g. from a fuzzer or a bench).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// A vector with uniform length in `len` whose elements come from
    /// `item` — the analogue of `proptest::collection::vec`.
    pub fn vec<T>(
        &mut self,
        len: impl SampleRange<Output = usize>,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| item(self)).collect()
    }

    /// A uniformly chosen element of `options` — the analogue of
    /// `prop_oneof!` over constants.
    pub fn pick<T: Clone>(&mut self, options: &[T]) -> T {
        self.rng
            .choose(options)
            .expect("pick requires a non-empty slice")
            .clone()
    }

    /// A weighted choice: picks `options[i].1` with probability
    /// proportional to `options[i].0` (the analogue of weighted
    /// `prop_oneof!`).
    pub fn pick_weighted<T: Clone>(&mut self, options: &[(u32, T)]) -> T {
        let total: u32 = options.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "pick_weighted requires positive total weight");
        let mut roll = self.rng.gen_range(0..total);
        for (w, v) in options {
            if roll < *w {
                return v.clone();
            }
            roll -= w;
        }
        unreachable!("roll < total")
    }

    /// Abandons the current case without failing it (the analogue of
    /// `prop_assume!(false)`); the harness draws a fresh case instead.
    /// Properties that discard more than [`MAX_DISCARD_RATIO`] cases per
    /// executed case fail.
    pub fn discard(&self) -> ! {
        std::panic::panic_any(Discarded)
    }

    /// Abandons the current case unless `condition` holds (the analogue
    /// of `prop_assume!`).
    pub fn assume(&self, condition: bool) {
        if !condition {
            self.discard();
        }
    }
}

impl std::ops::Deref for Gen {
    type Target = Xoshiro256StarStar;
    fn deref(&self) -> &Xoshiro256StarStar {
        &self.rng
    }
}

impl std::ops::DerefMut for Gen {
    fn deref_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }
}

/// Sentinel panic payload for [`Gen::discard`].
struct Discarded;

/// Runs `property` for [`DEFAULT_CASES`] seeded cases (see [`check_with`]).
pub fn check(name: &str, property: impl FnMut(&mut Gen)) {
    check_with(name, DEFAULT_CASES, property);
}

/// Runs `property` for `cases` seeded cases, reporting the failing seed
/// on the first panic and re-raising it.
///
/// Environment overrides:
///
/// * `STREAMSIM_QC_CASES=<n>` — run `n` cases instead;
/// * `STREAMSIM_QC_SEED=<hex or dec>` — run exactly one case with that
///   generator seed and no panic catching (failure replay).
pub fn check_with(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = replay_seed() {
        eprintln!("[streamsim-quickcheck] replaying '{name}' with seed {seed:#x}");
        property(&mut Gen::from_seed(seed));
        return;
    }
    let cases = case_count().unwrap_or(cases).max(1);

    // The base seed mixes the property name so two properties in one
    // test binary never see correlated inputs.
    let mut mix = SplitMix64::new(0x5EED_CA5E_u64);
    for b in name.bytes() {
        mix = SplitMix64::new(mix.next() ^ u64::from(b));
    }
    let base = mix.next();

    let mut executed = 0u32;
    let mut discarded = 0u32;
    let mut attempt = 0u64;
    while executed < cases {
        let case_seed = SplitMix64::new(base.wrapping_add(attempt)).next();
        attempt += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            property(&mut Gen::from_seed(case_seed))
        }));
        match outcome {
            Ok(()) => executed += 1,
            Err(payload) if payload.is::<Discarded>() => {
                discarded += 1;
                assert!(
                    discarded / MAX_DISCARD_RATIO <= executed.max(1),
                    "property '{name}' discarded {discarded} cases after executing only \
                     {executed}; its preconditions reject nearly every generated input"
                );
            }
            Err(payload) => {
                eprintln!(
                    "[streamsim-quickcheck] property '{name}' failed on case {executed} \
                     (seed {case_seed:#018x}); replay with STREAMSIM_QC_SEED={case_seed:#x}"
                );
                resume_unwind(payload);
            }
        }
    }
}

fn replay_seed() -> Option<u64> {
    let raw = std::env::var("STREAMSIM_QC_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    Some(parsed.unwrap_or_else(|_| panic!("STREAMSIM_QC_SEED is not a valid u64: {raw:?}")))
}

fn case_count() -> Option<u32> {
    let raw = std::env::var("STREAMSIM_QC_CASES").ok()?;
    Some(
        raw.trim()
            .parse()
            .unwrap_or_else(|_| panic!("STREAMSIM_QC_CASES is not a valid u32: {raw:?}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn runs_the_default_case_count() {
        let runs = AtomicU32::new(0);
        check("counts_cases", |_| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), DEFAULT_CASES);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            check_with("determinism_probe", 16, |g| {
                seen.push(g.gen_range(0u64..1 << 40))
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_properties_get_different_inputs() {
        let first_draw = |name: &str| {
            let mut v = 0;
            check_with(name, 1, |g| v = g.gen_range(0u64..u64::MAX));
            v
        };
        assert_ne!(first_draw("property_a"), first_draw("property_b"));
    }

    #[test]
    fn discards_are_replaced_by_fresh_cases() {
        let executed = AtomicU32::new(0);
        check_with("discard_probe", 32, |g| {
            // Discard roughly half of all cases.
            let keep = g.gen_bool(0.5);
            g.assume(keep);
            executed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(executed.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn excessive_discarding_fails_the_property() {
        let result = catch_unwind(|| {
            check_with("hopeless", 8, |g| g.discard());
        });
        assert!(result.is_err());
    }

    #[test]
    fn failures_propagate() {
        let result = catch_unwind(|| {
            check_with("always_fails", 8, |_| panic!("intentional"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn vec_respects_length_bounds() {
        check_with("vec_lengths", 32, |g| {
            let xs = g.vec(2usize..5, |g| g.gen_range(0u64..10));
            assert!((2..5).contains(&xs.len()));
        });
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut heavy = 0u32;
        check_with("weights", 64, |g| {
            if g.pick_weighted(&[(3, true), (1, false)]) {
                heavy += 1;
            }
        });
        // 3:1 weighting over 64 cases: comfortably more than half.
        assert!(heavy > 32, "heavy = {heavy}");
    }
}
