//! Deterministic, zero-dependency pseudo-random numbers for streamsim.
//!
//! The whole workspace builds offline; this crate replaces the `rand`
//! dependency with two tiny, well-studied generators:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer, used to expand
//!   a single `u64` seed into generator state (and nothing else: its
//!   lattice structure makes it a poor stream generator on its own);
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256**, the
//!   workhorse generator behind every seeded decision in the simulator:
//!   random cache replacement, the synthetic kernels' gather/scatter
//!   index streams, and the property-test harness.
//!
//! Determinism is a correctness requirement of the reproduction, not a
//! convenience: trace-driven results are only comparable across stream
//! and cache configurations if the same seed yields a bit-identical
//! reference stream every run, on every platform. Both generators are
//! pinned to their published reference outputs by known-answer tests.
//!
//! The sampling surface ([`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::shuffle`], [`Rng::choose`]) mirrors the subset of `rand` the
//! workspace used, so call sites port one import at a time. Bounded
//! integers use Lemire's multiply-shift rejection method, so ranges are
//! exactly uniform, not merely modulo-reduced.
//!
//! # Example
//!
//! ```
//! use streamsim_prng::{Rng, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let i = rng.gen_range(0u64..100);
//! assert!(i < 100);
//! let j = rng.gen_range(10usize..=20);
//! assert!((10..=20).contains(&j));
//! let mut xs = [1, 2, 3, 4, 5];
//! rng.shuffle(&mut xs);
//! ```
//!
//! The [`quickcheck`] module holds the property-test mini-harness that
//! replaced the `proptest` dev-dependency; see its docs for the replay
//! workflow (`STREAMSIM_QC_SEED` / `STREAMSIM_QC_CASES`).

pub mod quickcheck;
mod sample;
mod splitmix;
mod xoshiro;

pub use sample::{Rng, SampleRange};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// The raw 64-bit output interface both generators expose; everything
/// else ([`Rng`]) is derived from it.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}
