//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014; Vigna's public-domain
//! reference implementation).

use crate::RngCore;

/// A SplitMix64 generator, used to expand one `u64` seed into the state
/// of a larger generator (see [`crate::Xoshiro256StarStar::seed_from_u64`]).
///
/// Every distinct seed yields a distinct full-period sequence of all
/// 2^64 values, which makes it ideal for seeding: even adjacent seeds
/// (0, 1, 2, …) produce uncorrelated downstream state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed (all values valid).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One step of the reference algorithm.
    #[allow(clippy::should_implement_trait)] // not an Iterator: never ends
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Outputs pinned to the published reference implementation
    /// (sebastiano vigna's splitmix64.c), so a port to any platform that
    /// diverges from the algorithm fails loudly.
    #[test]
    fn matches_reference_vectors() {
        let mut g = SplitMix64::new(0);
        let got: Vec<u64> = (0..5).map(|_| g.next()).collect();
        assert_eq!(
            got,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
                0x1B39_896A_51A8_749B,
            ]
        );
        let mut g = SplitMix64::new(42);
        assert_eq!(g.next(), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(g.next(), 0x28EF_E333_B266_F103);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(1);
            (0..8).map(|_| g.next()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(2);
            (0..8).map(|_| g.next()).collect()
        };
        assert_ne!(a, b);
    }
}
