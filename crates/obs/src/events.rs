//! The structured event log.
//!
//! At [`Level::Debug`](crate::Level::Debug), span closings and counter
//! flushes append records to an in-memory log; the report layer drains
//! it ([`drain_events`]) and writes the records as JSONL next to its
//! artifact output. Each record is one flat JSON object:
//!
//! ```json
//! {"event":"span","name":"record","ms":12.5,"items":1048576}
//! {"event":"counter","name":"l1_probes","value":1048576}
//! ```
//!
//! Draining sorts records by `(event, name)` with a stable sort, so the
//! drained order is deterministic across thread schedules whenever
//! names are distinct (records sharing both keys keep arrival order).

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::Level;

/// A typed field value of an event record.
#[derive(Clone, Copy, Debug)]
pub enum EventValue<'a> {
    /// A real number (serialized unrounded; non-finite becomes `null`).
    Num(f64),
    /// An exact integer.
    Int(u64),
    /// A string.
    Text(&'a str),
}

#[derive(Debug)]
struct StoredEvent {
    kind: &'static str,
    name: String,
    line: String,
}

static EVENTS: Mutex<Vec<StoredEvent>> = Mutex::new(Vec::new());

/// Appends one record to the event log when the level is at least
/// [`Level::Debug`]; a no-op otherwise. `kind` becomes the `event` key,
/// `name` the `name` key, and `fields` follow in order.
pub fn emit_event(kind: &'static str, name: &str, fields: &[(&str, EventValue<'_>)]) {
    if !crate::enabled(Level::Debug) {
        return;
    }
    let mut line = String::with_capacity(64);
    let _ = write!(
        line,
        "{{\"event\":\"{kind}\",\"name\":{}",
        json_escape(name)
    );
    for (key, value) in fields {
        let _ = write!(line, ",{}:", json_escape(key));
        match value {
            EventValue::Num(n) if n.is_finite() => {
                let _ = write!(line, "{n}");
            }
            EventValue::Num(_) => line.push_str("null"),
            EventValue::Int(n) => {
                let _ = write!(line, "{n}");
            }
            EventValue::Text(s) => line.push_str(&json_escape(s)),
        }
    }
    line.push('}');
    EVENTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(StoredEvent {
            kind,
            name: name.to_owned(),
            line,
        });
}

/// Emits one `counter` record per *nonzero* global counter, in counter
/// declaration order. A no-op below [`Level::Debug`].
pub fn emit_counter_events() {
    for (name, value) in crate::counter_snapshot() {
        if value > 0 {
            emit_event("counter", name, &[("value", EventValue::Int(value))]);
        }
    }
}

/// Number of records currently buffered.
pub fn pending_events() -> usize {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Takes every buffered record, sorted stably by `(event, name)`, as
/// JSONL lines. The log is left empty.
pub fn drain_events() -> Vec<String> {
    let mut events = std::mem::take(&mut *EVENTS.lock().unwrap_or_else(|e| e.into_inner()));
    events.sort_by(|a, b| (a.kind, a.name.as_str()).cmp(&(b.kind, b.name.as_str())));
    events.into_iter().map(|e| e.line).collect()
}

pub(crate) fn clear_events() {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_stays_empty() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Info);
        crate::reset();
        emit_event("span", "x", &[("ms", EventValue::Num(1.0))]);
        assert_eq!(pending_events(), 0, "Info does not log events");
        crate::set_level(Level::Off);
    }

    #[test]
    fn events_render_flat_json_and_drain_sorted() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Debug);
        crate::reset();
        emit_event("span", "b", &[("ms", EventValue::Num(2.5))]);
        emit_event("counter", "z", &[("value", EventValue::Int(7))]);
        emit_event(
            "span",
            "a",
            &[
                ("items", EventValue::Int(3)),
                ("who", EventValue::Text("x")),
            ],
        );
        let lines = drain_events();
        assert_eq!(
            lines,
            [
                "{\"event\":\"counter\",\"name\":\"z\",\"value\":7}",
                "{\"event\":\"span\",\"name\":\"a\",\"items\":3,\"who\":\"x\"}",
                "{\"event\":\"span\",\"name\":\"b\",\"ms\":2.5}",
            ]
        );
        assert_eq!(pending_events(), 0, "drain empties the log");
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Debug);
        crate::reset();
        emit_event("span", "nan", &[("ms", EventValue::Num(f64::NAN))]);
        let lines = drain_events();
        assert!(lines[0].contains("\"ms\":null"), "{}", lines[0]);
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
