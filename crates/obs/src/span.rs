//! Hierarchical wall-clock spans and the per-phase registry.
//!
//! A span times a region of code with the monotonic clock. Spans nest
//! per thread — a span opened while another is live on the same thread
//! records under the joined path (`report/fig3`) — and close on drop,
//! adding their elapsed time, call count and item count to a global
//! registry keyed by path. Worker threads start fresh stacks, so the
//! engine phases (`record`, `replay`) aggregate under their own names
//! no matter which driver triggered them.
//!
//! Items give phases a throughput: a span that processed 2 M references
//! in 1 s reports 2 Mitem/s via [`PhaseStat::mitems_per_sec`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::{EventValue, Level};

/// Aggregated timing of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans closed under this path.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub nanos: u128,
    /// Total items processed (0 when the spans never declared any).
    pub items: u64,
}

impl PhaseStat {
    /// Total wall clock in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Throughput in millions of items per second, if items were
    /// declared and time elapsed.
    pub fn mitems_per_sec(&self) -> Option<f64> {
        if self.items == 0 || self.nanos == 0 {
            None
        } else {
            Some(self.items as f64 * 1e3 / self.nanos as f64)
        }
    }
}

static REGISTRY: Mutex<BTreeMap<String, PhaseStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Stack of full span paths live on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; closing (dropping) it records the elapsed wall clock
/// under its path. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    path: String,
    start: Instant,
    items: u64,
}

impl SpanGuard {
    /// Declares `n` more items processed inside this span (additive).
    /// No-op on a disabled span.
    pub fn items(&mut self, n: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.items += n;
        }
    }

    /// The full path this span records under, or `None` when disabled.
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.start.elapsed().as_nanos();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Lexical RAII drops in reverse creation order; tolerate an
            // out-of-order drop by removing the matching entry.
            if let Some(pos) = stack.iter().rposition(|p| *p == inner.path) {
                stack.remove(pos);
            }
        });
        {
            let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            let stat = registry.entry(inner.path.clone()).or_default();
            stat.calls += 1;
            stat.nanos += elapsed;
            stat.items += inner.items;
        }
        if crate::enabled(Level::Debug) {
            crate::emit_event(
                "span",
                &inner.path,
                &[
                    ("ms", EventValue::Num(elapsed as f64 / 1e6)),
                    ("items", EventValue::Int(inner.items)),
                ],
            );
        }
    }
}

/// Opens a span named `name`, nested under the innermost span already
/// live on this thread. Disabled (a free no-op) below [`Level::Info`].
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled(Level::Info) {
        return SpanGuard { inner: None };
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_owned(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        inner: Some(SpanInner {
            path,
            start: Instant::now(),
            items: 0,
        }),
    }
}

/// Every `(path, stat)` pair recorded so far, sorted by path.
pub fn registry_snapshot() -> Vec<(String, PhaseStat)> {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the span registry (counters and events are untouched).
pub fn reset_registry() {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Off);
        crate::reset();
        {
            let mut s = span("ghost");
            s.items(10);
            assert_eq!(s.path(), None);
        }
        assert!(registry_snapshot().is_empty());
        crate::set_level(Level::Off);
    }

    #[test]
    fn nested_spans_join_paths_and_aggregate() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Info);
        crate::reset();
        {
            let _outer = span("report");
            {
                let mut inner = span("fig3");
                inner.items(5);
                assert_eq!(inner.path(), Some("report/fig3"));
            }
            {
                let mut inner = span("fig3");
                inner.items(7);
            }
        }
        let snap = registry_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["report", "report/fig3"]);
        let fig3 = &snap[1].1;
        assert_eq!(fig3.calls, 2);
        assert_eq!(fig3.items, 12);
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn sibling_after_close_is_top_level_again() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Info);
        crate::reset();
        {
            let _a = span("a");
        }
        {
            let b = span("b");
            assert_eq!(b.path(), Some("b"), "stack popped by a's close");
        }
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn phase_stat_rates() {
        let stat = PhaseStat {
            calls: 1,
            nanos: 1_000_000_000,
            items: 2_000_000,
        };
        assert!((stat.wall_ms() - 1000.0).abs() < 1e-9);
        assert!((stat.mitems_per_sec().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(PhaseStat::default().mitems_per_sec(), None);
    }
}
