//! Hierarchical wall-clock spans and the per-phase registry.
//!
//! A span times a region of code with the monotonic clock. Spans nest
//! per thread — a span opened while another is live on the same thread
//! records under the joined path (`report/fig3`) — and close on drop,
//! adding their elapsed time, call count and item count to a global
//! registry keyed by path. Worker threads start fresh stacks, so the
//! engine phases (`record`, `replay`) aggregate under their own names
//! no matter which driver triggered them.
//!
//! Items give phases a throughput: a span that processed 2 M references
//! in 1 s reports 2 Mitem/s via [`PhaseStat::mitems_per_sec`].
//!
//! Since obs v2, every span also has a stable **trace id** (a global
//! monotone counter) and knows its parent's id, each registry entry
//! keeps a log-linear [`Hist`] of per-call durations (the source of the
//! `--profile` p50/p90/p99/max columns), and when timeline export is
//! active ([`crate::trace_active`]) span opens/closes emit Chrome
//! `trace_event` `B`/`E` records — even at [`Level::Off`], so a trace
//! can be captured without paying for the registry.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::hist::Hist;
use crate::{trace_export, EventValue, Level};

/// Aggregated timing of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans closed under this path.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub nanos: u128,
    /// Total items processed (0 when the spans never declared any).
    pub items: u64,
}

impl PhaseStat {
    /// Total wall clock in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Throughput in millions of items per second, if items were
    /// declared and time elapsed.
    pub fn mitems_per_sec(&self) -> Option<f64> {
        if self.items == 0 || self.nanos == 0 {
            None
        } else {
            Some(self.items as f64 * 1e3 / self.nanos as f64)
        }
    }
}

/// One registry slot: the aggregate stat plus the per-call duration
/// histogram.
#[derive(Clone, Debug, Default)]
struct PhaseEntry {
    stat: PhaseStat,
    hist: Hist,
}

static REGISTRY: Mutex<BTreeMap<String, PhaseEntry>> = Mutex::new(BTreeMap::new());

/// Source of stable span trace ids; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// One live span on a thread's stack: its full path and trace id.
struct StackEntry {
    path: String,
    id: u64,
}

thread_local! {
    /// Stack of spans live on this thread.
    static STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

/// An open span; closing (dropping) it records the elapsed wall clock
/// under its path. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    path: String,
    id: u64,
    start: Instant,
    items: u64,
    /// Whether to record into the registry on close (level >= Info at
    /// open). A trace-only span (level Off, tracing active) still emits
    /// timeline events but leaves the registry alone.
    record: bool,
}

impl SpanGuard {
    /// Declares `n` more items processed inside this span (additive).
    /// No-op on a disabled span.
    pub fn items(&mut self, n: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.items += n;
        }
    }

    /// The full path this span records under, or `None` when disabled.
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }

    /// The span's stable trace id, or `None` when disabled. Ids are
    /// unique per process and appear in exported timeline events.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.start.elapsed().as_nanos();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Lexical RAII drops in reverse creation order; tolerate an
            // out-of-order drop by removing the matching entry.
            if let Some(pos) = stack.iter().rposition(|e| e.id == inner.id) {
                stack.remove(pos);
            }
        });
        if trace_export::trace_active() {
            trace_export::emit_span_end(&inner.path, inner.id);
        }
        if !inner.record {
            return;
        }
        {
            let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            let entry = registry.entry(inner.path.clone()).or_default();
            entry.stat.calls += 1;
            entry.stat.nanos += elapsed;
            entry.stat.items += inner.items;
            entry
                .hist
                .record(u64::try_from(elapsed).unwrap_or(u64::MAX));
        }
        if crate::enabled(Level::Debug) {
            crate::emit_event(
                "span",
                &inner.path,
                &[
                    ("ms", EventValue::Num(elapsed as f64 / 1e6)),
                    ("items", EventValue::Int(inner.items)),
                ],
            );
        }
    }
}

/// Opens a span named `name`, nested under the innermost span already
/// live on this thread. Disabled (a free no-op) below [`Level::Info`]
/// unless timeline export is active, in which case the span still emits
/// its `B`/`E` trace events.
pub fn span(name: &str) -> SpanGuard {
    let record = crate::enabled(Level::Info);
    let tracing = trace_export::trace_active();
    if !record && !tracing {
        return SpanGuard { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (path, parent) = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (path, parent) = match stack.last() {
            Some(top) => (format!("{}/{name}", top.path), top.id),
            None => (name.to_owned(), 0),
        };
        stack.push(StackEntry {
            path: path.clone(),
            id,
        });
        (path, parent)
    });
    if tracing {
        trace_export::emit_span_begin(&path, id, parent);
    }
    SpanGuard {
        inner: Some(SpanInner {
            path,
            id,
            start: Instant::now(),
            items: 0,
            record,
        }),
    }
}

/// Every `(path, stat)` pair recorded so far, sorted by path.
pub fn registry_snapshot() -> Vec<(String, PhaseStat)> {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.stat))
        .collect()
}

/// Every `(path, stat, duration histogram)` triple recorded so far,
/// sorted by path — the `--profile` quantile columns' source.
pub fn registry_hists() -> Vec<(String, PhaseStat, Hist)> {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.stat, v.hist.clone()))
        .collect()
}

/// Clears the span registry (counters and events are untouched).
pub fn reset_registry() {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Off);
        crate::reset();
        {
            let mut s = span("ghost");
            s.items(10);
            assert_eq!(s.path(), None);
            assert_eq!(s.trace_id(), None);
        }
        assert!(registry_snapshot().is_empty());
        crate::set_level(Level::Off);
    }

    #[test]
    fn nested_spans_join_paths_and_aggregate() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Info);
        crate::reset();
        {
            let _outer = span("report");
            {
                let mut inner = span("fig3");
                inner.items(5);
                assert_eq!(inner.path(), Some("report/fig3"));
            }
            {
                let mut inner = span("fig3");
                inner.items(7);
            }
        }
        let snap = registry_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["report", "report/fig3"]);
        let fig3 = &snap[1].1;
        assert_eq!(fig3.calls, 2);
        assert_eq!(fig3.items, 12);
        // The per-path duration histogram tracks calls one-to-one.
        let hists = registry_hists();
        assert_eq!(hists[1].0, "report/fig3");
        assert_eq!(hists[1].2.count(), 2);
        assert_eq!(hists[0].2.count(), 1);
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn sibling_after_close_is_top_level_again() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Info);
        crate::reset();
        {
            let _a = span("a");
        }
        {
            let b = span("b");
            assert_eq!(b.path(), Some("b"), "stack popped by a's close");
        }
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn trace_ids_are_unique_and_parents_link() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Info);
        crate::reset();
        let outer = span("outer_id_test");
        let inner = span("inner_id_test");
        let (a, b) = (outer.trace_id().unwrap(), inner.trace_id().unwrap());
        assert!(b > a, "ids are allocated monotonically");
        drop(inner);
        drop(outer);
        crate::set_level(Level::Off);
        crate::reset();
    }

    #[test]
    fn trace_only_spans_emit_events_but_skip_registry() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Off);
        crate::reset();
        trace_export::set_trace_out(Some("/dev/null"));
        trace_export::drain_trace_events();
        {
            let outer = span("trace_only_outer");
            assert!(outer.trace_id().is_some());
            let _inner = span("trace_only_inner");
        }
        let events = trace_export::drain_trace_events();
        trace_export::set_trace_out(None);
        assert!(registry_snapshot().is_empty(), "registry untouched at Off");
        assert_eq!(events.len(), 4, "{events:?}");
        assert!(events[0].contains("\"ph\":\"B\""));
        assert!(events[1].contains("\"path\":\"trace_only_outer/trace_only_inner\""));
        // The inner B event names its parent's id.
        let parent_id: u64 = events[0]
            .split("\"id\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(events[1].contains(&format!("\"parent\":{parent_id}")));
        crate::set_level(Level::Off);
    }

    #[test]
    fn phase_stat_rates() {
        let stat = PhaseStat {
            calls: 1,
            nanos: 1_000_000_000,
            items: 2_000_000,
        };
        assert!((stat.wall_ms() - 1000.0).abs() < 1e-9);
        assert!((stat.mitems_per_sec().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(PhaseStat::default().mitems_per_sec(), None);
    }
}
