//! Process-wide event counters.
//!
//! One fixed [`Counter`] per internal event class the experiments reason
//! about — reference generation, cache probes, trace-store traffic,
//! replay volume, stream-buffer lifecycle, filter decisions. The global
//! set is a flat array of `AtomicU64`s: counting is a single relaxed
//! `fetch_add` when enabled and one relaxed load plus a predictable
//! branch when disabled, so the hooks can live on the recording hot
//! path (the CI perf smoke holds the recording floor with these
//! compiled in and disabled).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Level;

/// Every counted event class, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// References emitted by workload chunk generation.
    RefsGenerated,
    /// Primary-cache probes (split L1, both sides).
    L1Probes,
    /// Secondary-cache probes during replay.
    L2Probes,
    /// Trace-store requests served from the store.
    TraceStoreHits,
    /// Trace-store requests that had to simulate an L1.
    TraceStoreMisses,
    /// Bulk `TraceStore::prefill` calls.
    TraceStorePrefills,
    /// Miss events walked by the replay engine (per pass, not per
    /// observer; multiply by the observer count for deliveries).
    ReplayMissEvents,
    /// Stream-buffer (re)allocations.
    StreamAllocations,
    /// Unit-stride filter lookups that allocated (two consecutive-block
    /// misses).
    UnitFilterAccepts,
    /// Unit-stride filter lookups that declined (isolated reference).
    UnitFilterRejects,
    /// Czone stride-FSM state transitions (entry inserted, META1→META2,
    /// stride re-guess, or verified allocation).
    CzoneTransitions,
}

/// Number of distinct counters.
pub const NUM_COUNTERS: usize = Counter::CzoneTransitions as usize + 1;

/// All counters, in declaration order (for snapshots).
const ALL: [Counter; NUM_COUNTERS] = [
    Counter::RefsGenerated,
    Counter::L1Probes,
    Counter::L2Probes,
    Counter::TraceStoreHits,
    Counter::TraceStoreMisses,
    Counter::TraceStorePrefills,
    Counter::ReplayMissEvents,
    Counter::StreamAllocations,
    Counter::UnitFilterAccepts,
    Counter::UnitFilterRejects,
    Counter::CzoneTransitions,
];

impl Counter {
    /// The stable snake_case name used in snapshots and JSONL events.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RefsGenerated => "refs_generated",
            Counter::L1Probes => "l1_probes",
            Counter::L2Probes => "l2_probes",
            Counter::TraceStoreHits => "trace_store_hits",
            Counter::TraceStoreMisses => "trace_store_misses",
            Counter::TraceStorePrefills => "trace_store_prefills",
            Counter::ReplayMissEvents => "replay_miss_events",
            Counter::StreamAllocations => "stream_allocations",
            Counter::UnitFilterAccepts => "unit_filter_accepts",
            Counter::UnitFilterRejects => "unit_filter_rejects",
            Counter::CzoneTransitions => "czone_transitions",
        }
    }
}

/// A fixed array of atomic counters (the global set is one of these;
/// tests can hold private sets).
#[derive(Debug)]
pub struct CounterSet {
    counts: [AtomicU64; NUM_COUNTERS],
}

impl Default for CounterSet {
    fn default() -> Self {
        CounterSet::new()
    }
}

impl CounterSet {
    /// A zeroed set.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; the inline-const repeat operand
        // makes the repeat expression legal.
        CounterSet {
            counts: [const { AtomicU64::new(0) }; NUM_COUNTERS],
        }
    }

    /// Adds `n` to `counter` (relaxed; totals are exact, ordering
    /// between counters is not promised).
    #[inline(always)]
    pub fn add(&self, counter: Counter, n: u64) {
        self.counts[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize].load(Ordering::Relaxed)
    }

    /// Every `(name, value)` pair, in declaration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        ALL.iter().map(|&c| (c.name(), self.get(c))).collect()
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

static GLOBAL: CounterSet = CounterSet::new();

/// A cheap, clone-able handle naming the [`CounterSet`] an instrumented
/// component charges.
///
/// The default handle points at the process-global set and is
/// level-gated exactly like [`count`] — instrumentation threaded through
/// a `Counters` costs the same as the free-function hooks it replaces.
/// A [scoped](Counters::scoped) handle owns a private set and counts
/// *unconditionally*: constructing one is the opt-in, so per-observer
/// attribution works regardless of `STREAMSIM_LOG`. Clones of a scoped
/// handle share the same set, which is how one handle fans out across a
/// system and its internal filters.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    scoped: Option<Arc<CounterSet>>,
}

impl Counters {
    /// The handle to the process-global set (same as `Default`).
    pub fn global() -> Self {
        Counters { scoped: None }
    }

    /// A handle owning a fresh private set, for per-component
    /// attribution. Clones share the set.
    pub fn scoped() -> Self {
        Counters {
            scoped: Some(Arc::new(CounterSet::new())),
        }
    }

    /// Whether this handle charges a private set rather than the global
    /// one.
    pub fn is_scoped(&self) -> bool {
        self.scoped.is_some()
    }

    /// Adds `n` to `counter` in this handle's set. Global handles are
    /// gated on [`Level::Info`] like [`count`]; scoped handles always
    /// count.
    #[inline(always)]
    pub fn add(&self, counter: Counter, n: u64) {
        match &self.scoped {
            Some(set) => set.add(counter, n),
            None => count(counter, n),
        }
    }

    /// Current value of `counter` in this handle's set.
    pub fn get(&self, counter: Counter) -> u64 {
        match &self.scoped {
            Some(set) => set.get(counter),
            None => GLOBAL.get(counter),
        }
    }

    /// Every `(name, value)` pair of this handle's set, in declaration
    /// order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        match &self.scoped {
            Some(set) => set.snapshot(),
            None => GLOBAL.snapshot(),
        }
    }
}

/// Adds `n` to the global `counter` when the level is at least
/// [`Level::Info`]; a no-op (one load, one branch) otherwise.
#[inline(always)]
pub fn count(counter: Counter, n: u64) {
    if crate::enabled(Level::Info) {
        GLOBAL.add(counter, n);
    }
}

/// Current global value of `counter`.
pub fn counter(counter: Counter) -> u64 {
    GLOBAL.get(counter)
}

/// Every global `(name, value)` pair, in declaration order.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    GLOBAL.snapshot()
}

pub(crate) fn reset_counters() {
    GLOBAL.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let names: Vec<&str> = ALL.iter().map(|c| c.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        for name in names {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn private_set_counts_exactly() {
        let set = CounterSet::new();
        set.add(Counter::L1Probes, 3);
        set.add(Counter::L1Probes, 4);
        assert_eq!(set.get(Counter::L1Probes), 7);
        assert_eq!(set.get(Counter::L2Probes), 0);
        let snap = set.snapshot();
        assert_eq!(snap.len(), NUM_COUNTERS);
        assert!(snap.contains(&("l1_probes", 7)));
        set.reset();
        assert_eq!(set.get(Counter::L1Probes), 0);
    }

    #[test]
    fn scoped_handle_counts_without_any_level() {
        // No test_lock needed: a scoped handle never reads the level.
        let a = Counters::scoped();
        let b = a.clone();
        a.add(Counter::StreamAllocations, 2);
        b.add(Counter::StreamAllocations, 3);
        assert!(a.is_scoped());
        assert_eq!(a.get(Counter::StreamAllocations), 5, "clones share a set");
        assert_eq!(b.get(Counter::StreamAllocations), 5);
        assert_eq!(a.get(Counter::L2Probes), 0);
        assert!(a.snapshot().contains(&("stream_allocations", 5)));
    }

    #[test]
    fn distinct_scoped_handles_do_not_alias() {
        let a = Counters::scoped();
        let b = Counters::scoped();
        a.add(Counter::L2Probes, 7);
        assert_eq!(b.get(Counter::L2Probes), 0);
    }

    #[test]
    fn global_handle_is_gated_like_count() {
        let _guard = crate::test_lock::hold();
        crate::set_level(crate::Level::Off);
        crate::reset();
        let h = Counters::global();
        assert!(!h.is_scoped());
        h.add(Counter::CzoneTransitions, 5);
        assert_eq!(h.get(Counter::CzoneTransitions), 0, "disabled: no-op");
        crate::set_level(crate::Level::Info);
        h.add(Counter::CzoneTransitions, 5);
        assert_eq!(
            counter(Counter::CzoneTransitions),
            5,
            "charges the global set"
        );
        crate::set_level(crate::Level::Off);
        crate::reset();
    }

    #[test]
    fn global_count_respects_the_level() {
        let _guard = crate::test_lock::hold();
        crate::set_level(crate::Level::Off);
        crate::reset();
        count(Counter::RefsGenerated, 10);
        assert_eq!(counter(Counter::RefsGenerated), 0, "disabled: no-op");
        crate::set_level(crate::Level::Info);
        count(Counter::RefsGenerated, 10);
        assert_eq!(counter(Counter::RefsGenerated), 10);
        crate::set_level(crate::Level::Off);
        crate::reset();
    }
}
