//! Hermetic observability: spans, counters, events and run provenance.
//!
//! The simulator records and replays millions of references per second;
//! this crate makes that pipeline visible without slowing it down. It
//! provides four small pieces, all dependency-free and thread-safe:
//!
//! * **Levels** — one global verbosity switch read from `STREAMSIM_LOG`
//!   (`off`, `info`, `debug`) and overridable in-process with
//!   [`set_level`]. Everything below is a no-op at [`Level::Off`].
//! * **Counters** ([`Counter`], [`count`]) — cheap process-wide event
//!   counters. The enabled path is a single relaxed `fetch_add`; the
//!   disabled path is one relaxed load and a predictable branch, cheap
//!   enough to sit on the recording hot path (the CI perf smoke pins
//!   this: the 1.15× recording floor holds with observability compiled
//!   in but disabled).
//! * **Spans** ([`span`]) — RAII wall-clock timers over the monotonic
//!   clock. Spans nest per thread (`report/fig3`), aggregate into a
//!   global registry by path ([`registry_snapshot`]), and carry an
//!   optional item count so a phase reports throughput (Mref/s).
//! * **Events** ([`drain_events`]) — at [`Level::Debug`], span closings
//!   and counter flushes append structured JSONL records to an in-memory
//!   log the caller drains next to its other artifact output.
//! * **Provenance** ([`RunManifest`], [`fingerprint64`]) — the identity
//!   of a run (PRNG seed, configuration fingerprint, thread count,
//!   span-derived `run_steps`) as a plain value the report layer stamps
//!   into every JSON artifact.
//!
//! Obs v2 adds three more, same contract (hermetic, thread-safe, free
//! when disabled):
//!
//! * **Histograms** ([`Hist`], [`record_hist`], [`hist_timer`]) —
//!   fixed-layout log-linear latency/size distributions with a
//!   zero-alloc record path behind the one-relaxed-load gate; merging
//!   is commutative, so cross-thread aggregation is deterministic.
//! * **Timeline export** ([`trace_active`], [`flush_trace`]) — with
//!   `STREAMSIM_TRACE_OUT=FILE` (or [`set_trace_out`]), spans emit
//!   Chrome `trace_event` `B`/`E` records and the DST scheduler emits
//!   per-worker `X` slices; the flushed file loads in `about:tracing`
//!   or Perfetto.
//! * **The perf ledger** ([`LedgerEntry`], [`check_ledger`]) — the
//!   shared `BENCH_*`/`PERF_LEDGER.jsonl` schema and per-metric floors
//!   behind `streamsim-report --ledger` / `--ledger-check`.
//!
//! # Example
//!
//! ```
//! use streamsim_obs as obs;
//!
//! obs::set_level(obs::Level::Info);
//! {
//!     let mut span = obs::span("record");
//!     obs::count(obs::Counter::RefsGenerated, 1024);
//!     span.items(1024);
//! }
//! let phases = obs::registry_snapshot();
//! assert_eq!(phases[0].0, "record");
//! assert_eq!(phases[0].1.items, 1024);
//! assert_eq!(obs::counter(obs::Counter::RefsGenerated), 1024);
//! # obs::reset();
//! # obs::set_level(obs::Level::Off);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod events;
mod hist;
mod ledger;
mod manifest;
mod span;
mod trace_export;

pub use counters::{count, counter, counter_snapshot, Counter, CounterSet, Counters, NUM_COUNTERS};
pub use events::{
    drain_events, emit_counter_events, emit_event, json_escape, pending_events, EventValue,
};
pub use hist::{
    bucket_index, bucket_low, hist_snapshot, hist_timer, record_hist, reset_hists, Hist, HistId,
    HistTimer, NUM_BUCKETS, NUM_HISTS, SUB_BUCKETS,
};
pub use ledger::{
    check_ledger, metric_floors, Floor, LedgerEntry, LedgerVerdict, BENCH_SCHEMA,
    DRIFT_NOTE_FRACTION, LEDGER_HEADER_KEYS, LEDGER_SCHEMA,
};
pub use manifest::{fingerprint64, RunManifest, StampValue};
pub use span::{registry_hists, registry_snapshot, reset_registry, span, PhaseStat, SpanGuard};
pub use trace_export::{
    drain_trace_events, emit_span_begin, emit_span_end, flush_trace, pending_trace_events,
    render_trace_document, set_trace_out, trace_active, trace_epoch_us, trace_out_path,
    trace_slice,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Global verbosity, lowest to highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Everything disabled (the default): counters stay zero, spans are
    /// no-ops, no events are recorded.
    Off = 0,
    /// Counters count and spans aggregate into the registry.
    Info = 1,
    /// Additionally, span closings and counter flushes append JSONL
    /// records to the event log.
    Debug = 2,
}

/// Sentinel for "not yet initialized from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

#[cold]
fn level_from_env() -> u8 {
    let parsed = match std::env::var("STREAMSIM_LOG").as_deref() {
        Ok("info") | Ok("1") => Level::Info,
        Ok("debug") | Ok("2") | Ok("trace") => Level::Debug,
        _ => Level::Off,
    } as u8;
    // Racing initializers agree (the env doesn't change), and an
    // intervening `set_level` wins via the compare-exchange.
    let _ = LEVEL.compare_exchange(LEVEL_UNSET, parsed, Ordering::Relaxed, Ordering::Relaxed);
    LEVEL.load(Ordering::Relaxed)
}

// lint:hot-gate
#[inline(always)]
fn raw_level() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == LEVEL_UNSET {
        level_from_env()
    } else {
        v
    }
}

/// The current global level (initialized from `STREAMSIM_LOG` on first
/// use).
#[inline]
pub fn level() -> Level {
    match raw_level() {
        0 => Level::Off,
        1 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the global level (e.g. `streamsim-report --profile` raises
/// `Off` to `Info` so the phase registry fills).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether observability at `at` is active. The hot-path gate: a single
/// relaxed load and a predictable branch.
#[inline(always)]
pub fn enabled(at: Level) -> bool {
    raw_level() >= at as u8
}

/// Zeroes every global counter and histogram, the span registry and the
/// event log. The level and trace destination are left unchanged.
/// Intended for tests and for the report binary between profiling
/// sections.
pub fn reset() {
    counters::reset_counters();
    span::reset_registry();
    events::clear_events();
    hist::reset_hists();
}

/// The `STREAMSIM_TRACE_OUT` destination, if set and non-empty. The
/// only environment read of the timeline exporter lives here, in the
/// crate's env-read-sanctioned root (see `streamsim-lint`,
/// `no-env-read`).
#[cold]
pub(crate) fn trace_out_env() -> Option<String> {
    std::env::var("STREAMSIM_TRACE_OUT")
        .ok()
        .filter(|p| !p.trim().is_empty())
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Unit tests mutate process-global state (level, counters,
    /// registry); this lock serializes them within the test binary.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Level::Off < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_round_trips() {
        let _guard = test_lock::hold();
        let before = level();
        set_level(Level::Debug);
        assert_eq!(level(), Level::Debug);
        assert!(enabled(Level::Info));
        set_level(Level::Off);
        assert!(!enabled(Level::Info));
        set_level(before);
    }
}
