//! Log-linear latency/throughput histograms (HDR-style, fixed layout).
//!
//! A [`Hist`] buckets `u64` values into a fixed log-linear layout:
//! [`SUB_BUCKETS`] linear sub-buckets per power-of-two octave, so every
//! recorded value lands in a bucket whose lower bound is within 1/16
//! (6.25%) of the value. The layout is a compile-time constant —
//! [`NUM_BUCKETS`] counters cover the full `u64` range — which makes
//! merging commutative bucket-wise addition: merge order, shard count
//! and thread count cannot change the result, so cross-thread
//! aggregation is deterministic by construction (pinned by
//! `crates/obs/tests/hist_properties.rs` and the DST sweeps).
//!
//! Two tiers share the layout:
//!
//! * **Global histograms** — one per [`HistId`], atomic bucket arrays
//!   recorded via [`record_hist`] / [`hist_timer`]. The record path is
//!   zero-alloc and sits behind the same one-relaxed-load disabled gate
//!   as the counters, so it is cheap enough for the replay delivery
//!   loop (the CI recording floor pins the disabled-mode overhead).
//! * **Per-span histograms** — every span close records its duration
//!   into a plain [`Hist`] beside the phase registry entry, giving
//!   `--profile` p50/p90/p99/max columns per phase.

// lint:hot-module — record_hist sits on the replay delivery loop (once per chunk)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::Level;

/// Linear sub-buckets per octave: 2^4 = 16.
const SUB_BITS: u32 = 4;

/// Number of linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total buckets covering the full `u64` range: one linear group for
/// values below [`SUB_BUCKETS`], then 16 sub-buckets for each of the 60
/// octaves above it.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// The bucket index of `value`. Total function — every `u64` maps into
/// `0..NUM_BUCKETS` — and branch-light: one `leading_zeros` plus shifts.
#[inline(always)]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        // leading_zeros <= 59 here, so msb >= SUB_BITS and the shifts
        // below cannot underflow.
        let msb = 63 - value.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let offset = ((value >> (msb - SUB_BITS)) as usize) - SUB_BUCKETS;
        group * SUB_BUCKETS + offset
    }
}

/// The smallest value that maps to bucket `index` — the deterministic
/// representative quantile reporting uses. Inverse of [`bucket_index`]
/// on bucket lower bounds.
pub fn bucket_low(index: usize) -> u64 {
    let group = index / SUB_BUCKETS;
    let offset = (index % SUB_BUCKETS) as u64;
    if group == 0 {
        offset
    } else {
        (SUB_BUCKETS as u64 + offset) << (group - 1)
    }
}

/// Names one of the fixed global histograms.
///
/// The set is closed on purpose: a fixed array of atomic buckets makes
/// the record path zero-alloc and the merge deterministic. New
/// instrumentation sites add a variant here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum HistId {
    /// Events per replay chunk (deterministic: depends only on the
    /// trace length and chunk length — the DST byte-identity pin).
    ReplayChunkEvents = 0,
    /// Wall-clock nanoseconds per replay chunk delivery.
    ReplayChunkNanos = 1,
    /// References per recording chunk flushed into the L1 pass.
    RecordChunkRefs = 2,
}

/// Number of [`HistId`] variants (the global histogram array's length).
pub const NUM_HISTS: usize = 3;

impl HistId {
    /// Every histogram id, in index order.
    pub const ALL: [HistId; NUM_HISTS] = [
        HistId::ReplayChunkEvents,
        HistId::ReplayChunkNanos,
        HistId::RecordChunkRefs,
    ];

    /// The stable snake_case name used in events and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            HistId::ReplayChunkEvents => "replay_chunk_events",
            HistId::ReplayChunkNanos => "replay_chunk_nanos",
            HistId::RecordChunkRefs => "record_chunk_refs",
        }
    }
}

struct AtomicHist {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl AtomicHist {
    const fn new() -> Self {
        AtomicHist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
        }
    }
}

static HISTS: [AtomicHist; NUM_HISTS] = [const { AtomicHist::new() }; NUM_HISTS];

/// Records `value` into the global histogram `id`.
///
/// Disabled below [`Level::Info`]: the disabled path is one relaxed
/// load and a predictable branch (the counter gate's contract); the
/// enabled path is five relaxed atomic ops and allocates nothing.
#[inline]
pub fn record_hist(id: HistId, value: u64) {
    if !crate::enabled(Level::Info) {
        return;
    }
    record_hist_always(id, value);
}

/// The ungated record path ([`hist_timer`] uses it after deciding at
/// construction time).
#[inline]
fn record_hist_always(id: HistId, value: u64) {
    let h = &HISTS[id as usize];
    h.count.fetch_add(1, Ordering::Relaxed);
    h.sum.fetch_add(value, Ordering::Relaxed);
    h.min.fetch_min(value, Ordering::Relaxed);
    h.max.fetch_max(value, Ordering::Relaxed);
    h.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
}

/// Times a region and records its wall-clock nanoseconds into `id` on
/// drop. The enabled/disabled decision is taken once at construction
/// (one relaxed load), so the owning loop body pays nothing else.
#[derive(Debug)]
pub struct HistTimer {
    id: HistId,
    start: Option<Instant>,
}

/// Starts a [`HistTimer`] for `id`; a no-op below [`Level::Info`].
#[inline]
pub fn hist_timer(id: HistId) -> HistTimer {
    HistTimer {
        id,
        start: crate::enabled(Level::Info).then(Instant::now),
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos();
            record_hist_always(self.id, u64::try_from(nanos).unwrap_or(u64::MAX));
        }
    }
}

/// A materialized histogram: plain counters over the fixed log-linear
/// layout. Used both as the snapshot form of the global atomic
/// histograms and as the per-span duration histogram in the registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64; NUM_BUCKETS]>,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; NUM_BUCKETS]),
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Adds every recorded value of `other` into `self`. Bucket-wise
    /// addition: commutative and associative, so any merge tree over
    /// any sharding yields the same histogram.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the bucket
    /// holding that rank — deterministic and within 6.25% below the
    /// true value. `1.0` returns the exact maximum; empty histograms
    /// return 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The first bucket's lower bound is the exact minimum.
                return bucket_low(i).max(self.min);
            }
        }
        self.max
    }

    /// A stable, compact text encoding: header fields plus the sparse
    /// bucket list. Equal histograms encode byte-identically, which is
    /// what the determinism tests pin.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "n={};sum={};min={};max={};b=",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max
        );
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{i}:{n}"));
        }
        out
    }
}

/// Snapshots the global histogram `id` into a plain [`Hist`].
pub fn hist_snapshot(id: HistId) -> Hist {
    let h = &HISTS[id as usize];
    let mut out = Hist::new();
    out.count = h.count.load(Ordering::Relaxed);
    out.sum = h.sum.load(Ordering::Relaxed);
    out.min = h.min.load(Ordering::Relaxed);
    out.max = h.max.load(Ordering::Relaxed);
    for (dst, src) in out.buckets.iter_mut().zip(h.buckets.iter()) {
        *dst = src.load(Ordering::Relaxed);
    }
    out
}

/// Zeroes every global histogram (part of [`crate::reset`]).
pub fn reset_hists() {
    for h in &HISTS {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.min.store(u64::MAX, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_total_and_monotonic() {
        // Every bucket's lower bound round-trips, and bounds strictly
        // increase — together: the layout partitions u64.
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "bucket {i} low {low}");
            if let Some(p) = prev {
                assert!(low > p, "bucket {i} not monotonic");
            }
            prev = Some(low);
        }
        // Probe boundaries: powers of two and their neighbours.
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v.saturating_sub(1), v, v.saturating_add(1), u64::MAX] {
                let idx = bucket_index(probe);
                assert!(idx < NUM_BUCKETS);
                assert!(bucket_low(idx) <= probe);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[17u64, 100, 999, 12_345, 1 << 40, u64::MAX / 3] {
            let low = bucket_low(bucket_index(v));
            assert!(low <= v);
            assert!(
                (v - low) as f64 <= v as f64 / 16.0 + 1.0,
                "value {v} bucket low {low}"
            );
        }
    }

    #[test]
    fn quantiles_and_extremes() {
        let mut h = Hist::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        assert!((440..=500).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((900..=990).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn merge_equals_sequential_record() {
        let values: Vec<u64> = (0..500).map(|i| i * i * 37 + 5).collect();
        let mut whole = Hist::new();
        for &v in &values {
            whole.record(v);
        }
        let (a_vals, b_vals) = values.split_at(123);
        let mut a = Hist::new();
        let mut b = Hist::new();
        for &v in a_vals {
            a.record(v);
        }
        for &v in b_vals {
            b.record(v);
        }
        let mut merged = Hist::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, whole);
        assert_eq!(merged.encode(), whole.encode());
    }

    #[test]
    fn global_hist_gating_and_snapshot() {
        let _guard = crate::test_lock::hold();
        crate::set_level(Level::Off);
        crate::reset();
        record_hist(HistId::ReplayChunkEvents, 42);
        assert!(hist_snapshot(HistId::ReplayChunkEvents).is_empty());

        crate::set_level(Level::Info);
        record_hist(HistId::ReplayChunkEvents, 42);
        record_hist(HistId::ReplayChunkEvents, 1024);
        let snap = hist_snapshot(HistId::ReplayChunkEvents);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), Some(42));
        assert_eq!(snap.max(), Some(1024));
        assert_eq!(snap.sum(), 42 + 1024);

        {
            let _t = hist_timer(HistId::ReplayChunkNanos);
        }
        assert_eq!(hist_snapshot(HistId::ReplayChunkNanos).count(), 1);

        crate::set_level(Level::Off);
        {
            let _t = hist_timer(HistId::ReplayChunkNanos);
        }
        assert_eq!(hist_snapshot(HistId::ReplayChunkNanos).count(), 1);
        crate::reset();
        assert!(hist_snapshot(HistId::ReplayChunkEvents).is_empty());
    }

    #[test]
    fn hist_id_names_are_stable() {
        for (i, id) in HistId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert!(!id.name().is_empty());
        }
    }
}
