//! Run provenance: the identity of an experiment run.
//!
//! A result row without provenance cannot be compared across machines
//! or commits. [`RunManifest`] captures the quantities that determine
//! (seed, configuration) or merely describe (thread count) a run; the
//! report layer stamps the deterministic subset into every JSON row as
//! `run_*` keys and emits the full manifest as its own artifact.

use crate::events::json_escape;

/// The provenance of one experiment run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// The PRNG seed the run's L1 replacement policy draws from (the
    /// workload seeds are fixed per kernel and covered by `config`).
    pub seed: u64,
    /// Hex fingerprint of the full run configuration (scale, sampling,
    /// L1 geometry and replacement policy).
    pub config: String,
    /// Worker threads available to `parallel_map`.
    pub threads: u64,
    /// Input-size scale label (`"Paper"` / `"Quick"`).
    pub scale: String,
    /// Time-sampling label (`"off"` or `"on/off"` reference counts).
    pub sampling: String,
}

impl RunManifest {
    /// Builds a manifest; `threads` defaults to the machine's available
    /// parallelism.
    pub fn new(seed: u64, config_text: &str, scale: &str, sampling: &str) -> Self {
        RunManifest {
            seed,
            config: format!("{:016x}", fingerprint64(config_text)),
            threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            scale: scale.to_owned(),
            sampling: sampling.to_owned(),
        }
    }

    /// The deterministic stamp keys added to every JSON row. `run_*`
    /// keys are provenance, not measurements: `streamsim-report --diff`
    /// excludes them from both row identity and drift comparison.
    pub fn row_stamp(&self) -> Vec<(&'static str, StampValue)> {
        vec![
            ("run_config", StampValue::Text(self.config.clone())),
            ("run_seed", StampValue::Int(self.seed)),
            ("run_threads", StampValue::Int(self.threads)),
        ]
    }

    /// The manifest as one flat JSONL record (`artifact":"manifest"`).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"artifact\":\"manifest\",\"table\":\"run\",\"run_config\":{},\
             \"run_seed\":{},\"run_threads\":{},\"scale\":{},\"sampling\":{}}}",
            json_escape(&self.config),
            self.seed,
            self.threads,
            json_escape(&self.scale),
            json_escape(&self.sampling),
        )
    }
}

/// A stamp field value (mirrors the sink cell values without depending
/// on the sink crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StampValue {
    /// An exact integer.
    Int(u64),
    /// A string.
    Text(String),
}

/// FNV-1a over the UTF-8 bytes: a stable 64-bit fingerprint for
/// configuration text. Not cryptographic — it only needs to change when
/// the configuration does.
pub fn fingerprint64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_ne!(fingerprint64("abc"), fingerprint64("abd"));
    }

    #[test]
    fn manifest_renders_one_flat_line() {
        let m = RunManifest {
            seed: 7,
            config: "00ff".into(),
            threads: 4,
            scale: "Quick".into(),
            sampling: "off".into(),
        };
        assert_eq!(
            m.to_json_line(),
            "{\"artifact\":\"manifest\",\"table\":\"run\",\"run_config\":\"00ff\",\
             \"run_seed\":7,\"run_threads\":4,\"scale\":\"Quick\",\"sampling\":\"off\"}"
        );
        let stamp = m.row_stamp();
        assert_eq!(stamp[0].0, "run_config");
        assert_eq!(stamp[1], ("run_seed", StampValue::Int(7)));
    }

    #[test]
    fn new_fingerprints_the_config_text() {
        let a = RunManifest::new(1, "cfg-a", "Quick", "off");
        let b = RunManifest::new(1, "cfg-b", "Quick", "off");
        assert_ne!(a.config, b.config);
        assert!(a.threads >= 1);
    }
}
