//! Run provenance: the identity of an experiment run.
//!
//! A result row without provenance cannot be compared across machines
//! or commits. [`RunManifest`] captures the quantities that determine
//! (seed, configuration) or merely describe (thread count) a run; the
//! report layer stamps the deterministic subset into every JSON row as
//! `run_*` keys and emits the full manifest as its own artifact.

use crate::events::json_escape;

/// The provenance of one experiment run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// The PRNG seed the run's L1 replacement policy draws from (the
    /// workload seeds are fixed per kernel and covered by `config`).
    pub seed: u64,
    /// Hex fingerprint of the full run configuration (scale, sampling,
    /// L1 geometry and replacement policy).
    pub config: String,
    /// Worker threads available to `parallel_map`.
    pub threads: u64,
    /// Input-size scale label (`"Paper"` / `"Quick"`).
    pub scale: String,
    /// Time-sampling label (`"off"` or `"on/off"` reference counts).
    pub sampling: String,
    /// Wall-clock-free run duration: total span-declared items (engine
    /// work units — references recorded, deliveries replayed). `0` means
    /// "not yet measured" (the manifest is emitted before the run
    /// starts; the report layer re-emits the measured value at the end
    /// via [`RunManifest::steps_json_line`]). A monotonic work count,
    /// not a clock, so ledger rows stay comparable across machines
    /// without violating the no-wall-clock lint.
    pub run_steps: u64,
}

impl RunManifest {
    /// Builds a manifest; `threads` defaults to the machine's available
    /// parallelism.
    pub fn new(seed: u64, config_text: &str, scale: &str, sampling: &str) -> Self {
        RunManifest {
            seed,
            config: format!("{:016x}", fingerprint64(config_text)),
            threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            scale: scale.to_owned(),
            sampling: sampling.to_owned(),
            run_steps: 0,
        }
    }

    /// The manifest with a measured work count (see
    /// [`RunManifest::run_steps`]).
    pub fn with_run_steps(mut self, run_steps: u64) -> Self {
        self.run_steps = run_steps;
        self
    }

    /// The deterministic stamp keys added to every JSON row. `run_*`
    /// keys are provenance, not measurements: `streamsim-report --diff`
    /// excludes them from both row identity and drift comparison.
    pub fn row_stamp(&self) -> Vec<(&'static str, StampValue)> {
        vec![
            ("run_config", StampValue::Text(self.config.clone())),
            ("run_seed", StampValue::Int(self.seed)),
            ("run_threads", StampValue::Int(self.threads)),
        ]
    }

    /// The manifest as one flat JSONL record (`artifact":"manifest"`).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"artifact\":\"manifest\",\"table\":\"run\",\"run_config\":{},\
             \"run_seed\":{},\"run_threads\":{},\"scale\":{},\"sampling\":{},\
             \"run_steps\":{}}}",
            json_escape(&self.config),
            self.seed,
            self.threads,
            json_escape(&self.scale),
            json_escape(&self.sampling),
            self.run_steps,
        )
    }

    /// The measured work count as its own trailing manifest record
    /// (`"table":"run_steps"`): the run manifest leads the JSON file
    /// before any work has happened, so the span-derived total is
    /// appended once the run ends.
    pub fn steps_json_line(&self) -> String {
        format!(
            "{{\"artifact\":\"manifest\",\"table\":\"run_steps\",\"run_config\":{},\
             \"run_steps\":{}}}",
            json_escape(&self.config),
            self.run_steps,
        )
    }
}

/// A stamp field value (mirrors the sink cell values without depending
/// on the sink crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StampValue {
    /// An exact integer.
    Int(u64),
    /// A string.
    Text(String),
}

/// FNV-1a over the UTF-8 bytes: a stable 64-bit fingerprint for
/// configuration text. Not cryptographic — it only needs to change when
/// the configuration does.
pub fn fingerprint64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_ne!(fingerprint64("abc"), fingerprint64("abd"));
    }

    #[test]
    fn manifest_renders_one_flat_line() {
        let m = RunManifest {
            seed: 7,
            config: "00ff".into(),
            threads: 4,
            scale: "Quick".into(),
            sampling: "off".into(),
            run_steps: 0,
        };
        assert_eq!(
            m.to_json_line(),
            "{\"artifact\":\"manifest\",\"table\":\"run\",\"run_config\":\"00ff\",\
             \"run_seed\":7,\"run_threads\":4,\"scale\":\"Quick\",\"sampling\":\"off\",\
             \"run_steps\":0}"
        );
        let stamp = m.row_stamp();
        assert_eq!(stamp[0].0, "run_config");
        assert_eq!(stamp[1], ("run_seed", StampValue::Int(7)));
    }

    #[test]
    fn run_steps_round_trips_and_trails() {
        let m = RunManifest::new(1, "cfg", "Quick", "off");
        assert_eq!(m.run_steps, 0, "unknown before the run");
        let m = m.with_run_steps(3_514_559);
        assert_eq!(m.run_steps, 3_514_559);
        assert!(m.to_json_line().contains("\"run_steps\":3514559"));
        let trailing = m.steps_json_line();
        assert!(trailing.contains("\"table\":\"run_steps\""), "{trailing}");
        assert!(trailing.contains("\"run_steps\":3514559"), "{trailing}");
        assert!(
            trailing.contains(&format!("\"run_config\":\"{}\"", m.config)),
            "{trailing}"
        );
    }

    #[test]
    fn new_fingerprints_the_config_text() {
        let a = RunManifest::new(1, "cfg-a", "Quick", "off");
        let b = RunManifest::new(1, "cfg-b", "Quick", "off");
        assert_ne!(a.config, b.config);
        assert!(a.threads >= 1);
    }
}
