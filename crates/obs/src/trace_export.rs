//! Chrome `trace_event` timeline export (hand-rolled, zero deps).
//!
//! When tracing is active — `STREAMSIM_TRACE_OUT=FILE` in the
//! environment, or [`set_trace_out`] in-process — every span open/close
//! appends a `B`/`E` duration event to an in-memory buffer, and the DST
//! `SimExecutor` appends `X` (complete) slices for its scheduled worker
//! runs. [`flush_trace`] writes the buffer as a `{"traceEvents":[...]}`
//! JSON document that Chrome's `about:tracing` and Perfetto load
//! directly, so a record→prefill→replay→report run opens as a
//! flamegraph.
//!
//! Format notes:
//!
//! * One event per line, flat objects only (no nested `args`), so the
//!   in-tree flat JSON reader can validate an exported file line by
//!   line (`streamsim-report --trace-check` and the CI obs smoke do).
//! * `ts`/`dur` are microseconds since the process's first trace
//!   timestamp ([`trace_epoch_us`]).
//! * Real threads get small `tid`s in first-use order; DST virtual
//!   worker lanes sit at `tid = 1000 + worker`, so seeded schedules are
//!   visually separate from OS threads.
//! * Span events carry their stable span `id` and `parent` id (0 = no
//!   parent), making the parent links explicit even across `tid`s.
//!
//! The gate ([`trace_active`]) is one relaxed load and a predictable
//! branch, mirroring the `STREAMSIM_LOG` level gate; it is checked on
//! span open, never on the counter/histogram hot paths.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json_escape;

/// Sentinel for "not yet initialized from the environment".
const TRACE_UNSET: u8 = u8::MAX;

static TRACE_ACTIVE: AtomicU8 = AtomicU8::new(TRACE_UNSET);
static TRACE_PATH: Mutex<Option<String>> = Mutex::new(None);
static EVENTS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

#[cold]
fn trace_active_from_env() -> u8 {
    let path = crate::trace_out_env();
    let active = path.is_some() as u8;
    let mut slot = TRACE_PATH.lock().unwrap_or_else(|e| e.into_inner());
    // Racing initializers agree (the env doesn't change); an intervening
    // `set_trace_out` wins via the compare-exchange.
    if TRACE_ACTIVE
        .compare_exchange(TRACE_UNSET, active, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        *slot = path;
    }
    drop(slot);
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

/// Whether timeline export is active. The span-open gate: one relaxed
/// load and a predictable branch (plus a one-time env read).
#[inline]
pub fn trace_active() -> bool {
    match TRACE_ACTIVE.load(Ordering::Relaxed) {
        TRACE_UNSET => trace_active_from_env() == 1,
        v => v == 1,
    }
}

/// Overrides the trace destination in-process (tests, embedding). Wins
/// over `STREAMSIM_TRACE_OUT`; `None` deactivates tracing. The event
/// buffer is left alone — drain or flush it explicitly.
pub fn set_trace_out(path: Option<&str>) {
    let mut slot = TRACE_PATH.lock().unwrap_or_else(|e| e.into_inner());
    *slot = path.map(str::to_owned);
    TRACE_ACTIVE.store(path.is_some() as u8, Ordering::Relaxed);
}

/// The configured trace output path, if tracing is active.
pub fn trace_out_path() -> Option<String> {
    if !trace_active() {
        return None;
    }
    TRACE_PATH.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Microseconds since the process's first trace timestamp — the shared
/// monotonic `ts` axis of every emitted event.
pub fn trace_epoch_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as f64 / 1e3
}

/// This thread's timeline lane id (assigned in first-use order, from 1).
fn tid() -> u32 {
    TID.with(|slot| {
        let mut t = slot.get();
        if t == 0 {
            t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            slot.set(t);
        }
        t
    })
}

fn push_event(line: String) {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).push(line);
}

/// Appends a `B` (duration begin) event for a span. `parent` is the
/// enclosing span's id, 0 at top level. Callers gate on
/// [`trace_active`]; this function always records.
pub fn emit_span_begin(path: &str, id: u64, parent: u64) {
    let name = path.rsplit('/').next().unwrap_or(path);
    push_event(format!(
        "{{\"name\":{},\"cat\":\"span\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\
         \"id\":{id},\"parent\":{parent},\"path\":{}}}",
        json_escape(name),
        tid(),
        trace_epoch_us(),
        json_escape(path),
    ));
}

/// Appends the matching `E` (duration end) event for a span.
pub fn emit_span_end(path: &str, id: u64) {
    let name = path.rsplit('/').next().unwrap_or(path);
    push_event(format!(
        "{{\"name\":{},\"cat\":\"span\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\
         \"id\":{id}}}",
        json_escape(name),
        tid(),
        trace_epoch_us(),
    ));
}

/// Appends an `X` (complete) slice on virtual lane `lane` (rendered at
/// `tid = 1000 + lane`, clear of real threads) — the DST scheduler's
/// per-worker run slices. `extra` adds flat integer fields (e.g.
/// `drive`, `steps`).
pub fn trace_slice(lane: u32, name: &str, ts_us: f64, dur_us: f64, extra: &[(&str, u64)]) {
    let mut fields = String::new();
    for (key, value) in extra {
        fields.push_str(&format!(",{}:{value}", json_escape(key)));
    }
    push_event(format!(
        "{{\"name\":{},\"cat\":\"dst\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\
         \"dur\":{dur_us:.3}{fields}}}",
        json_escape(name),
        1000 + lane,
    ));
}

/// Number of buffered, unflushed trace events.
pub fn pending_trace_events() -> usize {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Takes every buffered trace event (one JSON object string each),
/// leaving the buffer empty. [`flush_trace`] is the usual consumer;
/// tests and embedders can drain directly.
pub fn drain_trace_events() -> Vec<String> {
    std::mem::take(&mut *EVENTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Renders `events` as a Chrome `trace_event` JSON document: one event
/// per line inside `{"traceEvents":[...]}`.
pub fn render_trace_document(events: &[String]) -> String {
    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&events.join(",\n"));
    if !events.is_empty() {
        doc.push('\n');
    }
    doc.push_str("]}\n");
    doc
}

/// Drains the buffer and writes the trace document to the configured
/// path. `None` when tracing is inactive; otherwise the path and event
/// count, or the write error.
pub fn flush_trace() -> Option<Result<(String, usize), String>> {
    let path = trace_out_path()?;
    let events = drain_trace_events();
    let doc = render_trace_document(&events);
    Some(match std::fs::write(&path, doc) {
        Ok(()) => Ok((path, events.len())),
        Err(e) => Err(format!("cannot write trace to {path}: {e}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_flat_and_balanced() {
        let _guard = crate::test_lock::hold();
        drain_trace_events();
        emit_span_begin("report/record", 7, 3);
        trace_slice(2, "w2", 10.0, 5.5, &[("drive", 0), ("steps", 4)]);
        emit_span_end("report/record", 7);
        let events = drain_trace_events();
        assert_eq!(events.len(), 3);
        assert!(events[0].contains("\"ph\":\"B\""), "{}", events[0]);
        assert!(events[0].contains("\"name\":\"record\""), "{}", events[0]);
        assert!(
            events[0].contains("\"path\":\"report/record\""),
            "{}",
            events[0]
        );
        assert!(events[0].contains("\"parent\":3"), "{}", events[0]);
        assert!(events[1].contains("\"ph\":\"X\""), "{}", events[1]);
        assert!(events[1].contains("\"tid\":1002"), "{}", events[1]);
        assert!(events[1].contains("\"steps\":4"), "{}", events[1]);
        assert!(events[2].contains("\"ph\":\"E\""), "{}", events[2]);
        // Flat: no nested objects, so the document wraps cleanly.
        for e in &events {
            assert!(!e[1..].contains('{'), "{e}");
        }
        let doc = render_trace_document(&events);
        assert!(doc.starts_with("{\"traceEvents\":[\n"));
        assert!(doc.ends_with("\n]}\n"));
    }

    #[test]
    fn set_trace_out_overrides_and_deactivates() {
        let _guard = crate::test_lock::hold();
        set_trace_out(Some("/tmp/streamsim-trace-test.json"));
        assert!(trace_active());
        assert_eq!(
            trace_out_path().as_deref(),
            Some("/tmp/streamsim-trace-test.json")
        );
        set_trace_out(None);
        assert!(!trace_active());
        assert_eq!(trace_out_path(), None);
        assert_eq!(flush_trace(), None);
    }

    #[test]
    fn empty_document_is_well_formed() {
        assert_eq!(render_trace_document(&[]), "{\"traceEvents\":[\n]}\n");
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = trace_epoch_us();
        let b = trace_epoch_us();
        assert!(b >= a);
    }
}
